"""Scenario: monitoring the diameter of a large low-diameter overlay network.

The paper's second algorithm (Theorem 4) targets exactly this situation: the
operator of a large, well-connected network wants a quick estimate of its
diameter (within a 3/2 factor) without paying for exact computation.  The
script compares, on the same overlay-like topology:

* the trivial 2-approximation (one BFS),
* the classical 3/2-approximation of [LP13, HPRW14],
* the paper's quantum 3/2-approximation (Figure 3 / Theorem 4), including
  the effect of the ball-size parameter ``s`` on the preparation/quantum
  phase split.

Run with:  python examples/approximation_tradeoff.py
"""

from __future__ import annotations

import math

from repro.algorithms import (
    run_classical_two_approximation,
    run_hprw_three_halves_approximation,
)
from repro.analysis.tables import render_table
from repro.congest import Network
from repro.core import quantum_three_halves_diameter
from repro.core.approx_diameter import default_s_parameter
from repro.graphs import generators


def main() -> None:
    # An overlay-like network: 150 nodes, diameter 6.
    graph = generators.diameter_controlled_graph(150, target_diameter=6, seed=11)
    n, true_diameter = graph.num_nodes, graph.compile().diameter()
    print(f"network: {n} nodes, diameter {true_diameter}\n")

    two = run_classical_two_approximation(Network(graph, seed=0))
    classical = run_hprw_three_halves_approximation(Network(graph, seed=0), seed=1)
    quantum = quantum_three_halves_diameter(graph, oracle_mode="reference", seed=1)

    rows = [
        ["2-approximation (one BFS)", two.estimate,
         f"[{two.estimate}, {2 * two.estimate}]", two.rounds],
        ["classical 3/2-approx [HPRW14]", classical.estimate,
         f"[{classical.estimate}, {math.ceil(1.5 * classical.estimate)}]",
         classical.rounds],
        ["quantum 3/2-approx (Theorem 4)", quantum.estimate,
         f"[{quantum.estimate}, {math.ceil(1.5 * quantum.estimate)}]",
         quantum.rounds],
    ]
    print(
        render_table(
            rows,
            header=["algorithm", "estimate", "implied range for D", "rounds"],
        )
    )
    print(f"\ntrue diameter: {true_diameter} (inside every implied range)")

    # The s trade-off of Figure 3.
    print("\nsweeping the ball-size parameter s (Figure 3):")
    rows = []
    for s in (4, 8, 16, 32):
        result = quantum_three_halves_diameter(graph, s=s, oracle_mode="reference", seed=2)
        quantum_phase = result.optimization.metrics.rounds
        rows.append(
            [s, result.ball_size, result.metrics.rounds - quantum_phase,
             quantum_phase, result.metrics.rounds, result.estimate]
        )
    print(
        render_table(
            rows,
            header=["s", "|R|", "preparation rounds", "quantum rounds",
                    "total rounds", "estimate"],
        )
    )
    print(
        f"\nthe paper's balancing choice is s = Theta(n^2/3 / D^1/3) = "
        f"{default_s_parameter(n, true_diameter)} at this size."
    )


if __name__ == "__main__":
    main()
