"""Scenario: from a diameter algorithm to a set-disjointness protocol.

This script walks through the machinery behind the paper's lower bounds
(Theorems 2 and 3):

1. it builds the HW12 gadget (Figure 4) for Alice's and Bob's inputs and
   checks that the graph's diameter encodes DISJ(x, y) (2 vs 3);
2. it runs a real CONGEST diameter computation on that gadget and converts
   the execution into a two-party protocol (Theorem 10), reporting the
   message and qubit counts next to the [BGK+15] bound of Theorem 5;
3. it builds the path-subdivided gadget of Section 6.2 (Figure 8), verifies
   the d+4 / d+5 diameter thresholds, and runs the Theorem-11
   block-staircase simulation on a protocol over the path network G_d,
   showing the O(r/d)-message, O(r (bw+s))-qubit conversion in action.

Run with:  python examples/lower_bound_reduction.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.lowerbounds.bounds import (
    theorem2_lower_bound,
    theorem3_lower_bound,
    theorem5_communication_lower_bound,
)
from repro.lowerbounds.congest_to_two_party import (
    simulate_congest_algorithm_as_two_party_protocol,
)
from repro.lowerbounds.disjointness import (
    disjointness,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import (
    hw12_reduction,
    path_subdivided_reduction,
    verify_reduction_on_instance,
)
from repro.lowerbounds.simulation import (
    make_disjointness_path_protocol,
    simulate_path_protocol_as_two_party,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The HW12 gadget: diameter 2 vs 3 encodes disjointness.
    # ------------------------------------------------------------------
    reduction = hw12_reduction(s=4)
    x, y = random_intersecting_instance(reduction.input_length, seed=5)
    check = verify_reduction_on_instance(reduction, x, y)
    print(
        f"HW12 gadget: n={reduction.num_nodes}, k={reduction.input_length} input bits, "
        f"b={reduction.cut_edges} cut edges"
    )
    print(
        f"  DISJ(x, y) = {disjointness(x, y)}  ->  diameter {check.diameter} "
        f"(promise satisfied: {check.satisfied})\n"
    )

    # ------------------------------------------------------------------
    # 2. Theorem 10: simulate a CONGEST diameter algorithm as a 2-party protocol.
    # ------------------------------------------------------------------
    outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
    rows = [
        ["simulated CONGEST rounds r", outcome.rounds],
        ["two-party messages (~2r)", outcome.transcript.num_messages],
        ["two-party qubits (~r b log n)", outcome.transcript.total_bits],
        ["decoded DISJ answer", outcome.disjointness_answer],
        ["correct", outcome.correct],
        ["Theorem 5 lower bound on qubits at this message count",
         round(theorem5_communication_lower_bound(
             reduction.input_length, outcome.transcript.num_messages))],
        ["implied round lower bound Omega~(sqrt(n)) (Theorem 2)",
         round(theorem2_lower_bound(reduction.num_nodes))],
    ]
    print(render_table(rows, header=["Theorem 10 reduction", "value"]))

    # ------------------------------------------------------------------
    # 3. Theorem 11: the path network and the block-staircase simulation.
    # ------------------------------------------------------------------
    d = 6
    path_reduction = path_subdivided_reduction(k=8, d=d)
    x2, y2 = random_intersecting_instance(8, seed=9)
    path_check = verify_reduction_on_instance(path_reduction, x2, y2)
    print(
        f"\npath-subdivided gadget (Figure 8): d={d}, n'={path_reduction.num_nodes}, "
        f"diameter {path_check.diameter} (thresholds {path_reduction.diameter_if_disjoint}"
        f"/{path_reduction.diameter_if_intersecting}, satisfied: {path_check.satisfied})"
    )

    protocol = make_disjointness_path_protocol(x2 * 8, y2 * 8, path_length=d)
    simulated = simulate_path_protocol_as_two_party(protocol)
    rows = [
        ["distributed rounds r over G_d", simulated.distributed_rounds],
        ["two-party messages (Theorem 11: O(r/d))", simulated.num_messages],
        ["r / d", round(simulated.distributed_rounds / d, 1)],
        ["two-party qubits (Theorem 11: O(r (bw+s)))",
         simulated.total_communication_bits],
        ["r * (bw + s)",
         simulated.distributed_rounds
         * (protocol.bandwidth_bits + simulated.max_relay_memory_bits)],
        ["outputs agree with DISJ", simulated.bob_output == disjointness(x2 * 8, y2 * 8)],
    ]
    print()
    print(render_table(rows, header=["Theorem 11 simulation", "value"]))
    print(
        "\nCombining the d-round delay with Theorem 5 gives the "
        f"Omega~(sqrt(n D)/s + D) bound of Theorem 3, e.g. "
        f"{theorem3_lower_bound(path_reduction.num_nodes, path_check.diameter, 4):.1f} "
        "rounds for 4 qubits of memory per node at this size."
    )


if __name__ == "__main__":
    main()
