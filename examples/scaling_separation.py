"""Scenario: the quantum/classical separation for exact diameter computation.

The paper's motivation (Section 1): classically, even deciding whether the
diameter is 2 or 3 takes Omega~(n) rounds, while quantumly O~(sqrt(n D))
rounds suffice -- a polynomial separation whenever D = o(n).  This script
sweeps a family of small-diameter networks of growing size, measures the
round counts of both exact algorithms, fits the scaling exponents, and
reports where the separation shows up.

Run with:  python examples/scaling_separation.py
"""

from __future__ import annotations

from repro.algorithms import run_classical_exact_diameter
from repro.analysis.fitting import fit_power_law
from repro.analysis.sweep import SweepRecord, sweep_table
from repro.congest import Network
from repro.core import quantum_exact_diameter
from repro.core.complexity import quantum_exact_upper
from repro.graphs import generators


def main() -> None:
    records = []
    measurements = []
    for n in (24, 48, 96, 160):
        graph = generators.diameter_controlled_graph(n, target_diameter=6, seed=1)
        diameter = graph.compile().diameter()

        classical = run_classical_exact_diameter(Network(graph, seed=0))
        quantum = quantum_exact_diameter(graph, oracle_mode="reference", seed=3)

        measurements.append(
            {
                "n": n,
                "D": diameter,
                "classical": classical.rounds,
                "quantum": quantum.rounds,
            }
        )
        records.append(
            SweepRecord("fixed-D", "classical-exact", n, diameter,
                        classical.rounds, classical.diameter, True)
        )
        records.append(
            SweepRecord("fixed-D", "quantum-exact", n, diameter,
                        quantum.rounds, quantum.diameter,
                        quantum.diameter == diameter)
        )

    print(sweep_table(records))

    ns = [m["n"] for m in measurements]
    classical_fit = fit_power_law(ns, [m["classical"] for m in measurements])
    quantum_fit = fit_power_law(ns, [m["quantum"] for m in measurements])
    print(
        f"\nclassical rounds ~ n^{classical_fit.exponent:.2f}   "
        f"(paper: Theta(n), exponent 1)"
    )
    print(
        f"quantum rounds   ~ n^{quantum_fit.exponent:.2f}   "
        f"(paper: O~(sqrt(n D)), exponent 1/2 at fixed D)"
    )

    normalised = [
        m["quantum"] / quantum_exact_upper(m["n"], m["D"]) for m in measurements
    ]
    print(
        "\nquantum rounds / sqrt(n D): "
        + ", ".join(f"{value:.0f}" for value in normalised)
        + "   (roughly flat: the measured cost tracks the paper's formula;"
    )
    print(
        "the absolute constant reflects the amplitude-amplification budget and the"
        " O(D)-round Evaluation schedule, see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
