"""Quickstart: compute a network's diameter classically and quantumly.

This script builds a small CONGEST network, runs

* the classical exact O(n)-round baseline ([PRT12, HW12]),
* the paper's quantum exact algorithm (Theorem 1, O~(sqrt(n D)) rounds),
* the trivial 2-approximation and the classical 3/2-approximation,

checks every answer against the sequential oracle, and prints the round
counts next to the paper's Table-1 formulas.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.algorithms import (
    run_classical_exact_diameter,
    run_classical_two_approximation,
    run_hprw_three_halves_approximation,
)
from repro.analysis.tables import render_table, render_table1
from repro.congest import Network
from repro.core import quantum_exact_diameter, quantum_exact_radius
from repro.core.complexity import classical_exact_upper, quantum_exact_upper
from repro.graphs import generators


def main() -> None:
    # A chain of cliques: n = 24 nodes, diameter 7 -- a graph where the
    # diameter is much smaller than n, the regime the paper targets.
    graph = generators.clique_chain(num_cliques=4, clique_size=6)
    n, true_diameter = graph.num_nodes, graph.compile().diameter()
    print(f"graph: {n} nodes, {graph.num_edges} edges, true diameter {true_diameter}\n")

    classical = run_classical_exact_diameter(Network(graph, seed=0))
    quantum = quantum_exact_diameter(graph, oracle_mode="congest", seed=1)
    two_approx = run_classical_two_approximation(Network(graph, seed=0))
    three_halves = run_hprw_three_halves_approximation(Network(graph, seed=0), seed=2)

    rows = [
        ["classical exact [PRT12/HW12]", classical.diameter, classical.rounds,
         f"Theta(n) = {classical_exact_upper(n):.0f}"],
        ["quantum exact (Theorem 1)", quantum.diameter, quantum.rounds,
         f"O~(sqrt(nD)) = {quantum_exact_upper(n, true_diameter):.0f}"],
        ["2-approximation (ecc of leader)", two_approx.estimate,
         two_approx.rounds, "O(D)"],
        ["classical 3/2-approx [HPRW14]", three_halves.estimate,
         three_halves.rounds, "O~(sqrt(n) + D)"],
    ]
    print(render_table(rows, header=["algorithm", "answer", "rounds", "paper formula"]))

    assert classical.diameter == true_diameter
    assert quantum.diameter == true_diameter
    print("\nboth exact algorithms returned the true diameter.")
    print(
        "quantum resource counts: "
        f"{quantum.counts.setup_calls} Setup applications, "
        f"{quantum.counts.evaluation_calls} Evaluation applications, "
        f"{quantum.memory_bits_per_node} (qu)bits of memory per node."
    )

    # The quantum schedule backends ("sampling" and "batched") are proven
    # byte-identical, so picking the fast one changes wall-clock only --
    # here both compute the exact radius from the same seed.
    radius_sampling = quantum_exact_radius(
        graph, oracle_mode="congest", seed=3, backend="sampling"
    )
    radius_batched = quantum_exact_radius(
        graph, oracle_mode="congest", seed=3, backend="batched"
    )
    assert radius_sampling.radius == radius_batched.radius == graph.compile().radius()
    assert radius_sampling.counts == radius_batched.counts
    print(
        f"\nquantum exact radius (Theorem-7 framework): {radius_batched.radius} "
        f"in {radius_batched.rounds} rounds -- identical on both schedule backends."
    )

    print("\nTable 1 of the paper, evaluated at this (n, D):\n")
    print(render_table1(n=n, diameter=true_diameter))


if __name__ == "__main__":
    main()
