"""Tests for the persistent experiment store (``repro.store``).

The load-bearing property mirrors the batch runner's: persistence must
never change what is computed.  A sweep that is interrupted (by an
exception or a SIGKILL) and resumed must produce a record set
byte-identical to an uninterrupted serial run, completed cells must not
be recomputed, and the JSONL round-trip must preserve every record field
(including ``extra`` dicts and ``None`` diameters).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.sweep import SweepRecord, run_sweep_grid
from repro.runner import GraphSpec, grid, resolve_algorithms
from repro.store import (
    ExperimentStore,
    ExperimentStoreError,
    canonical_json,
    record_from_dict,
    record_to_dict,
    render_csv,
    render_json,
    render_jsonl,
    render_records,
    spec_from_dict,
    spec_to_dict,
)

#: Environment knobs of the traced/exploding kernel below; env vars reach
#: fork-started pool workers, so the same switch works at any job count.
_TRACE_ENV = "REPRO_TEST_STORE_TRACE"
_EXPLODE_ENV = "REPRO_TEST_STORE_EXPLODE"


def _traced_estimate(graph, seed):
    """A cheap sweep kernel that logs invocations and can be detonated.

    Module-level (hence picklable), deterministic in ``(graph, seed)``:
    the trace and the explosion are test-only side channels that never
    influence the returned measurement.
    """
    trace = os.environ.get(_TRACE_ENV)
    if trace:
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write(f"{graph.num_nodes}\n")
    explode_at = os.environ.get(_EXPLODE_ENV)
    if explode_at and graph.num_nodes == int(explode_at):
        raise RuntimeError(f"injected failure at n={graph.num_nodes}")
    return graph.num_nodes, float(graph.num_nodes % 7)


def _records_for_roundtrip():
    return [
        SweepRecord("cycle[10]", "classical_exact", 10, 5, 79, 5.0, True, {}),
        SweepRecord(
            "ring_of_cliques[20]",
            "hprw_three_halves",
            20,
            None,
            33,
            4.0,
            None,
            {},
        ),
        SweepRecord(
            "path[6]",
            "broken",
            6,
            5,
            12,
            3.5,
            False,
            {"nonintegral_value": 3.5, "oracle_diameter": 5.0},
        ),
    ]


class TestRecordRoundTrip:
    def test_roundtrip_preserves_every_field(self):
        for record in _records_for_roundtrip():
            assert record_from_dict(record_to_dict(record)) == record

    def test_roundtrip_through_json_text(self):
        # Through an actual serialize/parse cycle, not just dict copies:
        # None diameters and extra dicts must survive the JSON layer.
        for record in _records_for_roundtrip():
            data = json.loads(canonical_json(record_to_dict(record)))
            assert record_from_dict(data) == record

    def test_malformed_objects_rejected(self):
        data = record_to_dict(_records_for_roundtrip()[0])
        missing = dict(data)
        del missing["rounds"]
        with pytest.raises(ValueError, match="malformed record"):
            record_from_dict(missing)
        unknown = dict(data, surprise=1)
        with pytest.raises(ValueError, match="malformed record"):
            record_from_dict(unknown)

    def test_spec_roundtrip(self):
        for spec in (
            GraphSpec("cycle", 24),
            GraphSpec("controlled", 16, diameter=4, seed=9),
        ):
            assert spec_from_dict(spec_to_dict(spec)) == spec


class TestExportFormats:
    def test_csv_header_and_null_cells(self):
        lines = render_csv(_records_for_roundtrip()).splitlines()
        assert lines[0] == (
            "family,algorithm,num_nodes,diameter,rounds,value,correct,extra,"
            "success,failure_reason"
        )
        assert len(lines) == 4
        # None diameter/correct render as empty cells, extra as JSON.
        assert ",,33,4.0,," in lines[2]
        assert '""nonintegral_value"":3.5' in lines[3]

    def test_json_parses_back(self):
        payload = json.loads(render_json(_records_for_roundtrip()))
        assert [record_from_dict(item) for item in payload] == _records_for_roundtrip()

    def test_jsonl_is_canonical_and_parses_back(self):
        text = render_jsonl(_records_for_roundtrip())
        lines = text.splitlines()
        assert len(lines) == 3
        assert [record_from_dict(json.loads(line)) for line in lines] == (
            _records_for_roundtrip()
        )
        # Canonical: re-rendering parsed records is byte-identical.
        reparsed = [record_from_dict(json.loads(line)) for line in lines]
        assert render_jsonl(reparsed) == text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown export format"):
            render_records([], "xml")


class TestExperimentStore:
    def test_missing_file_reads_as_empty(self, tmp_path):
        store = ExperimentStore(tmp_path / "none.jsonl")
        assert not store.exists()
        assert store.load_records() == []
        assert store.completed() == {}
        assert store.latest_header() is None

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = ExperimentStore(path)
        records = _records_for_roundtrip()
        store.append_record("a", 0, records[0])
        store.append_record("b", 1, records[1])
        # Simulate a writer killed mid-line: append half a JSON object.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"record","key":"c","ind')
        assert store.load_records() == records[:2]
        assert set(store.completed()) == {"a", "b"}

    def test_append_after_truncated_tail_starts_a_fresh_line(self, tmp_path):
        # Regression: appending onto a truncated tail used to merge the new
        # entry into the partial line, losing both -- a resume header
        # written after a SIGKILL would vanish, and with it the
        # grid-signature protection.
        path = tmp_path / "run.jsonl"
        store = ExperimentStore(path)
        records = _records_for_roundtrip()
        store.append_record("a", 0, records[0])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"record","key":"b","ind')
        store.begin_sweep(
            specs=[GraphSpec("cycle", 10)],
            algorithms=["x"],
            base_seed=0,
            signature="sig",
            jobs=1,
            resume=True,
        )
        assert store.latest_header() is not None
        assert store.latest_header()["signature"] == "sig"
        assert store.load_records() == records[:1]
        # The signature check is live again on the next attempt.
        with pytest.raises(ExperimentStoreError, match="different grid"):
            store.begin_sweep(
                specs=[GraphSpec("path", 10)],
                algorithms=["x"],
                base_seed=0,
                signature="other-sig",
                jobs=1,
                resume=True,
            )

    def test_records_load_in_grid_order_not_append_order(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        records = _records_for_roundtrip()
        store.append_record("late", 2, records[2])
        store.append_record("early", 0, records[0])
        store.append_record("mid", 1, records[1])
        assert store.load_records() == records

    def test_rows_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path / "bench.jsonl")
        store.append_row("table1|cycle[10]", {"n": 10, "rounds": 79})
        store.append_row("table1|cycle[12]", {"n": 12, "rounds": 94})
        assert store.load_rows() == [
            {"n": 10, "rounds": 79},
            {"n": 12, "rounds": 94},
        ]

    def test_begin_sweep_refuses_nonempty_without_resume(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        store.begin_sweep(
            specs=[GraphSpec("cycle", 10)],
            algorithms=["a"],
            base_seed=0,
            signature="sig",
            jobs=1,
        )
        with pytest.raises(ExperimentStoreError, match="already holds"):
            store.begin_sweep(
                specs=[GraphSpec("cycle", 10)],
                algorithms=["a"],
                base_seed=0,
                signature="sig",
                jobs=1,
            )

    def test_begin_sweep_refuses_mixed_grids(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        store.begin_sweep(
            specs=[GraphSpec("cycle", 10)],
            algorithms=["a"],
            base_seed=0,
            signature="sig-one",
            jobs=1,
        )
        with pytest.raises(ExperimentStoreError, match="different grid"):
            store.begin_sweep(
                specs=[GraphSpec("path", 10)],
                algorithms=["a"],
                base_seed=0,
                signature="sig-two",
                jobs=1,
                resume=True,
            )

    def test_header_carries_provenance(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        store.begin_sweep(
            specs=[GraphSpec("cycle", 10, seed=3)],
            algorithms=["two_approx"],
            base_seed=7,
            signature="sig",
            jobs=2,
        )
        header = store.latest_header()
        assert header["algorithms"] == ["two_approx"]
        assert header["base_seed"] == 7
        assert header["jobs"] == 2
        assert header["engine"] in ("dense", "sparse")
        assert header["specs"] == [
            {"family": "cycle", "num_nodes": 10, "diameter": None, "seed": 3}
        ]
        # git/python are environment-dependent but the keys must exist.
        assert "git" in header and "python" in header


class TestSweepGridPersistence:
    def _grid(self):
        return grid(["cycle", "path"], [10, 12], seed=2)

    def _algorithms(self):
        return resolve_algorithms(["classical_exact", "two_approx"])

    def test_fresh_run_persists_and_roundtrips(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        records = run_sweep_grid(
            self._grid(), self._algorithms(), base_seed=5, store=store
        )
        assert store.load_records() == records
        headers = store.run_headers()
        assert len(headers) == 1
        finish = [e for e in store.iter_entries() if e.get("kind") == "finish"]
        assert len(finish) == 1
        assert finish[0]["total_records"] == len(records) == 8
        assert finish[0]["resumed_records"] == 0
        assert finish[0]["wall_seconds"] >= 0

    def test_store_does_not_change_records(self, tmp_path):
        plain = run_sweep_grid(self._grid(), self._algorithms(), base_seed=5)
        stored = run_sweep_grid(
            self._grid(),
            self._algorithms(),
            base_seed=5,
            store=ExperimentStore(tmp_path / "run.jsonl"),
        )
        assert plain == stored

    def test_interrupted_run_keeps_completed_prefix_and_resumes(
        self, tmp_path, monkeypatch
    ):
        trace = tmp_path / "trace.log"
        monkeypatch.setenv(_TRACE_ENV, str(trace))
        specs = grid(["cycle"], [10, 12, 14, 16], seed=2)
        algorithms = {"traced": _traced_estimate}
        store = ExperimentStore(tmp_path / "run.jsonl")

        # Detonate on the third cell: the first two records must already
        # be on disk when the sweep dies.
        monkeypatch.setenv(_EXPLODE_ENV, "14")
        with pytest.raises(RuntimeError, match="injected failure at n=14"):
            run_sweep_grid(specs, algorithms, base_seed=3, store=store)
        assert len(store.load_records()) == 2

        # Resume with the fault cleared: only the missing cells run.
        monkeypatch.delenv(_EXPLODE_ENV)
        resumed = run_sweep_grid(
            specs, algorithms, base_seed=3, store=store, resume=True
        )
        invocations = [int(line) for line in trace.read_text().splitlines()]
        assert invocations == [10, 12, 14, 10, 12, 14, 16][:3] + [14, 16]

        # The merged record set is byte-identical to a fresh, uninterrupted
        # serial run.
        fresh = run_sweep_grid(
            specs,
            algorithms,
            base_seed=3,
            store=ExperimentStore(tmp_path / "fresh.jsonl"),
        )
        assert resumed == fresh
        assert render_jsonl(resumed) == render_jsonl(fresh)
        finish = [e for e in store.iter_entries() if e.get("kind") == "finish"]
        assert finish[-1]["resumed_records"] == 2

    def test_resume_of_complete_store_recomputes_nothing(
        self, tmp_path, monkeypatch
    ):
        trace = tmp_path / "trace.log"
        specs = grid(["cycle"], [10, 12], seed=2)
        algorithms = {"traced": _traced_estimate}
        store = ExperimentStore(tmp_path / "run.jsonl")
        first = run_sweep_grid(specs, algorithms, base_seed=3, store=store)
        monkeypatch.setenv(_TRACE_ENV, str(trace))
        again = run_sweep_grid(
            specs, algorithms, base_seed=3, store=store, resume=True
        )
        assert again == first
        assert not trace.exists()  # zero kernel invocations on resume

    def test_parallel_resume_matches_serial_fresh(self, tmp_path, monkeypatch):
        specs = grid(["cycle"], [10, 12, 14, 16], seed=2)
        algorithms = {"traced": _traced_estimate}
        store = ExperimentStore(tmp_path / "run.jsonl")
        monkeypatch.setenv(_EXPLODE_ENV, "14")
        with pytest.raises(RuntimeError):
            run_sweep_grid(specs, algorithms, base_seed=3, store=store)
        monkeypatch.delenv(_EXPLODE_ENV)
        resumed = run_sweep_grid(
            specs, algorithms, base_seed=3, store=store, resume=True, jobs=2
        )
        fresh = run_sweep_grid(specs, algorithms, base_seed=3)
        assert resumed == fresh
        assert render_jsonl(store.load_records()) == render_jsonl(fresh)


@pytest.mark.slow
class TestKilledProcessResume:
    """The acceptance scenario: SIGKILL a parallel sweep, resume, compare.

    Parametrised over a clean grid and a faulty one (``--loss`` plus a
    tight ``--fault-timeout``): failure records written before the kill
    must resume exactly like successes, and the fault stream -- being a
    stateless hash of the cell's inputs -- must survive the interruption
    byte-for-byte.
    """

    FAMILIES = "cycle,clique_chain"
    SIZES = "32,48,64"
    ALGORITHMS = "classical_exact,two_approx"
    SEED = "5"

    def _sweep_argv(self, out, fault_flags=(), extra=()):
        return [
            sys.executable, "-m", "repro", "sweep",
            "--families", self.FAMILIES,
            "--sizes", self.SIZES,
            "--algorithms", self.ALGORITHMS,
            "--seed", self.SEED,
            "--out", str(out),
            *fault_flags,
            *extra,
        ]

    @pytest.mark.parametrize(
        "fault_flags",
        [(), ("--loss", "0.05", "--fault-timeout", "256")],
        ids=["clean", "lossy"],
    )
    def test_sigkilled_parallel_sweep_resumes_byte_identical(
        self, tmp_path, fault_flags
    ):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else "src"
        )
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out = tmp_path / "killed.jsonl"
        process = subprocess.Popen(
            self._sweep_argv(out, fault_flags, extra=("--jobs", "2")),
            cwd=repo_root,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as at least one record is on disk; on a machine
            # fast enough to finish the whole grid first, the kill is a
            # no-op and resume degenerates to the (still asserted)
            # complete-store case.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and process.poll() is None:
                if out.exists() and b'"kind":"record"' in out.read_bytes():
                    break
                time.sleep(0.01)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=60)

        persisted_before_resume = len(ExperimentStore(out).load_records())
        resume = subprocess.run(
            self._sweep_argv(out, fault_flags, extra=("--jobs", "2", "--resume")),
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stderr

        fresh_out = tmp_path / "fresh.jsonl"
        fresh = subprocess.run(
            self._sweep_argv(fresh_out, fault_flags),
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert fresh.returncode == 0, fresh.stderr

        resumed_records = ExperimentStore(out).load_records()
        fresh_records = ExperimentStore(fresh_out).load_records()
        assert len(resumed_records) == 12
        assert persisted_before_resume <= len(resumed_records)
        assert resumed_records == fresh_records
        assert render_jsonl(resumed_records) == render_jsonl(fresh_records)
        # And the CLI tables agree too (resume printed the merged table).
        assert resume.stdout == fresh.stdout
