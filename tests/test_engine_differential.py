"""Differential tests: every engine must be observationally identical
to the dense engine.

The dense scheduler reproduces the seed simulator bit-for-bit; the sparse
scheduler skips idle nodes; the vector scheduler routes dense semantics
through the engine's array-indexed round loop with batched broadcast
delivery.  For the paper's (idle-quiescent, self-waking) algorithms all
three must therefore agree on *everything* measurable: per-node results,
rounds, messages, total bits, the per-edge maximum, the memory high-water
mark -- and even the order of the traffic log, since the sparse active set
is ordered like the dense node order and the vector loop iterates it.

Workloads, per the engine-refactor acceptance criteria: single-source BFS,
pipelined multi-source BFS and the Figure-2 Evaluation procedure, on random
graphs (plus structured families), with the composed classical
exact-diameter algorithm as an end-to-end stress.
"""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import _BFSNode, run_bfs_tree
from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.algorithms.evaluation import run_evaluation_procedure
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.congest.errors import BandwidthExceededError, ProtocolError
from repro.congest.network import Network
from repro.congest.node import NodeAlgorithm
from repro.graphs import generators


def _metric_tuple(metrics):
    return (
        metrics.rounds,
        metrics.messages,
        metrics.total_bits,
        metrics.max_edge_bits_per_round,
        metrics.bandwidth_violations,
        metrics.max_node_memory_bits,
    )


DIFFERENTIAL_GRAPHS = {
    "random_gnp_20": lambda: generators.random_connected_gnp(20, p=0.18, seed=3),
    "random_gnp_32": lambda: generators.random_connected_gnp(32, p=0.12, seed=11),
    "random_gnp_40": lambda: generators.random_connected_gnp(40, p=0.09, seed=23),
    "random_tree_25": lambda: generators.random_tree(25, seed=7),
    "path_30": lambda: generators.path_graph(30),
    "clique_chain_4x4": lambda: generators.clique_chain(4, 4),
}


@pytest.fixture(params=sorted(DIFFERENTIAL_GRAPHS))
def diff_graph(request):
    return DIFFERENTIAL_GRAPHS[request.param]()


class TestSchedulerDifferential:
    def test_bfs_identical(self, diff_graph):
        root = diff_graph.nodes()[0]
        dense = run_bfs_tree(Network(diff_graph, engine="dense"), root)
        sparse = run_bfs_tree(Network(diff_graph, engine="sparse"), root)
        assert dense.parent == sparse.parent
        assert dense.distance == sparse.distance
        assert dense.children == sparse.children
        assert _metric_tuple(dense.metrics) == _metric_tuple(sparse.metrics)

    def test_multi_source_bfs_identical(self, diff_graph):
        sources = diff_graph.nodes()[:: max(1, diff_graph.num_nodes // 5)][:5]
        dense = run_multi_source_bfs(Network(diff_graph, engine="dense"), sources)
        sparse = run_multi_source_bfs(Network(diff_graph, engine="sparse"), sources)
        assert dense.distances == sparse.distances
        assert _metric_tuple(dense.metrics) == _metric_tuple(sparse.metrics)

    def test_evaluation_procedure_identical(self, diff_graph):
        root = diff_graph.nodes()[0]
        dense_net = Network(diff_graph, engine="dense")
        sparse_net = Network(diff_graph, engine="sparse")
        dense_tree = run_bfs_tree(dense_net, root)
        sparse_tree = run_bfs_tree(sparse_net, root)
        d = max(1, dense_tree.depth)
        for u0 in diff_graph.nodes()[:: max(1, diff_graph.num_nodes // 4)][:4]:
            dense = run_evaluation_procedure(dense_net, dense_tree, d, u0)
            sparse = run_evaluation_procedure(sparse_net, sparse_tree, d, u0)
            assert dense.value == sparse.value
            assert dense.window_nodes == sparse.window_nodes
            assert _metric_tuple(dense.metrics) == _metric_tuple(sparse.metrics)

    def test_traffic_logs_identical(self, diff_graph):
        """Even the per-message traffic log matches, entry for entry."""
        root = diff_graph.nodes()[0]
        dense_net = Network(diff_graph, engine="dense")
        sparse_net = Network(diff_graph, engine="sparse")

        def bfs_factory(node, net):
            return _BFSNode(
                node, net.graph.neighbors(node), net.num_nodes,
                net.node_rng(node), root,
            )

        dense = dense_net.run(bfs_factory, record_traffic=True)
        sparse = sparse_net.run(bfs_factory, record_traffic=True)
        assert dense.traffic == sparse.traffic

    def test_classical_exact_diameter_end_to_end(self):
        """The composed multi-phase algorithm (election, BFS, Euler tour,
        scheduled waves, convergecast) agrees across engines."""
        for seed in (1, 5):
            graph = generators.random_connected_gnp(24, p=0.15, seed=seed)
            dense = run_classical_exact_diameter(Network(graph, engine="dense"))
            sparse = run_classical_exact_diameter(Network(graph, engine="sparse"))
            assert dense.diameter == sparse.diameter == graph.diameter()
            assert _metric_tuple(dense.metrics) == _metric_tuple(sparse.metrics)


pytest.importorskip("numpy")


class _BigBroadcaster(NodeAlgorithm):
    """Broadcasts an over-budget payload once (bandwidth-parity probe)."""

    def on_round(self, round_number, inbox):
        if round_number == 0:
            return self.broadcast(list(range(64)))
        self.finished = True
        return None


class _NonNeighbourSender(NodeAlgorithm):
    """Sends to every node, neighbour or not (protocol-parity probe)."""

    labels = ()

    def on_round(self, round_number, inbox):
        self.finished = True
        if round_number == 0:
            return {
                other: 1 for other in self.labels if other != self.node_id
            }
        return None


class TestVectorEngineDifferential:
    """The vector engine (array-indexed round loop, batched broadcast
    delivery) against the dense reference, on the same fixtures."""

    def test_bfs_identical(self, diff_graph):
        root = diff_graph.nodes()[0]
        dense = run_bfs_tree(Network(diff_graph, engine="dense"), root)
        vec = run_bfs_tree(Network(diff_graph, engine="vector"), root)
        assert dense.parent == vec.parent
        assert dense.distance == vec.distance
        assert dense.children == vec.children
        assert _metric_tuple(dense.metrics) == _metric_tuple(vec.metrics)

    def test_multi_source_bfs_identical(self, diff_graph):
        sources = diff_graph.nodes()[:: max(1, diff_graph.num_nodes // 5)][:5]
        dense = run_multi_source_bfs(Network(diff_graph, engine="dense"), sources)
        vec = run_multi_source_bfs(Network(diff_graph, engine="vector"), sources)
        assert dense.distances == vec.distances
        assert _metric_tuple(dense.metrics) == _metric_tuple(vec.metrics)

    def test_evaluation_procedure_identical(self, diff_graph):
        root = diff_graph.nodes()[0]
        dense_net = Network(diff_graph, engine="dense")
        vec_net = Network(diff_graph, engine="vector")
        dense_tree = run_bfs_tree(dense_net, root)
        vec_tree = run_bfs_tree(vec_net, root)
        d = max(1, dense_tree.depth)
        for u0 in diff_graph.nodes()[:: max(1, diff_graph.num_nodes // 4)][:4]:
            dense = run_evaluation_procedure(dense_net, dense_tree, d, u0)
            vec = run_evaluation_procedure(vec_net, vec_tree, d, u0)
            assert dense.value == vec.value
            assert dense.window_nodes == vec.window_nodes
            assert _metric_tuple(dense.metrics) == _metric_tuple(vec.metrics)

    def test_traffic_logs_identical(self, diff_graph):
        """The batched broadcast delivery must leave the same traffic-log
        entries in the same order as per-message dense delivery."""
        root = diff_graph.nodes()[0]
        dense_net = Network(diff_graph, engine="dense")
        vec_net = Network(diff_graph, engine="vector")

        def bfs_factory(node, net):
            return _BFSNode(
                node, net.graph.neighbors(node), net.num_nodes,
                net.node_rng(node), root,
            )

        dense = dense_net.run(bfs_factory, record_traffic=True)
        vec = vec_net.run(bfs_factory, record_traffic=True)
        assert dense.traffic == vec.traffic

    def test_classical_exact_diameter_end_to_end(self):
        for seed in (1, 5):
            graph = generators.random_connected_gnp(24, p=0.15, seed=seed)
            dense = run_classical_exact_diameter(Network(graph, engine="dense"))
            vec = run_classical_exact_diameter(Network(graph, engine="vector"))
            assert dense.diameter == vec.diameter == graph.diameter()
            assert _metric_tuple(dense.metrics) == _metric_tuple(vec.metrics)

    def test_bandwidth_violations_counted_identically(self):
        chain = generators.clique_chain(5, 4)
        factory = lambda node, net: _BigBroadcaster(
            node, net.neighbors(node), net.num_nodes
        )
        snapshots = {}
        for engine in ("dense", "vector"):
            network = Network(
                chain, bandwidth_bits=8, strict_bandwidth=False, engine=engine
            )
            execution = network.run(factory)
            snapshots[engine] = _metric_tuple(execution.metrics)
        assert snapshots["dense"] == snapshots["vector"]
        assert snapshots["dense"][4] > 0  # the probe really violated

    def test_strict_bandwidth_error_identical(self):
        chain = generators.clique_chain(5, 4)
        factory = lambda node, net: _BigBroadcaster(
            node, net.neighbors(node), net.num_nodes
        )
        messages = {}
        for engine in ("dense", "vector"):
            network = Network(chain, bandwidth_bits=8, engine=engine)
            with pytest.raises(BandwidthExceededError) as error:
                network.run(factory)
            messages[engine] = str(error.value)
        assert messages["dense"] == messages["vector"]

    def test_non_neighbour_error_identical(self):
        path = generators.path_graph(5)
        _NonNeighbourSender.labels = path.nodes()
        factory = lambda node, net: _NonNeighbourSender(
            node, net.neighbors(node), net.num_nodes
        )
        messages = {}
        for engine in ("dense", "vector"):
            network = Network(path, engine=engine)
            with pytest.raises(ProtocolError) as error:
                network.run(factory)
            messages[engine] = str(error.value)
        assert messages["dense"] == messages["vector"]
