"""Tests for the analysis helpers (fits, sweeps, table rendering)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import (
    crossover_point,
    fit_power_law,
    fit_power_law_two_predictors,
    geometric_mean_ratio,
)
from repro.analysis.sweep import SweepRecord, run_sweep, sweep_table
from repro.analysis.tables import render_table, render_table1
from repro.graphs import generators
from repro.runner import EXACT, THREE_HALVES, SweepAlgorithmInfo


class TestPowerLawFits:
    def test_exact_power_law_recovered(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_linear_data(self):
        xs = [5, 10, 50, 100]
        fit = fit_power_law(xs, [2 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_prediction(self):
        fit = fit_power_law([1, 2, 4, 8], [1, 4, 16, 64])
        assert fit.predict(16) == pytest.approx(256, rel=1e-6)

    def test_noise_tolerance(self):
        xs = list(range(10, 200, 10))
        ys = [5 * x ** 0.7 * (1.0 + 0.02 * ((i % 3) - 1)) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 0.6 <= fit.exponent <= 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])

    def test_two_predictor_fit(self):
        data = []
        for u in (10, 20, 40):
            for v in (3, 9, 27):
                data.append((u, v, 2.0 * u ** 0.5 * v ** 1.0))
        us, vs, ys = zip(*data)
        fit = fit_power_law_two_predictors(us, vs, ys)
        assert fit.exponent_u == pytest.approx(0.5, abs=1e-6)
        assert fit.exponent_v == pytest.approx(1.0, abs=1e-6)
        assert fit.predict(100, 5) == pytest.approx(2.0 * 10 * 5, rel=1e-6)

    def test_two_predictor_validation(self):
        with pytest.raises(ValueError):
            fit_power_law_two_predictors([1, 2], [1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_power_law_two_predictors([1, 2], [1, 2], [1, 2])


class TestCrossoverAndRatios:
    def test_crossover_found(self):
        xs = [1, 2, 3, 4, 5]
        quantum = [10, 8, 6, 4, 2]
        classical = [3, 4, 5, 6, 7]
        assert crossover_point(xs, quantum, classical) == 4

    def test_crossover_absent(self):
        xs = [1, 2, 3]
        assert crossover_point(xs, [5, 5, 5], [1, 1, 1]) is None

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            crossover_point([1, 2], [1], [1, 2])

    def test_geometric_mean_ratio(self):
        assert geometric_mean_ratio([2, 8], [1, 2]) == pytest.approx(math.sqrt(8))
        with pytest.raises(ValueError):
            geometric_mean_ratio([], [])
        with pytest.raises(ValueError):
            geometric_mean_ratio([1, 2], [1])


class TestSweepAndTables:
    def test_run_sweep_checks_correctness(self):
        # Correctness gating is explicit metadata (SweepAlgorithmInfo), not
        # a substring match on the algorithm name: "oracle" carries EXACT
        # despite not containing "exact", and the bare "estimate" callable
        # is never checked.
        graphs = [("cycle", generators.cycle_graph(8)), ("path", generators.path_graph(6))]
        algorithms = {
            "oracle": SweepAlgorithmInfo(
                lambda g: (g.num_nodes, float(g.diameter())), guarantee=EXACT
            ),
            "always_zero": SweepAlgorithmInfo(lambda g: (1, 0.0), guarantee=EXACT),
            "estimate": lambda g: (2, 1.0),
        }
        records = run_sweep(graphs, algorithms)
        assert len(records) == 6
        oracle_records = [r for r in records if r.algorithm == "oracle"]
        assert all(r.correct for r in oracle_records)
        assert all(r.extra == {} for r in oracle_records)
        zero_records = [r for r in records if r.algorithm == "always_zero"]
        assert not any(r.correct for r in zero_records)
        # Failed checks surface the mismatch against the oracle.
        assert all(r.extra["oracle_diameter"] == r.diameter for r in zero_records)
        assert all(r.extra["value_minus_oracle"] == -r.diameter for r in zero_records)
        estimate_records = [r for r in records if r.algorithm == "estimate"]
        assert all(r.correct is None for r in estimate_records)

    def test_exact_check_rounds_instead_of_truncating(self):
        # 3.9999999 must compare as 4 (the seed behaviour int()-truncated
        # it to 3); a genuinely non-integral value fails the exactness
        # assertion and is surfaced in extra.
        graphs = [("controlled", generators.diameter_controlled_graph(12, 4, seed=1))]
        algorithms = {
            "near_integer": SweepAlgorithmInfo(
                lambda g: (1, 3.9999999), guarantee=EXACT
            ),
            "half_way": SweepAlgorithmInfo(lambda g: (1, 3.5), guarantee=EXACT),
        }
        records = {r.algorithm: r for r in run_sweep(graphs, algorithms)}
        assert records["near_integer"].correct is True
        assert records["near_integer"].extra == {}
        assert records["half_way"].correct is False
        assert records["half_way"].extra["nonintegral_value"] == 3.5

    def test_approx_guarantee_checked_when_oracle_available(self):
        # Approximation guarantees don't force the oracle, but are checked
        # opportunistically when an exact algorithm already paid for it.
        graphs = [("cycle", generators.cycle_graph(12))]  # D = 6
        algorithms = {
            "oracle": SweepAlgorithmInfo(
                lambda g: (1, float(g.diameter())), guarantee=EXACT
            ),
            "good_estimate": SweepAlgorithmInfo(
                lambda g: (1, 4.0), guarantee=THREE_HALVES  # floor(2*6/3) = 4
            ),
            "bad_estimate": SweepAlgorithmInfo(
                lambda g: (1, 3.0), guarantee=THREE_HALVES
            ),
        }
        records = {r.algorithm: r for r in run_sweep(graphs, algorithms)}
        assert records["good_estimate"].correct is True
        assert records["bad_estimate"].correct is False
        assert records["bad_estimate"].extra["oracle_diameter"] == 6.0
        # Without the exact algorithm there is no oracle, hence no verdict.
        del algorithms["oracle"]
        records = {r.algorithm: r for r in run_sweep(graphs, algorithms)}
        assert records["good_estimate"].correct is None
        assert records["good_estimate"].diameter is None

    def test_sweep_table_rendering(self):
        records = [
            SweepRecord("cycle", "classical", 10, 5, 40, 5.0, True),
            SweepRecord("cycle", "quantum", 10, 5, 90, 5.0, True),
        ]
        text = sweep_table(records)
        assert "classical" in text and "quantum" in text
        assert text.splitlines()[0].startswith("family")

    def test_sweep_table_empty(self):
        assert sweep_table([]) == "(no records)"

    def test_render_table_alignment(self):
        text = render_table([["a", "1"], ["bb", "22"]], header=["col", "val"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_render_table1_contains_all_rows(self):
        text = render_table1(n=10 ** 4, diameter=16)
        assert "Exact computation" in text
        assert "3/2-approximation" in text
        assert "Theorem 1" in text
        assert "Theorem 4" in text
