"""Tests for the analysis helpers (fits, sweeps, table rendering)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import (
    crossover_point,
    fit_power_law,
    fit_power_law_two_predictors,
    geometric_mean_ratio,
)
from repro.analysis.sweep import SweepRecord, run_sweep, sweep_table
from repro.analysis.tables import render_table, render_table1
from repro.graphs import generators


class TestPowerLawFits:
    def test_exact_power_law_recovered(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_linear_data(self):
        xs = [5, 10, 50, 100]
        fit = fit_power_law(xs, [2 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_prediction(self):
        fit = fit_power_law([1, 2, 4, 8], [1, 4, 16, 64])
        assert fit.predict(16) == pytest.approx(256, rel=1e-6)

    def test_noise_tolerance(self):
        xs = list(range(10, 200, 10))
        ys = [5 * x ** 0.7 * (1.0 + 0.02 * ((i % 3) - 1)) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 0.6 <= fit.exponent <= 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])

    def test_two_predictor_fit(self):
        data = []
        for u in (10, 20, 40):
            for v in (3, 9, 27):
                data.append((u, v, 2.0 * u ** 0.5 * v ** 1.0))
        us, vs, ys = zip(*data)
        fit = fit_power_law_two_predictors(us, vs, ys)
        assert fit.exponent_u == pytest.approx(0.5, abs=1e-6)
        assert fit.exponent_v == pytest.approx(1.0, abs=1e-6)
        assert fit.predict(100, 5) == pytest.approx(2.0 * 10 * 5, rel=1e-6)

    def test_two_predictor_validation(self):
        with pytest.raises(ValueError):
            fit_power_law_two_predictors([1, 2], [1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_power_law_two_predictors([1, 2], [1, 2], [1, 2])


class TestCrossoverAndRatios:
    def test_crossover_found(self):
        xs = [1, 2, 3, 4, 5]
        quantum = [10, 8, 6, 4, 2]
        classical = [3, 4, 5, 6, 7]
        assert crossover_point(xs, quantum, classical) == 4

    def test_crossover_absent(self):
        xs = [1, 2, 3]
        assert crossover_point(xs, [5, 5, 5], [1, 1, 1]) is None

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            crossover_point([1, 2], [1], [1, 2])

    def test_geometric_mean_ratio(self):
        assert geometric_mean_ratio([2, 8], [1, 2]) == pytest.approx(math.sqrt(8))
        with pytest.raises(ValueError):
            geometric_mean_ratio([], [])
        with pytest.raises(ValueError):
            geometric_mean_ratio([1, 2], [1])


class TestSweepAndTables:
    def test_run_sweep_checks_correctness(self):
        graphs = [("cycle", generators.cycle_graph(8)), ("path", generators.path_graph(6))]
        algorithms = {
            "oracle_exact": lambda g: (g.num_nodes, float(g.diameter())),
            "always_zero_exact": lambda g: (1, 0.0),
            "estimate": lambda g: (2, 1.0),
        }
        records = run_sweep(graphs, algorithms)
        assert len(records) == 6
        oracle_records = [r for r in records if r.algorithm == "oracle_exact"]
        assert all(r.correct for r in oracle_records)
        zero_records = [r for r in records if r.algorithm == "always_zero_exact"]
        assert not any(r.correct for r in zero_records)
        estimate_records = [r for r in records if r.algorithm == "estimate"]
        assert all(r.correct is None for r in estimate_records)

    def test_sweep_table_rendering(self):
        records = [
            SweepRecord("cycle", "classical", 10, 5, 40, 5.0, True),
            SweepRecord("cycle", "quantum", 10, 5, 90, 5.0, True),
        ]
        text = sweep_table(records)
        assert "classical" in text and "quantum" in text
        assert text.splitlines()[0].startswith("family")

    def test_sweep_table_empty(self):
        assert sweep_table([]) == "(no records)"

    def test_render_table_alignment(self):
        text = render_table([["a", "1"], ["bb", "22"]], header=["col", "val"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_render_table1_contains_all_rows(self):
        text = render_table1(n=10 ** 4, diameter=16)
        assert "Exact computation" in text
        assert "3/2-approximation" in text
        assert "Theorem 1" in text
        assert "Theorem 4" in text
