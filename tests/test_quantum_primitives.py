"""Tests for the centralized quantum primitives (Section 2.3 / Theorem 6)."""

from __future__ import annotations

import math
import random

import pytest

from repro.quantum.amplitude_amplification import (
    amplitude_amplification_search,
    grover_success_probability,
    optimal_grover_iterations,
    theorem6_query_budget,
)
from repro.quantum.cost_model import (
    QuantumCostModel,
    QuantumResourceCount,
    leader_memory_bits,
)
from repro.quantum.grover import grover_search
from repro.quantum.maximum_finding import find_maximum, uniform_amplitudes
from repro.quantum.state import StateVector, cnot_copy_register
from repro.congest.metrics import ExecutionMetrics


class TestGroverRotationAlgebra:
    def test_zero_iterations_gives_initial_probability(self):
        assert grover_success_probability(0.25, 0) == pytest.approx(0.25)

    def test_probability_is_exact_rotation(self):
        p = 0.04
        theta = math.asin(math.sqrt(p))
        for k in range(6):
            expected = math.sin((2 * k + 1) * theta) ** 2
            assert grover_success_probability(p, k) == pytest.approx(expected)

    def test_single_marked_item_in_four_is_found_after_one_iteration(self):
        # The textbook case: N = 4, one marked item, one iteration succeeds
        # with certainty.
        assert grover_success_probability(0.25, 1) == pytest.approx(1.0)

    def test_optimal_iterations_scale_as_inverse_sqrt(self):
        small = optimal_grover_iterations(1 / 16)
        large = optimal_grover_iterations(1 / 1024)
        assert large > small
        assert large == pytest.approx(math.pi / 4 * math.sqrt(1024), rel=0.2)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            grover_success_probability(1.5, 1)
        with pytest.raises(ValueError):
            grover_success_probability(0.5, -1)
        with pytest.raises(ValueError):
            optimal_grover_iterations(0.0)

    def test_budget_scales_with_eps_and_delta(self):
        assert theorem6_query_budget(0.01, 0.1) > theorem6_query_budget(0.25, 0.1)
        assert theorem6_query_budget(0.1, 0.001) > theorem6_query_budget(0.1, 0.1)
        with pytest.raises(ValueError):
            theorem6_query_budget(0.0, 0.1)
        with pytest.raises(ValueError):
            theorem6_query_budget(0.1, 1.0)


class TestAmplitudeAmplificationSearch:
    def _uniform(self, n):
        return {i: 1.0 / math.sqrt(n) for i in range(n)}

    def test_finds_marked_item_with_high_probability(self):
        amplitudes = self._uniform(64)
        marked = {7, 21}
        successes = 0
        for seed in range(30):
            outcome = amplitude_amplification_search(
                amplitudes, lambda x: x in marked, random.Random(seed),
                eps=2 / 64, delta=0.05,
            )
            if outcome.found is not None:
                assert outcome.found in marked
                successes += 1
        assert successes >= 25

    def test_reports_empty_when_nothing_marked(self):
        amplitudes = self._uniform(32)
        outcome = amplitude_amplification_search(
            amplitudes, lambda x: False, random.Random(1), eps=1 / 32, delta=0.1
        )
        assert outcome.found is None
        assert outcome.oracle_calls <= theorem6_query_budget(1 / 32, 0.1)

    def test_query_count_scales_as_sqrt(self):
        calls = {}
        for n in (16, 256):
            amplitudes = self._uniform(n)
            total = 0
            for seed in range(20):
                outcome = amplitude_amplification_search(
                    amplitudes, lambda x: x == 0, random.Random(seed),
                    eps=1 / n, delta=0.1,
                )
                total += outcome.oracle_calls
            calls[n] = total / 20
        # sqrt(256/16) = 4; allow generous slack around it.
        assert 1.5 <= calls[256] / calls[16] <= 12.0

    def test_unnormalised_amplitudes_rejected(self):
        with pytest.raises(ValueError):
            amplitude_amplification_search(
                {0: 1.0, 1: 1.0}, lambda x: True, random.Random(0), eps=0.5, delta=0.1
            )

    def test_respects_conditional_distribution(self):
        # Marked items with unequal amplitudes should be sampled according
        # to their squared amplitudes.
        amplitudes = {"a": math.sqrt(0.64), "b": math.sqrt(0.16), "c": math.sqrt(0.2)}
        counts = {"a": 0, "b": 0}
        for seed in range(200):
            outcome = amplitude_amplification_search(
                amplitudes, lambda x: x in ("a", "b"), random.Random(seed),
                eps=0.5, delta=0.1,
            )
            if outcome.found is not None:
                counts[outcome.found] += 1
        assert counts["a"] > counts["b"]


class TestGroverSearch:
    def test_finds_unique_element(self):
        items = list(range(50))
        result = grover_search(items, lambda x: x == 37, rng=random.Random(3))
        assert result.found == 37
        assert result.oracle_calls >= 1

    def test_no_marked_items(self):
        result = grover_search(list(range(20)), lambda x: False, rng=random.Random(0))
        assert not result.succeeded

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            grover_search([], lambda x: True)


class TestMaximumFinding:
    def test_finds_maximum_with_high_probability(self):
        values = {i: (i * 7) % 23 for i in range(40)}
        true_max = max(values.values())
        hits = 0
        for seed in range(20):
            result = find_maximum(
                uniform_amplitudes(values), lambda x: values[x],
                eps=1 / 40, delta=0.05, rng=random.Random(seed),
            )
            if result.best_value == true_max:
                hits += 1
        assert hits >= 16

    def test_unique_maximum_found_reliably(self):
        values = {i: (100 if i == 13 else 1) for i in range(30)}
        hits = sum(
            find_maximum(
                uniform_amplitudes(values), lambda x: values[x],
                eps=1 / 30, delta=0.05, rng=random.Random(seed),
            ).best_item == 13
            for seed in range(20)
        )
        assert hits >= 15

    def test_constant_function(self):
        values = {i: 5 for i in range(10)}
        result = find_maximum(
            uniform_amplitudes(values), lambda x: values[x],
            eps=0.5, delta=0.1, rng=random.Random(0),
        )
        assert result.best_value == 5

    def test_call_counts_reported(self):
        values = {i: i for i in range(16)}
        result = find_maximum(
            uniform_amplitudes(values), lambda x: values[x],
            eps=1 / 16, delta=0.1, rng=random.Random(5),
        )
        assert result.setup_calls >= result.measurements >= 1
        assert result.evaluation_calls >= 1

    def test_larger_eps_means_fewer_calls(self):
        values = {i: i % 5 for i in range(64)}
        few = find_maximum(
            uniform_amplitudes(values), lambda x: values[x],
            eps=0.5, delta=0.1, rng=random.Random(2),
        )
        many = find_maximum(
            uniform_amplitudes(values), lambda x: values[x],
            eps=1 / 64, delta=0.1, rng=random.Random(2),
        )
        assert few.evaluation_calls <= many.evaluation_calls * 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            find_maximum({}, lambda x: 0, eps=0.5)
        with pytest.raises(ValueError):
            find_maximum({0: 1.0}, lambda x: 0, eps=0.0)


class TestCostModel:
    def test_total_rounds_formula(self):
        model = QuantumCostModel(
            initialization=ExecutionMetrics(rounds=10),
            setup=ExecutionMetrics(rounds=3),
            evaluation=ExecutionMetrics(rounds=7),
        )
        counts = QuantumResourceCount(setup_calls=4, evaluation_calls=5)
        assert model.total_rounds(counts) == 10 + 12 + 35
        metrics = model.total_metrics(counts)
        assert metrics.rounds == 57
        assert metrics.phase_rounds["setup"] == 12
        assert metrics.phase_rounds["evaluation"] == 35

    def test_counts_merge(self):
        a = QuantumResourceCount(setup_calls=1, evaluation_calls=2, measurements=3)
        b = QuantumResourceCount(setup_calls=4, evaluation_calls=5, measurements=6)
        merged = a.merged(b)
        assert (merged.setup_calls, merged.evaluation_calls, merged.measurements) == (5, 7, 9)

    def test_leader_memory_is_polylog(self):
        small = leader_memory_bits(64, 1 / 64)
        large = leader_memory_bits(4096, 1 / 4096)
        assert small <= large
        assert large <= (math.ceil(math.log2(4097)) ** 2) * 2
        with pytest.raises(ValueError):
            leader_memory_bits(0, 0.5)
        with pytest.raises(ValueError):
            leader_memory_bits(8, 0.0)


class TestStateVector:
    def test_initial_state(self):
        state = StateVector(2)
        assert state.probability_of([0, 0]) == pytest.approx(1.0)
        assert state.is_normalised()

    def test_hadamard_creates_uniform(self):
        state = StateVector(3)
        for qubit in range(3):
            state.apply_hadamard(qubit)
        probabilities = state.probabilities()
        assert len(probabilities) == 8
        assert all(p == pytest.approx(1 / 8) for p in probabilities.values())

    def test_x_and_z_gates(self):
        state = StateVector.from_basis_state([0, 1])
        state.apply_x(0)
        assert state.probability_of([1, 1]) == pytest.approx(1.0)
        state.apply_z(0)  # only a phase; probabilities unchanged
        assert state.probability_of([1, 1]) == pytest.approx(1.0)

    def test_cnot(self):
        state = StateVector.from_basis_state([1, 0])
        state.apply_cnot(0, 1)
        assert state.probability_of([1, 1]) == pytest.approx(1.0)

    def test_cnot_on_superposition_creates_bell_pair(self):
        state = StateVector(2)
        state.apply_hadamard(0)
        state.apply_cnot(0, 1)
        probabilities = state.probabilities()
        assert probabilities[(0, 0)] == pytest.approx(0.5)
        assert probabilities[(1, 1)] == pytest.approx(0.5)

    def test_cnot_copy_register_on_basis_state(self):
        """The CNOT copy of Section 2: |u>|0> -> |u>|u>."""
        state = StateVector.from_basis_state([1, 0, 1, 0, 0, 0])
        cnot_copy_register(state, source=[0, 1, 2], target=[3, 4, 5])
        assert state.probability_of([1, 0, 1, 1, 0, 1]) == pytest.approx(1.0)

    def test_cnot_copy_register_entangles_superposition(self):
        """On a superposition the CNOT copy entangles rather than clones."""
        state = StateVector(2)
        state.apply_hadamard(0)
        cnot_copy_register(state, source=[0], target=[1])
        probabilities = state.probabilities()
        assert set(probabilities) == {(0, 0), (1, 1)}

    def test_cnot_copy_validation(self):
        state = StateVector(4)
        with pytest.raises(ValueError):
            cnot_copy_register(state, [0, 1], [1, 2])
        with pytest.raises(ValueError):
            cnot_copy_register(state, [0], [1, 2])

    def test_grover_on_state_vector(self):
        """One explicit Grover iteration on 2 qubits finds the marked item."""
        state = StateVector.uniform_superposition(2)
        state.apply_phase_oracle(lambda bits: bits == (1, 0))
        state.apply_diffusion()
        assert state.probability_of([1, 0]) == pytest.approx(1.0)

    def test_measure_respects_born_rule(self):
        state = StateVector.from_basis_state([0, 1])
        assert state.measure(random.Random(0)) == (0, 1)

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            StateVector(25)

    def test_qubit_index_validation(self):
        state = StateVector(2)
        with pytest.raises(ValueError):
            state.apply_hadamard(5)
        with pytest.raises(ValueError):
            state.apply_cnot(0, 0)
