"""Concurrent-access tests for the experiment store and its writer lock.

The experiment service turned the store from a single-process file into
a shared resource: a daemon thread polls ``completed_keys()`` while a
worker subprocess appends records, and two processes must never
interleave writes.  These tests pin the two halves of that contract:

* **readers during writes** -- a reader scanning mid-append (or after a
  crash truncated the tail mid-record) sees every complete record and
  never a corrupt one;
* **the advisory writer lock** -- mutual exclusion across processes,
  holder-pid diagnostics, stale-lock breaking for dead holders, and the
  ``run_sweep_grid(store=...)`` integration.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.analysis.sweep import SweepRecord, run_sweep_grid
from repro.runner import grid, resolve_algorithms
from repro.store import (
    ExperimentStore,
    StoreLockError,
    StoreWriterLock,
    iter_jsonl_entries,
)

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

#: A child process that appends ``count`` records to a store, pausing
#: ``pause`` seconds between appends so a parent can scan mid-write.
_WRITER_SCRIPT = """\
import sys
from repro.store import ExperimentStore
from repro.analysis.sweep import SweepRecord

path, count, pause = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
store = ExperimentStore(path)
import time
for index in range(count):
    record = SweepRecord(
        family=f"cycle[{index}]", num_nodes=10, algorithm="classical_exact",
        value=float(index), rounds=index, correct=True, diameter=index,
    )
    store.append_record(f"key-{index:04d}", index, record)
    time.sleep(pause)
print("done", flush=True)
"""


def _record(index: int) -> SweepRecord:
    return SweepRecord(
        family=f"cycle[{index}]", num_nodes=10, algorithm="classical_exact",
        value=float(index), rounds=index, correct=True, diameter=index,
    )


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class TestReaderDuringWrites:
    def test_reader_never_sees_corrupt_records(self, tmp_path):
        """Scan continuously while a subprocess writer appends."""
        path = str(tmp_path / "run.jsonl")
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, path, "40", "0.005"],
            env=_env(), stdout=subprocess.PIPE, text=True,
        )
        try:
            seen = 0
            deadline = time.monotonic() + 30
            while proc.poll() is None and time.monotonic() < deadline:
                store = ExperimentStore(path)
                if store.exists():
                    records = store.load_records()
                    keys = store.completed_keys()
                    # every scanned record is complete and well-formed
                    for index, record in enumerate(records):
                        assert record == _record(index)
                    assert len(keys) >= seen  # monotone durable progress
                    seen = max(seen, len(keys))
            assert proc.wait(timeout=30) == 0
        finally:
            proc.kill()
        assert len(ExperimentStore(path).load_records()) == 40

    def test_mid_record_truncation_drops_only_tail(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        store = ExperimentStore(path)
        for index in range(3):
            store.append_record(f"key-{index}", index, _record(index))
        # SIGKILL-style crash: the last line is cut mid-record
        full = open(path, "rb").read()
        cut = full.rfind(b'"kind"')  # inside the final record's JSON
        assert cut > 0
        with open(path, "wb") as handle:
            handle.write(full[:cut])

        survivors = ExperimentStore(path).load_records()
        assert survivors == [_record(0), _record(1)]
        assert ExperimentStore(path).completed_keys() == {"key-0", "key-1"}

        # the newline guard must keep the next append parseable: the
        # partial line is terminated first, then the new record lands
        store.append_record("key-9", 9, _record(9))
        records = ExperimentStore(path).load_records()
        assert records == [_record(0), _record(1), _record(9)]
        for entry in iter_jsonl_entries(path):
            json.dumps(entry)  # every surviving entry is valid JSON


class TestWriterLock:
    def test_mutual_exclusion_and_holder_diagnostics(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        with store.acquire_writer():
            with pytest.raises(StoreLockError) as info:
                store.acquire_writer().acquire()
            message = str(info.value)
            assert str(os.getpid()) in message  # names the holder pid
            assert ".lock" in message
        # released on exit: the next writer gets in
        with store.acquire_writer():
            pass

    def test_lock_file_removed_on_release(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        lock = store.acquire_writer()
        lock.acquire()
        assert os.path.exists(lock.lock_path)
        lock.release()
        assert not os.path.exists(lock.lock_path)

    def test_stale_lock_of_dead_holder_is_broken(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        lock = store.acquire_writer()
        # forge a lock held by a dead pid on this host
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True,
        )
        dead_pid = int(proc.stdout.strip())
        import platform
        with open(lock.lock_path, "w", encoding="utf-8") as handle:
            json.dump({"pid": dead_pid, "host": platform.node()}, handle)
        with store.acquire_writer():  # steals the stale lock
            pass

    def test_unreadable_lock_is_stale(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        lock = store.acquire_writer()
        with open(lock.lock_path, "w", encoding="utf-8") as handle:
            handle.write("not json{")
        with store.acquire_writer():
            pass

    def test_timeout_waits_for_release(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        holder = store.acquire_writer()
        holder.acquire()

        import threading
        released = []

        def release_soon():
            time.sleep(0.3)
            holder.release()
            released.append(True)

        thread = threading.Thread(target=release_soon)
        thread.start()
        with store.acquire_writer(timeout=5.0, poll=0.02):
            assert released  # only acquired after the holder let go
        thread.join()

    def test_exclusion_across_processes(self, tmp_path):
        """A second *process* cannot write while the lock is held."""
        store = ExperimentStore(tmp_path / "run.jsonl")
        script = (
            "import sys\n"
            "from repro.store import ExperimentStore, StoreLockError\n"
            "store = ExperimentStore(sys.argv[1])\n"
            "try:\n"
            "    store.acquire_writer().acquire()\n"
            "except StoreLockError:\n"
            "    sys.exit(42)\n"
            "sys.exit(0)\n"
        )
        with store.acquire_writer():
            proc = subprocess.run(
                [sys.executable, "-c", script, store.path],
                env=_env(), timeout=30,
            )
            assert proc.returncode == 42
        # after release the child acquires cleanly
        proc = subprocess.run(
            [sys.executable, "-c", script, store.path], env=_env(), timeout=30,
        )
        assert proc.returncode == 0


class TestSweepIntegration:
    def test_run_sweep_grid_takes_the_writer_lock(self, tmp_path):
        store = ExperimentStore(tmp_path / "run.jsonl")
        specs = grid(["cycle"], [10], seed=1)
        algorithms = resolve_algorithms(["classical_exact"])
        with store.acquire_writer():
            with pytest.raises(StoreLockError):
                run_sweep_grid(specs, algorithms, store=store)
        # lock released by the failed attempt's holder: sweep proceeds
        records = run_sweep_grid(specs, algorithms, store=store)
        assert len(records) == 1
        assert store.load_records() == records
