"""Regression: runs are reproducible across ``PYTHONHASHSEED`` values.

An earlier revision stored neighbourhoods in ``set``s, whose iteration
order for tuple (and string) node labels is randomised per process: two
identical runs under different hash seeds could report neighbours, BFS
discovery orders and component listings in different orders.  The graph
core now keeps adjacency insertion-ordered, so everything derived from it
-- including full sweep records -- must be byte-identical across hash
seeds.

The test executes the same scenario script in two subprocesses with
different ``PYTHONHASHSEED`` values and compares their JSON output
verbatim.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: The scenario: a tuple-labelled graph exercised end-to-end -- neighbour
#: order, BFS discovery order, component order, a full sweep with the
#: correctness gate, and a distributed BFS over the engine.
_SCRIPT = r"""
import json
import sys

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.analysis.sweep import run_sweep
from repro.congest.network import Network
from repro.graphs.graph import Graph
from repro.runner.algorithms import SweepAlgorithmInfo, EXACT

graph = Graph()
for i in range(12):
    graph.add_edge(("ring", i), ("ring", (i + 1) % 12))
for i in (0, 4, 8):
    graph.add_edge(("ring", i), ("spoke", i))
    graph.add_edge(("spoke", i), ("hub", "center"))

def exact_kernel(g):
    result = run_classical_exact_diameter(Network(g, seed=3))
    return result.rounds, float(result.diameter)

records = run_sweep(
    [("tuple-wheel", graph)],
    {"classical_exact": SweepAlgorithmInfo(exact_kernel, guarantee=EXACT)},
)

tree = run_bfs_tree(Network(graph, seed=3), ("hub", "center"))

split = Graph(nodes=[("a", 1), ("b", 2)], edges=[])
split.add_edge(("a", 1), ("a", 2))
split.add_edge(("b", 2), ("b", 3))

out = {
    "hash_randomised": sys.flags.hash_randomization,
    "neighbors": [[repr(n), [repr(v) for v in graph.neighbors(n)]]
                  for n in graph.nodes()],
    "csr_neighbors": [[repr(n), [repr(v) for v in graph.compile().neighbors(n)]]
                      for n in graph.nodes()],
    "bfs_order": [repr(n) for n in graph.bfs_distances(("hub", "center"))],
    "components": [sorted(map(repr, c)) for c in split.connected_components()],
    "eccentricities": [[repr(n), e]
                       for n, e in graph.compile().all_eccentricities().items()],
    "records": [[r.family, r.algorithm, r.num_nodes, r.diameter, r.rounds,
                 r.value, r.correct, sorted(r.extra.items())] for r in records],
    "bfs_tree": sorted((repr(n), repr(p)) for n, p in tree.parent.items()),
    "bfs_metrics": [tree.metrics.rounds, tree.metrics.messages,
                    tree.metrics.total_bits],
}
print(json.dumps(out, sort_keys=True))
"""


def _run_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


def test_sweep_records_identical_across_hash_seeds():
    first = _run_with_hash_seed("1")
    second = _run_with_hash_seed("4242")
    # Make sure the subprocesses really ran under different, active hash
    # randomisation (otherwise the comparison proves nothing).
    assert first["hash_randomised"] == second["hash_randomised"] == 1
    for key in first:
        if key == "hash_randomised":
            continue
        assert first[key] == second[key], f"{key} differs across PYTHONHASHSEED"


#: The quantum scenario: the full Theorem-7 stack -- both schedule
#: backends, the seed-stream split of the quantum kernels, all four
#: registered problems, a tuple-labelled graph, and a quantum sweep with
#: the custom-oracle correctness gate.  Everything derives randomness
#: from CRC-based task seeds and insertion-ordered adjacency, so the JSON
#: must be verbatim-identical across hash seeds.
_QUANTUM_SCRIPT = r"""
import json
import sys

from repro.analysis.sweep import run_sweep_grid
from repro.congest.network import Network
from repro.core import quantum_exact_diameter, quantum_exact_radius
from repro.core.problems import QUANTUM_PROBLEMS
from repro.graphs.graph import Graph
from repro.runner import GraphSpec, resolve_algorithms

graph = Graph()
for i in range(10):
    graph.add_edge(("ring", i), ("ring", (i + 1) % 10))
graph.add_edge(("ring", 0), ("chord", "x"))
graph.add_edge(("chord", "x"), ("ring", 5))

runs = {}
for backend in ("sampling", "batched"):
    result = quantum_exact_diameter(
        Network(graph, seed=2, bandwidth_bits=160), oracle_mode="reference",
        seed=7, backend=backend
    )
    runs[backend] = [
        result.diameter, result.rounds, repr(result.leader),
        result.counts.setup_calls, result.counts.evaluation_calls,
        result.counts.measurements,
    ]

radius = quantum_exact_radius(
    Network(graph, seed=2, bandwidth_bits=160), oracle_mode="reference", seed=3
)

problems = {}
for name, info in sorted(QUANTUM_PROBLEMS.items()):
    run = info.solve(Network(graph, seed=1, bandwidth_bits=160),
                     oracle_mode="reference", seed=5, backend="batched")
    problems[name] = [run.value, run.rounds, run.counts.evaluation_calls]

records = run_sweep_grid(
    (GraphSpec(family="clique_chain", num_nodes=12, seed=4),),
    resolve_algorithms(["quantum_exact", "quantum_radius", "quantum_source_ecc"]),
    base_seed=9,
)

out = {
    "hash_randomised": sys.flags.hash_randomization,
    "backend_runs": runs,
    "radius": [radius.radius, repr(radius.center), radius.rounds],
    "problems": problems,
    "records": [[r.family, r.algorithm, r.num_nodes, r.diameter, r.rounds,
                 r.value, r.correct, sorted(r.extra.items())] for r in records],
}
print(json.dumps(out, sort_keys=True))
"""


def test_quantum_stack_identical_across_hash_seeds():
    """Regression for the quantum seed-stream isolation work: schedule,
    network and graph streams are derived with CRC task seeds, so the
    whole quantum stack (both backends, all registered problems, quantum
    sweep records) must be reproducible under hash randomisation."""
    env = dict(os.environ)

    def run(seed: str) -> dict:
        env["PYTHONHASHSEED"] = seed
        existing = os.environ.get("PYTHONPATH")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        result = subprocess.run(
            [sys.executable, "-c", _QUANTUM_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return json.loads(result.stdout)

    first = run("1")
    second = run("4242")
    assert first["hash_randomised"] == second["hash_randomised"] == 1
    # The two backends must agree inside each subprocess as well.
    assert first["backend_runs"]["sampling"] == first["backend_runs"]["batched"]
    for key in first:
        if key == "hash_randomised":
            continue
        assert first[key] == second[key], f"{key} differs across PYTHONHASHSEED"
