"""Regression: runs are reproducible across ``PYTHONHASHSEED`` values.

An earlier revision stored neighbourhoods in ``set``s, whose iteration
order for tuple (and string) node labels is randomised per process: two
identical runs under different hash seeds could report neighbours, BFS
discovery orders and component listings in different orders.  The graph
core now keeps adjacency insertion-ordered, so everything derived from it
-- including full sweep records -- must be byte-identical across hash
seeds.

The test executes the same scenario script in two subprocesses with
different ``PYTHONHASHSEED`` values and compares their JSON output
verbatim.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: The scenario: a tuple-labelled graph exercised end-to-end -- neighbour
#: order, BFS discovery order, component order, a full sweep with the
#: correctness gate, and a distributed BFS over the engine.
_SCRIPT = r"""
import json
import sys

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.analysis.sweep import run_sweep
from repro.congest.network import Network
from repro.graphs.graph import Graph
from repro.runner.algorithms import SweepAlgorithmInfo, EXACT

graph = Graph()
for i in range(12):
    graph.add_edge(("ring", i), ("ring", (i + 1) % 12))
for i in (0, 4, 8):
    graph.add_edge(("ring", i), ("spoke", i))
    graph.add_edge(("spoke", i), ("hub", "center"))

def exact_kernel(g):
    result = run_classical_exact_diameter(Network(g, seed=3))
    return result.rounds, float(result.diameter)

records = run_sweep(
    [("tuple-wheel", graph)],
    {"classical_exact": SweepAlgorithmInfo(exact_kernel, guarantee=EXACT)},
)

tree = run_bfs_tree(Network(graph, seed=3), ("hub", "center"))

split = Graph(nodes=[("a", 1), ("b", 2)], edges=[])
split.add_edge(("a", 1), ("a", 2))
split.add_edge(("b", 2), ("b", 3))

out = {
    "hash_randomised": sys.flags.hash_randomization,
    "neighbors": [[repr(n), [repr(v) for v in graph.neighbors(n)]]
                  for n in graph.nodes()],
    "csr_neighbors": [[repr(n), [repr(v) for v in graph.compile().neighbors(n)]]
                      for n in graph.nodes()],
    "bfs_order": [repr(n) for n in graph.bfs_distances(("hub", "center"))],
    "components": [sorted(map(repr, c)) for c in split.connected_components()],
    "eccentricities": [[repr(n), e]
                       for n, e in graph.compile().all_eccentricities().items()],
    "records": [[r.family, r.algorithm, r.num_nodes, r.diameter, r.rounds,
                 r.value, r.correct, sorted(r.extra.items())] for r in records],
    "bfs_tree": sorted((repr(n), repr(p)) for n, p in tree.parent.items()),
    "bfs_metrics": [tree.metrics.rounds, tree.metrics.messages,
                    tree.metrics.total_bits],
}
print(json.dumps(out, sort_keys=True))
"""


def _run_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


def test_sweep_records_identical_across_hash_seeds():
    first = _run_with_hash_seed("1")
    second = _run_with_hash_seed("4242")
    # Make sure the subprocesses really ran under different, active hash
    # randomisation (otherwise the comparison proves nothing).
    assert first["hash_randomised"] == second["hash_randomised"] == 1
    for key in first:
        if key == "hash_randomised":
            continue
        assert first[key] == second[key], f"{key} differs across PYTHONHASHSEED"
