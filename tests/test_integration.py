"""End-to-end integration tests across the whole stack.

These tests exercise the full pipelines the README advertises: classical
baseline vs quantum algorithm on the same graphs, the approximation
algorithms' guarantees, the lower-bound reductions fed by real CONGEST
executions, and the Table-1 regeneration helpers.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms import (
    run_classical_exact_diameter,
    run_classical_two_approximation,
    run_hprw_three_halves_approximation,
)
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import render_table1
from repro.congest.network import Network
from repro.core import quantum_exact_diameter, quantum_three_halves_diameter
from repro.core.complexity import quantum_exact_upper
from repro.graphs import generators
from repro.lowerbounds.bounds import theorem2_lower_bound, theorem3_lower_bound
from repro.lowerbounds.congest_to_two_party import (
    simulate_congest_algorithm_as_two_party_protocol,
)
from repro.lowerbounds.disjointness import random_intersecting_instance
from repro.lowerbounds.reductions import achk_reduction
from repro.lowerbounds.simulation import (
    make_disjointness_path_protocol,
    simulate_path_protocol_as_two_party,
)


class TestExactPipelines:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: generators.clique_chain(4, 4),
            lambda: generators.cycle_graph(17),
            lambda: generators.grid_graph(4, 4),
            lambda: generators.lollipop_graph(7, 6),
            lambda: generators.random_connected_gnp(22, 0.12, seed=5),
        ],
    )
    def test_classical_and_quantum_agree_with_oracle(self, builder):
        graph = builder()
        truth = graph.diameter()
        classical = run_classical_exact_diameter(Network(graph, seed=1))
        quantum = quantum_exact_diameter(graph, oracle_mode="reference", seed=1)
        assert classical.diameter == truth
        assert quantum.diameter == truth

    def test_quantum_round_counts_track_sqrt_nd_shape(self):
        """The measured quantum rounds, normalised by sqrt(n D), stay within a
        narrow band while n grows (whereas rounds / n would shrink)."""
        normalised = []
        for blocks in (3, 5, 7, 9):
            graph = generators.clique_chain(blocks, 4)
            result = quantum_exact_diameter(graph, oracle_mode="reference", seed=2)
            n, diameter = graph.num_nodes, graph.diameter()
            normalised.append(result.rounds / quantum_exact_upper(n, diameter))
        spread = max(normalised) / min(normalised)
        assert spread <= 6.0

    def test_classical_rounds_scale_linearly(self):
        sizes = [12, 24, 48]
        rounds = []
        for n in sizes:
            graph = generators.cycle_graph(n)
            rounds.append(run_classical_exact_diameter(Network(graph, seed=0)).rounds)
        fit = fit_power_law(sizes, rounds)
        assert 0.8 <= fit.exponent <= 1.2


class TestApproximationPipelines:
    def test_all_estimators_respect_their_guarantees(self):
        graph = generators.random_connected_gnp(28, 0.1, seed=13)
        truth = graph.diameter()
        two = run_classical_two_approximation(Network(graph, seed=0))
        assert two.estimate <= truth <= 2 * two.estimate
        three_halves = run_hprw_three_halves_approximation(Network(graph, seed=0), seed=4)
        assert math.floor(2 * truth / 3) <= three_halves.estimate <= truth
        quantum = quantum_three_halves_diameter(graph, oracle_mode="reference", seed=4)
        assert math.floor(2 * truth / 3) <= quantum.estimate <= truth

    def test_quantum_approx_uses_fewer_rounds_than_quantum_exact_on_long_paths(self):
        """On high-diameter graphs the 3/2-approximation (with its D-dominated
        cost) beats the exact algorithm's sqrt(n D) term constants aside."""
        graph = generators.path_graph(40)
        exact = quantum_exact_diameter(graph, oracle_mode="reference", seed=1)
        approx = quantum_three_halves_diameter(graph, oracle_mode="reference", seed=1)
        assert approx.rounds < exact.rounds


class TestLowerBoundPipelines:
    def test_reduction_round_trip_with_real_congest_execution(self):
        reduction = achk_reduction(5)
        x, y = random_intersecting_instance(5, seed=21)
        outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
        assert outcome.correct
        assert outcome.diameter == 5
        # The implied statement of Theorem 10: r * b >= Omega(k / r) would be
        # contradicted if the transcript were impossibly small.
        assert outcome.transcript.total_bits >= reduction.input_length / max(
            1, outcome.transcript.num_messages
        )

    def test_path_simulation_consistent_with_theorem3_accounting(self):
        x, y = random_intersecting_instance(24, seed=2)
        d = 6
        protocol = make_disjointness_path_protocol(x, y, path_length=d)
        result = simulate_path_protocol_as_two_party(protocol)
        assert result.bob_output == 0
        # Message count ~ r / d and communication ~ r (bw + s).
        assert result.num_messages <= 2 * (result.distributed_rounds // d) + 4
        assert result.total_communication_bits <= 4 * result.distributed_rounds * (
            protocol.bandwidth_bits + result.max_relay_memory_bits
        )

    def test_upper_bounds_respect_lower_bounds(self):
        for n, diameter in ((10 ** 4, 4), (10 ** 5, 32), (10 ** 6, 10 ** 3)):
            upper = quantum_exact_upper(n, diameter)
            assert upper * math.log2(n) ** 2 >= theorem2_lower_bound(n, diameter)
            assert upper * math.log2(n) ** 2 >= theorem3_lower_bound(
                n, diameter, memory_qubits=int(math.log2(n) ** 2)
            )


class TestReporting:
    def test_table1_snapshot_renders(self):
        text = render_table1(n=4096, diameter=64)
        assert "quantum" in text
        assert str(4096) in text

    def test_quantum_result_reports_all_accounting_fields(self):
        graph = generators.cycle_graph(12)
        result = quantum_exact_diameter(graph, oracle_mode="reference", seed=0)
        assert result.counts.setup_calls > 0
        assert result.counts.evaluation_calls > 0
        assert result.metrics.phase_rounds["setup"] > 0
        assert result.metrics.phase_rounds["evaluation"] > 0
        assert result.metrics.phase_rounds["initialization"] > 0
        assert result.memory_bits_per_node > 0
