"""Tests for BFS trees, broadcast/convergecast, leader election, eccentricity."""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.broadcast import (
    run_tree_aggregate_max,
    run_tree_aggregate_max_witness,
    run_tree_aggregate_sum,
    run_tree_broadcast,
)
from repro.algorithms.eccentricity import run_eccentricity
from repro.algorithms.leader_election import identifier_key, run_leader_election
from repro.congest.network import Network
from repro.graphs import generators


class TestBFSTree:
    def test_distances_match_oracle(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        assert tree.distance == small_graph.bfs_distances(root)

    def test_parents_are_one_step_closer(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        for node, parent in tree.parent.items():
            if node == root:
                assert parent is None
            else:
                assert small_graph.has_edge(node, parent)
                assert tree.distance[node] == tree.distance[parent] + 1

    def test_children_are_consistent_with_parents(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        for node in small_graph.nodes():
            for child in tree.children_of(node):
                assert tree.parent[child] == node
        total_children = sum(len(tree.children_of(n)) for n in small_graph.nodes())
        assert total_children == small_graph.num_nodes - 1

    def test_depth_equals_eccentricity(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        assert tree.depth == small_graph.eccentricity(root)

    def test_round_complexity_linear_in_depth(self, network_factory):
        graph = generators.path_graph(30)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        assert tree.metrics.rounds <= tree.depth + 5

    def test_invalid_root(self, network_factory):
        network = network_factory(generators.path_graph(4))
        with pytest.raises(ValueError):
            run_bfs_tree(network, 99)

    def test_memory_is_logarithmic(self, network_factory):
        graph = generators.random_connected_gnp(40, 0.1, seed=1)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        assert tree.metrics.max_node_memory_bits <= 3 * 8


class TestTreeBroadcast:
    def test_everyone_receives_value(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        broadcast = run_tree_broadcast(network, tree, ("v", 42))
        assert all(value == ("v", 42) for value in broadcast.values.values())

    def test_round_complexity(self, network_factory):
        graph = generators.path_graph(25)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        broadcast = run_tree_broadcast(network, tree, 7)
        assert broadcast.metrics.rounds <= tree.depth + 4


class TestConvergecast:
    def test_max(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        values = {node: hash(repr(node)) % 100 for node in small_graph.nodes()}
        aggregate = run_tree_aggregate_max(network, tree, values)
        assert aggregate.value == max(values.values())

    def test_sum(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        values = {node: 1 for node in small_graph.nodes()}
        aggregate = run_tree_aggregate_sum(network, tree, values)
        assert aggregate.value == small_graph.num_nodes

    def test_max_witness(self, network_factory):
        graph = generators.path_graph(8)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        values = {node: (10 if node == 5 else node) for node in graph.nodes()}
        aggregate = run_tree_aggregate_max_witness(network, tree, values)
        assert aggregate.value == 10
        assert aggregate.witness == 5

    def test_missing_value_raises(self, network_factory):
        graph = generators.path_graph(4)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        with pytest.raises(ValueError):
            run_tree_aggregate_max(network, tree, {0: 1})

    def test_round_complexity(self, network_factory):
        graph = generators.path_graph(25)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        aggregate = run_tree_aggregate_max(network, tree, {n: n for n in graph.nodes()})
        assert aggregate.metrics.rounds <= tree.depth + 4


class TestLeaderElection:
    def test_unique_leader_has_max_key(self, small_graph, network_factory):
        network = network_factory(small_graph)
        result = run_leader_election(network)
        expected = max(small_graph.nodes(), key=identifier_key)
        assert result.leader == expected

    def test_round_complexity_linear_in_diameter(self, network_factory):
        graph = generators.path_graph(40)
        network = network_factory(graph)
        result = run_leader_election(network)
        assert result.metrics.rounds <= graph.diameter() + 5

    def test_single_node(self, network_factory):
        network = network_factory(generators.path_graph(1))
        assert run_leader_election(network).leader == 0


class TestEccentricity:
    def test_matches_oracle(self, small_graph, network_factory):
        network = network_factory(small_graph)
        for node in list(small_graph.nodes())[:4]:
            result = run_eccentricity(network, node)
            assert result.eccentricity == small_graph.eccentricity(node)

    def test_reuses_given_tree(self, network_factory):
        graph = generators.cycle_graph(10)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        result = run_eccentricity(network, 0, tree=tree)
        assert result.eccentricity == 5
        # Reusing the tree should cost only the convergecast.
        assert result.metrics.rounds <= tree.depth + 4

    def test_round_complexity(self, network_factory):
        graph = generators.path_graph(30)
        network = network_factory(graph)
        result = run_eccentricity(network, 0)
        assert result.metrics.rounds <= 3 * graph.diameter() + 10
