"""Tests for the new Theorem-7 problems, the problem registry and their
sweep/store/CLI integration."""

from __future__ import annotations

import math

import pytest

from repro.analysis.sweep import run_sweep, run_sweep_grid
from repro.cli import main
from repro.congest.network import Network
from repro.core import (
    QUANTUM_PROBLEMS,
    QuantumProblemInfo,
    quantum_exact_radius,
    quantum_problem_names,
    quantum_source_eccentricity,
    register_quantum_problem,
    resolve_quantum_problem,
)
from repro.core.problems import (
    diameter_oracle,
    radius_oracle,
    solve_radius,
    source_eccentricity_oracle,
)
from repro.core.radius import ExactRadiusProblem
from repro.core.source_ecc import SourceEccentricityProblem
from repro.graphs import generators
from repro.runner import (
    EXACT,
    QUANTUM_SWEEP_NAMES,
    SWEEP_ALGORITHMS,
    GraphSpec,
    SweepAlgorithmInfo,
    resolve_algorithms,
    sweep_algorithm_for_problem,
)
from repro.store import ExperimentStore


class TestQuantumRadius:
    def test_correct_on_families(self):
        for graph in (
            generators.cycle_graph(12),
            generators.clique_chain(3, 4),
            generators.random_connected_gnp(20, 0.15, seed=3),
        ):
            truth = graph.compile().radius()
            result = quantum_exact_radius(graph, oracle_mode="reference", seed=2)
            assert result.radius == truth
            assert graph.compile().eccentricity(result.center) == truth

    def test_congest_and_reference_values_agree(self, network_factory):
        graph = generators.clique_chain(3, 3)
        congest = quantum_exact_radius(
            network_factory(graph), oracle_mode="congest", seed=7
        )
        reference = quantum_exact_radius(
            network_factory(graph), oracle_mode="reference", seed=7
        )
        assert congest.radius == reference.radius
        assert congest.counts == reference.counts

    def test_round_accounting_matches_theorem7(self):
        graph = generators.cycle_graph(14)
        result = quantum_exact_radius(graph, oracle_mode="reference", seed=4)
        optimization = result.optimization
        expected = (
            optimization.initialization_rounds
            + result.counts.setup_calls * optimization.setup_rounds_per_call
            + result.counts.evaluation_calls
            * optimization.evaluation_rounds_per_call
        )
        assert result.rounds == expected

    def test_success_rate_over_seeds(self):
        graph = generators.random_connected_gnp(18, 0.2, seed=5)
        truth = graph.compile().radius()
        hits = sum(
            quantum_exact_radius(graph, oracle_mode="reference", seed=seed).radius
            == truth
            for seed in range(12)
        )
        assert hits >= 9

    def test_fixed_leader_and_memory(self):
        graph = generators.path_graph(9)
        result = quantum_exact_radius(
            graph, oracle_mode="reference", seed=1, leader=4
        )
        assert result.leader == 4
        log_n = math.ceil(math.log2(graph.num_nodes + 1))
        assert result.memory_bits_per_node >= 1
        assert result.metrics.max_node_memory_bits <= 10 * log_n ** 2 + 64

    def test_invalid_oracle_mode(self, network_factory):
        with pytest.raises(ValueError):
            ExactRadiusProblem(
                network_factory(generators.path_graph(4)), oracle_mode="bogus"
            )


class TestQuantumSourceEccentricity:
    def test_correct_for_default_and_explicit_sources(self):
        graph = generators.random_connected_gnp(16, 0.2, seed=9)
        view = graph.compile()
        default = quantum_source_eccentricity(graph, oracle_mode="reference", seed=3)
        assert default.source == graph.nodes()[0]
        assert default.eccentricity == view.eccentricity(default.source)
        for source in list(graph.nodes())[:4]:
            result = quantum_source_eccentricity(
                graph, source=source, oracle_mode="reference", seed=3
            )
            assert result.eccentricity == view.eccentricity(source)
            assert result.source == source

    def test_farthest_witness_realises_value(self):
        graph = generators.clique_chain(4, 3)
        result = quantum_source_eccentricity(graph, oracle_mode="reference", seed=1)
        tree_distance = graph.compile().bfs_distances(result.source)
        assert tree_distance[result.farthest] == result.eccentricity

    def test_congest_and_reference_values_agree(self, network_factory):
        graph = generators.cycle_graph(10)
        congest = quantum_source_eccentricity(
            network_factory(graph), oracle_mode="congest", seed=6
        )
        reference = quantum_source_eccentricity(
            network_factory(graph), oracle_mode="reference", seed=6
        )
        assert congest.eccentricity == reference.eccentricity
        assert congest.counts == reference.counts

    def test_invalid_oracle_mode(self, network_factory):
        with pytest.raises(ValueError):
            SourceEccentricityProblem(
                network_factory(generators.path_graph(4)), oracle_mode="bogus"
            )


class TestProblemRegistry:
    def test_four_problems_registered(self):
        assert set(quantum_problem_names()) >= {
            "exact_diameter",
            "three_halves",
            "radius",
            "source_ecc",
        }
        for name in quantum_problem_names():
            info = resolve_quantum_problem(name)
            assert info.name == name
            assert callable(info.solve)
            assert callable(info.oracle)

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown quantum problem"):
            resolve_quantum_problem("bogus")

    def test_oracles_use_compiled_view(self):
        graph = generators.clique_chain(3, 4)
        assert diameter_oracle(graph) == float(graph.compile().diameter())
        assert radius_oracle(graph) == float(graph.compile().radius())
        assert source_eccentricity_oracle(graph) == float(
            graph.compile().eccentricity(graph.nodes()[0])
        )

    def test_solve_wrappers_report_uniform_summary(self):
        graph = generators.clique_chain(3, 3)
        for name in quantum_problem_names():
            info = QUANTUM_PROBLEMS[name]
            run = info.solve(
                Network(graph, seed=1), oracle_mode="reference", seed=2
            )
            assert run.problem == name
            assert run.rounds > 0
            assert run.counts.evaluation_calls >= 1
            assert run.optimization is not None

    def test_sweep_mapping_covers_registry(self):
        for problem, sweep_name in QUANTUM_SWEEP_NAMES.items():
            assert problem in QUANTUM_PROBLEMS
            assert sweep_name in SWEEP_ALGORITHMS
            name, info = sweep_algorithm_for_problem(problem)
            assert name == sweep_name
            assert info is SWEEP_ALGORITHMS[sweep_name]

    def test_colliding_runtime_problem_name_rejected(self):
        """A runtime problem whose derived sweep name shadows a built-in
        entry must be refused, not silently mapped to the wrong kernel."""
        info = QuantumProblemInfo(
            name="exact",  # derives "quantum_exact" -- the Theorem-1 entry
            theorem="Theorem 7",
            description="collides with the built-in exact-diameter kernel",
            solve=solve_radius,
            oracle=radius_oracle,
            guarantee=EXACT,
        )
        register_quantum_problem(info)
        try:
            with pytest.raises(ValueError, match="already names"):
                sweep_algorithm_for_problem("exact")
        finally:
            del QUANTUM_PROBLEMS["exact"]

    def test_runtime_registered_problem_gets_sweep_entry(self):
        info = QuantumProblemInfo(
            name="radius_alias",
            theorem="Theorem 7",
            description="runtime-registered alias of the radius problem",
            solve=solve_radius,
            oracle=radius_oracle,
            guarantee=EXACT,
        )
        register_quantum_problem(info)
        try:
            name, entry = sweep_algorithm_for_problem("radius_alias")
            assert name == "quantum_radius_alias"
            assert entry.guarantee == EXACT
            assert entry.oracle is radius_oracle
            graph = generators.cycle_graph(10)
            rounds, value = entry(graph, 3)
            assert rounds > 0
            assert value == radius_oracle(graph)
        finally:
            del QUANTUM_PROBLEMS["radius_alias"]


class TestSweepIntegration:
    def test_quantum_problem_records_check_own_oracle(self):
        specs = (GraphSpec(family="clique_chain", num_nodes=16, seed=2),)
        algorithms = resolve_algorithms(["quantum_radius", "quantum_source_ecc"])
        records = run_sweep_grid(specs, algorithms, base_seed=4)
        assert [record.algorithm for record in records] == [
            "quantum_radius",
            "quantum_source_ecc",
        ]
        # No diameter-oracle algorithm in the table: the lazy shared oracle
        # never runs, yet the custom-oracle checks still validate.
        assert all(record.diameter is None for record in records)
        assert all(record.correct is True for record in records)

    def test_custom_oracle_failure_recorded(self):
        def wrong_radius(graph):
            return 1, float(graph.num_nodes + 5)

        table = {
            "wrong_radius": SweepAlgorithmInfo(
                wrong_radius, guarantee=EXACT, oracle=radius_oracle
            )
        }
        graph = generators.cycle_graph(12)
        records = run_sweep([("cycle", graph)], table)
        assert records[0].correct is False
        assert records[0].extra["oracle_diameter"] == radius_oracle(graph)

    def test_custom_oracle_does_not_force_diameter_oracle(self):
        info = SWEEP_ALGORITHMS["quantum_radius"]
        assert info.oracle is not None
        assert info.needs_oracle is False
        assert SWEEP_ALGORITHMS["quantum_exact"].needs_oracle is True

    def test_four_quantum_problems_sweep_with_checkpoint_resume(self, tmp_path):
        """The acceptance grid: all four registered problems through
        run_sweep_grid with store persistence and resume."""
        store_path = tmp_path / "quantum.jsonl"
        specs = (
            GraphSpec(family="cycle", num_nodes=12, seed=5),
            GraphSpec(family="clique_chain", num_nodes=12, seed=5),
        )
        algorithms = resolve_algorithms(
            [
                "quantum_exact",
                "quantum_three_halves",
                "quantum_radius",
                "quantum_source_ecc",
            ]
        )
        store = ExperimentStore(store_path)
        records = run_sweep_grid(
            specs, algorithms, base_seed=6, store=store, resume=False
        )
        assert len(records) == 8
        # Resume over a complete store recomputes nothing and returns the
        # identical record list.
        resumed = run_sweep_grid(
            specs, algorithms, base_seed=6, store=ExperimentStore(store_path),
            resume=True,
        )
        assert resumed == records
        loaded = ExperimentStore(store_path).load_records()
        assert loaded == records


class TestQuantumCLI:
    def test_list_problems(self, capsys):
        assert main(["quantum", "--list"]) == 0
        output = capsys.readouterr().out
        for name in ("exact_diameter", "three_halves", "radius", "source_ecc"):
            assert name in output

    def test_quantum_run_all_problems(self, capsys):
        exit_code = main(
            ["quantum", "--families", "clique_chain", "--sizes", "16",
             "--seed", "1", "--backend", "batched"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in (
            "quantum_exact",
            "quantum_three_halves",
            "quantum_radius",
            "quantum_source_ecc",
        ):
            assert name in output

    def test_quantum_backends_produce_identical_stores(self, capsys, tmp_path):
        """The CI round-trip in miniature: a batched run and a sampling
        run persist byte-identical record sets."""
        from repro.store import render_records

        args = ["quantum", "--families", "cycle", "--sizes", "12",
                "--seed", "2", "--problems", "radius,source_ecc"]
        stores = {}
        for backend in ("sampling", "batched"):
            path = tmp_path / f"{backend}.jsonl"
            assert main(args + ["--backend", backend, "--out", str(path)]) == 0
            stores[backend] = render_records(
                ExperimentStore(path).load_records(), "jsonl"
            )
        capsys.readouterr()
        assert stores["sampling"] == stores["batched"]

    def test_quantum_resume_round_trip(self, capsys, tmp_path):
        path = tmp_path / "store.jsonl"
        args = ["quantum", "--families", "cycle", "--sizes", "10",
                "--problems", "radius", "--seed", "3", "--out", str(path)]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0
        capsys.readouterr()
        records = ExperimentStore(path).load_records()
        assert len(records) == 1
        assert records[0].algorithm == "quantum_radius"
        assert records[0].correct is True

    def test_quantum_rejects_unknown_problem(self, capsys):
        assert main(["quantum", "--problems", "bogus"]) == 2
        assert "unknown quantum problem" in capsys.readouterr().err

    def test_quantum_rejects_unknown_family(self, capsys):
        assert main(["quantum", "--families", "bogus"]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_quantum_resume_requires_out(self, capsys):
        assert main(["quantum", "--resume"]) == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_quantum_backend_default_restored(self):
        """The CLI backend selection must not leak into later in-process
        callers (the tests share one interpreter)."""
        from repro.quantum.backend import get_default_schedule_backend

        assert main(
            ["quantum", "--families", "cycle", "--sizes", "8",
             "--problems", "source_ecc", "--backend", "batched"]
        ) == 0
        assert get_default_schedule_backend() == "sampling"

    def test_sweep_accepts_quantum_problem_algorithms(self, capsys):
        exit_code = main(
            ["sweep", "--families", "cycle", "--sizes", "12",
             "--algorithms", "quantum_radius,quantum_source_ecc",
             "--seed", "4", "--backend", "batched"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "quantum_radius" in output
        assert "quantum_source_ecc" in output
