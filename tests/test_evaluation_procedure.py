"""Tests for the Figure-2 Evaluation procedure (Proposition 4)."""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max
from repro.algorithms.evaluation import run_evaluation_procedure
from repro.congest.network import Network
from repro.core.coverage import window_set
from repro.graphs import generators


def _initialise(network, graph, root=None):
    root = graph.nodes()[0] if root is None else root
    tree = run_bfs_tree(network, root)
    d = run_tree_aggregate_max(network, tree, tree.distance).value
    return tree, max(1, d)


class TestEvaluationValue:
    def test_value_is_max_ecc_over_window(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree, d = _initialise(network, small_graph)
        eccentricities = small_graph.all_eccentricities()
        for u0 in list(small_graph.nodes())[:5]:
            result = run_evaluation_procedure(network, tree, d, u0)
            expected_window = window_set(tree, u0, 2 * d)
            expected_value = max(eccentricities[v] for v in expected_window)
            assert result.window_nodes == expected_window
            assert result.value == expected_value

    def test_window_contains_u0(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree, d = _initialise(network, small_graph)
        u0 = list(small_graph.nodes())[-1]
        result = run_evaluation_procedure(network, tree, d, u0)
        assert u0 in result.window_nodes

    def test_value_never_exceeds_diameter(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree, d = _initialise(network, small_graph)
        diameter = small_graph.diameter()
        for u0 in list(small_graph.nodes())[:5]:
            result = run_evaluation_procedure(network, tree, d, u0)
            assert result.value <= diameter
            assert result.value >= max(1, diameter // 2) - 1 or diameter == 0

    def test_some_u0_achieves_diameter(self, small_graph, network_factory):
        """Maximising f over u0 gives exactly the diameter (Section 3.2)."""
        network = network_factory(small_graph)
        tree, d = _initialise(network, small_graph)
        values = [
            run_evaluation_procedure(network, tree, d, u0).value
            for u0 in small_graph.nodes()
        ]
        assert max(values) == small_graph.diameter()

    def test_restricted_to_ball(self, network_factory):
        graph = generators.path_graph(12)
        network = network_factory(graph)
        tree, d = _initialise(network, graph, root=0)
        members = {0, 1, 2, 3, 4}
        eccentricities = graph.all_eccentricities()
        result = run_evaluation_procedure(network, tree, d, 2, members=members)
        assert result.window_nodes <= members
        expected = max(
            eccentricities[v] for v in window_set(tree, 2, 2 * d, members=members)
        )
        assert result.value == expected


class TestEvaluationCost:
    def test_rounds_linear_in_d(self, network_factory):
        graph = generators.clique_chain(5, 4)
        network = network_factory(graph)
        tree, d = _initialise(network, graph)
        result = run_evaluation_procedure(network, tree, d, graph.nodes()[3])
        # Steps 1-4 cost at most ~ 2d (tour) + 6d (waves) + 2d (convergecast),
        # and the Step-5 revert doubles it.
        assert result.metrics.rounds <= 2 * (12 * d + 20)

    def test_uncompute_doubles_rounds(self, network_factory):
        graph = generators.cycle_graph(10)
        network = network_factory(graph)
        tree, d = _initialise(network, graph)
        with_revert = run_evaluation_procedure(network, tree, d, 3)
        without = run_evaluation_procedure(network, tree, d, 3, include_uncompute=False)
        assert with_revert.value == without.value
        assert with_revert.metrics.rounds == 2 * without.metrics.rounds

    def test_memory_stays_logarithmic(self, network_factory):
        graph = generators.random_connected_gnp(30, 0.1, seed=5)
        network = network_factory(graph)
        tree, d = _initialise(network, graph)
        result = run_evaluation_procedure(network, tree, d, graph.nodes()[7])
        assert result.metrics.max_node_memory_bits <= 8 * 8

    def test_invalid_d(self, network_factory):
        graph = generators.path_graph(5)
        network = network_factory(graph)
        tree, _ = _initialise(network, graph)
        with pytest.raises(ValueError):
            run_evaluation_procedure(network, tree, 0, 2)
