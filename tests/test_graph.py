"""Unit tests for the core graph data structure and its distance oracles."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph


def to_networkx(graph: Graph) -> nx.Graph:
    other = nx.Graph()
    other.add_nodes_from(graph.nodes())
    other.add_edges_from(graph.edges())
    return other


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.is_connected()

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.num_nodes == 1

    def test_add_edge_adds_endpoints(self):
        graph = Graph()
        graph.add_edge("a", "b")
        assert graph.has_node("a") and graph.has_node("b")
        assert graph.has_edge("a", "b") and graph.has_edge("b", "a")

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_duplicate_edge_not_double_counted(self):
        graph = Graph(edges=[(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(KeyError):
            graph.remove_edge(0, 2)

    def test_copy_is_independent(self):
        graph = Graph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert not graph.has_node(2)

    def test_relabelled_preserves_structure(self):
        graph = Graph(edges=[("x", "y"), ("y", "z")])
        relabelled, mapping = graph.relabelled()
        assert set(mapping.values()) == {0, 1, 2}
        assert relabelled.num_edges == 2
        assert relabelled.distance(mapping["x"], mapping["z"]) == 2

    def test_contains_and_iteration(self):
        graph = Graph(nodes=[3, 1, 2])
        assert 1 in graph
        assert 5 not in graph
        assert sorted(graph) == [1, 2, 3]
        assert len(graph) == 3

    def test_degree_and_max_degree(self):
        graph = generators.star_graph(6)
        assert graph.degree(0) == 5
        assert graph.degree(3) == 1
        assert graph.max_degree() == 5


class TestDistances:
    def test_bfs_distances_on_path(self):
        graph = generators.path_graph(6)
        distances = graph.bfs_distances(0)
        assert distances == {i: i for i in range(6)}

    def test_bfs_distances_unreachable_absent(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        distances = graph.bfs_distances(0)
        assert 2 not in distances

    def test_distance_raises_for_unreachable(self):
        graph = Graph(nodes=[0, 1], edges=[])
        with pytest.raises(ValueError):
            graph.distance(0, 1)

    def test_bfs_distance_matches_networkx(self, small_graph):
        reference = to_networkx(small_graph)
        source = small_graph.nodes()[0]
        expected = nx.single_source_shortest_path_length(reference, source)
        assert small_graph.bfs_distances(source) == dict(expected)

    def test_bfs_tree_is_shortest_path_tree(self, small_graph):
        source = small_graph.nodes()[0]
        parent = small_graph.bfs_tree(source)
        distances = small_graph.bfs_distances(source)
        for node, par in parent.items():
            if par is None:
                assert node == source
            else:
                assert distances[node] == distances[par] + 1
                assert small_graph.has_edge(node, par)

    def test_missing_source_raises(self):
        graph = generators.path_graph(3)
        with pytest.raises(KeyError):
            graph.bfs_distances(99)


class TestDiameterAndEccentricity:
    def test_path_diameter(self):
        assert generators.path_graph(10).diameter() == 9

    def test_cycle_diameter(self):
        assert generators.cycle_graph(9).diameter() == 4
        assert generators.cycle_graph(10).diameter() == 5

    def test_star_diameter(self):
        assert generators.star_graph(8).diameter() == 2

    def test_complete_diameter(self):
        assert generators.complete_graph(5).diameter() == 1

    def test_grid_diameter(self):
        assert generators.grid_graph(3, 4).diameter() == 5

    def test_diameter_matches_networkx(self, small_graph):
        assert small_graph.diameter() == nx.diameter(to_networkx(small_graph))

    def test_radius_matches_networkx(self, small_graph):
        assert small_graph.radius() == nx.radius(to_networkx(small_graph))

    def test_eccentricities_match_networkx(self, small_graph):
        expected = nx.eccentricity(to_networkx(small_graph))
        assert small_graph.all_eccentricities() == expected

    def test_eccentricity_on_disconnected_raises(self):
        graph = Graph(nodes=[0, 1], edges=[])
        with pytest.raises(ValueError):
            graph.eccentricity(0)

    def test_diameter_on_empty_raises(self):
        with pytest.raises(ValueError):
            Graph().diameter()

    def test_single_node_diameter(self):
        assert Graph(nodes=[0]).diameter() == 0


class TestConnectivity:
    def test_connected_components(self):
        graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        components = graph.connected_components()
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]

    def test_is_connected(self, small_graph):
        assert small_graph.is_connected()

    def test_disconnected_detection(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert not graph.is_connected()

    def test_induced_subgraph(self):
        graph = generators.cycle_graph(6)
        sub = graph.induced_subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2

    def test_max_cross_distance(self):
        graph = generators.path_graph(6)
        assert graph.max_cross_distance([0, 1], [4, 5]) == 5
        assert graph.max_cross_distance([0], [0]) == 0
