"""Pytest plugin: run the whole suite with the numpy compute tier forced.

CI loads this with ``pytest -p force_numpy_tier`` (with ``tests/plugins``
on ``PYTHONPATH``) for a second tier-1 shard: every oracle call in every
test then goes through the vectorized dispatch (:mod:`repro.tier`), and
the suite must pass byte-identically -- the strongest whole-system
statement of the tier contract.  The default is installed at configure
time so even collection-time graph work runs under the tier.
"""

from __future__ import annotations


def pytest_configure(config):
    from repro.tier import set_default_tier

    set_default_tier("numpy")
