"""Tests for the adaptive work-stealing scheduler (``repro.dispatch``).

The static partitioner's byte-identity guarantee was easy: one shard
per worker, no re-execution.  The adaptive scheduler re-executes cells
on purpose -- work stealing trims a straggler's lease, speculative
re-execution races a second copy of an overdue shard, supervised
workers replay their shard stores after a coordinator restart -- so the
load-bearing property here is that **byte-identity survives every one
of those paths**: the streamed records, the shard stores, and the
offline merge must all render exactly the serial export, with the
duplicates dropped first-complete-wins.

Around that sit the deterministic foundations: the cost model's
estimates are independent of observation order (stealing reorders
completions freely), and the shard plan for a grid is byte-identical
across ``PYTHONHASHSEED`` values and processes.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.analysis.sweep import run_sweep_grid
from repro.cli import main
from repro.dispatch import (
    DispatchCoordinator,
    RemoteDispatch,
    SHARD_POLICIES,
)
from repro.dispatch.cost import (
    FACTOR,
    CostModel,
    guarantee_of,
    plan_chunks,
    static_cell_cost,
    take_cost_prefix,
)
from repro.dispatch.worker import probe_capabilities, run_worker
from repro.runner import GraphSpec, resolve_algorithms
from repro.store import merge_shards, render_records, shard_stats

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _subprocess_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (SRC_ROOT, env.get("PYTHONPATH")) if part
    )
    env.update(extra)
    return env


def _grid(sizes, families=("cycle",), algorithms=("two_approx",)):
    specs = tuple(
        GraphSpec(family, n, seed=1) for family in families for n in sizes
    )
    return specs, resolve_algorithms(list(algorithms))


def _canon(records):
    return render_records(records, "jsonl")


class TestCostPriors:
    def test_exponent_by_guarantee(self):
        # an exact oracle grows much faster than a two-approx BFS wave
        assert static_cell_cost(100, "exact") == pytest.approx(100.0 ** 2.0)
        assert static_cell_cost(100, "two_approx") == pytest.approx(100.0 ** 1.3)
        assert static_cell_cost(100, "exact") > static_cell_cost(100, None)
        assert static_cell_cost(100, None) > static_cell_cost(100, "two_approx")

    def test_unknown_guarantee_gets_middle_prior(self):
        assert static_cell_cost(50, "banana") == static_cell_cost(50, None)

    def test_tiny_cells_keep_nonzero_cost(self):
        assert static_cell_cost(0) > 0.0
        assert static_cell_cost(1) == static_cell_cost(2)

    def test_guarantee_of_resolves_registries(self):
        assert guarantee_of("classical_exact") == "exact"
        assert guarantee_of("two_approx") == "two_approx"
        assert guarantee_of("not-an-algorithm") is None
        assert guarantee_of("not-a-problem", kind="quantum") is None


class TestCostModelCalibration:
    def test_calibration_scales_to_observed_seconds(self):
        model = CostModel()
        # observed cells ran 3x slower than the prior's unit suggests
        for nodes in (10, 20, 40):
            prior = static_cell_cost(nodes, "two_approx")
            model.observe("two_approx", nodes, 3.0 * prior,
                          guarantee="two_approx")
        estimate = model.estimate("two_approx", 80, guarantee="two_approx")
        assert estimate == pytest.approx(
            3.0 * static_cell_cost(80, "two_approx")
        )

    def test_uncalibrated_estimate_is_the_prior(self):
        model = CostModel()
        assert model.estimate("x", 32) == static_cell_cost(32)
        assert model.observation_count() == 0

    def test_unseen_algorithm_falls_back_to_global_scale(self):
        model = CostModel()
        model.observe("a", 16, 2.0 * static_cell_cost(16, "exact"),
                      guarantee="exact")
        # "b" has no observations of its own: the all-algorithm ratio
        # (2.0) still rescales its prior.
        assert model.estimate("b", 16, guarantee="exact") == pytest.approx(
            2.0 * static_cell_cost(16, "exact")
        )

    def test_negative_observations_ignored(self):
        model = CostModel()
        model.observe("a", 16, -1.0)
        assert model.observation_count() == 0

    def test_estimates_independent_of_observation_order(self):
        observations = [
            ("two_approx", nodes, seconds, "two_approx")
            for nodes, seconds in
            [(10, 0.1), (20, 0.5), (30, 0.4), (40, 2.0), (50, 1.1)]
        ] + [
            ("classical_exact", nodes, seconds, "exact")
            for nodes, seconds in [(10, 0.3), (30, 2.2), (50, 6.0)]
        ]
        shuffled = list(observations)
        random.Random(99).shuffle(shuffled)
        forward, scrambled = CostModel(), CostModel()
        for model, sequence in ((forward, observations),
                                (scrambled, shuffled)):
            for name, nodes, seconds, guarantee in sequence:
                model.observe(name, nodes, seconds, guarantee=guarantee)
        for name, guarantee in (("two_approx", "two_approx"),
                                ("classical_exact", "exact"),
                                ("never_seen", None)):
            for nodes in (15, 33, 64):
                assert forward.estimate(name, nodes, guarantee) == \
                    pytest.approx(scrambled.estimate(name, nodes, guarantee))


class TestShardPlanning:
    def test_take_cost_prefix_partitions(self):
        indices = [3, 1, 4, 1, 5]  # indices index into costs positionally
        costs = {1: 1.0, 3: 2.0, 4: 4.0, 5: 0.5}
        taken, rest = take_cost_prefix(indices, costs, budget=3.5)
        assert taken + rest == indices
        assert taken == [3, 1, 4]  # 2.0, then 3.0 < 3.5, stop after 4

    def test_always_takes_at_least_one(self):
        taken, rest = take_cost_prefix([7], {7: 1e9}, budget=0.0)
        assert taken == [7] and rest == []

    def test_max_cells_caps_the_prefix(self):
        taken, rest = take_cost_prefix(
            list(range(6)), [0.1] * 6, budget=100.0, max_cells=2
        )
        assert taken == [0, 1] and rest == [2, 3, 4, 5]

    def test_plan_covers_every_cell(self):
        for total in (0, 1, 2, 7, 33):
            for workers in (1, 2, 5):
                plan = plan_chunks([1.0] * total, workers)
                assert sum(plan) == total
                assert all(size >= 1 for size in plan)

    def test_plan_shrinks_toward_the_tail(self):
        plan = plan_chunks([1.0] * 64, workers=2)
        assert plan[0] > plan[-1]
        assert plan[-1] == 1  # a straggler holds one cell at the end

    def test_plan_respects_max_cells(self):
        plan = plan_chunks([1.0] * 100, workers=1, max_cells=4)
        assert max(plan) <= 4 and sum(plan) == 100

    def test_expensive_head_cell_gets_its_own_chunk(self):
        costs = [100.0] + [1.0] * 10
        plan = plan_chunks(costs, workers=2, factor=FACTOR)
        assert plan[0] == 1  # the oracle cell alone exceeds the budget


class TestPlanHashSeedInvariance:
    """The shard plan must not depend on interpreter hash randomisation.

    Stealing and speculation reorder *execution*, never the plan: the
    cost model is a ratio of sums and the planner walks lists, so two
    processes with different ``PYTHONHASHSEED`` values -- and
    calibration observations arriving in different orders -- must emit
    byte-identical plans.
    """

    SCRIPT = """
import json, random, sys
from repro.dispatch.cost import CostModel, plan_chunks

model = CostModel()
observations = [
    ("two_approx", 10 + 2 * i, 0.01 * (i + 1), "two_approx") for i in range(8)
] + [
    ("classical_exact", 10 + 3 * i, 0.05 * (i + 1), "exact") for i in range(5)
]
random.Random(int(sys.argv[1])).shuffle(observations)
for name, nodes, seconds, guarantee in observations:
    model.observe(name, nodes, seconds, guarantee=guarantee)

description = {
    "kind": "sweep",
    "specs": [
        {"family": "cycle", "num_nodes": n, "seed": 1}
        for n in (12, 16, 20, 24, 28, 32)
    ],
    "algorithms": ["classical_exact", "two_approx"],
    "tasks": [[s, a] for s in range(6) for a in range(2)],
}
costs = model.grid_costs(description)
print(json.dumps({
    "costs": costs,
    "plan": plan_chunks(costs, workers=3, max_cells=4),
}, sort_keys=True))
"""

    def _run(self, hash_seed, shuffle_seed):
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, str(shuffle_seed)],
            env=_subprocess_env(PYTHONHASHSEED=str(hash_seed)),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_plan_identical_across_hash_seeds_and_orders(self):
        baseline = self._run(0, shuffle_seed=1)
        # hash randomisation must not perturb a single byte
        assert self._run(4242, shuffle_seed=1) == baseline
        # a different arrival order of the same observations: estimates
        # agree to float rounding (sums commute only up to ulps), and
        # the resulting shard plan is exactly identical.
        reordered = json.loads(self._run(7, shuffle_seed=2))
        expected = json.loads(baseline)
        assert reordered["plan"] == expected["plan"]
        assert reordered["costs"] == pytest.approx(expected["costs"])


def _start_worker_thread(address, shard_dir, name, throttle=0.0,
                         supervise=False, stop_event=None, results=None):
    host, port = address

    def _target():
        stats = run_worker(
            host, port, str(shard_dir), worker_id=name,
            once=not supervise, connect_wait=20.0, heartbeat_interval=0.2,
            supervise=supervise, throttle=throttle, stop_event=stop_event,
        )
        if results is not None:
            results[name] = stats

    thread = threading.Thread(target=_target, name=f"worker-{name}",
                              daemon=True)
    thread.start()
    return thread


def _merge_all(shard_dir, out_path=None):
    paths = sorted(
        os.path.join(str(shard_dir), name)
        for name in os.listdir(str(shard_dir))
        if name.endswith(".jsonl")
    )
    return merge_shards(paths, out_path=out_path), paths


class TestForcedStealing:
    def test_stolen_grid_byte_identical(self, tmp_path):
        """One throttled worker forces steals; output must not notice.

        The straggler deadline is shorter than one throttled cell, so
        the moment the fast worker idles while the straggler computes,
        the scheduler must intervene (steal while >= 2 cells remain in
        the lease, speculate on the final in-flight cell).
        """
        specs, table = _grid(sizes=(12, 14, 16, 18, 20, 22, 24, 26))
        serial = run_sweep_grid(specs, table, base_seed=11)
        shard_dir = tmp_path / "shards"

        coordinator = DispatchCoordinator(
            shard_policy="adaptive", straggler_deadline=0.15,
        )
        coordinator.start()
        threads = [
            _start_worker_thread(coordinator.address, shard_dir, "slow",
                                 throttle=0.25),
            _start_worker_thread(coordinator.address, shard_dir, "fast"),
        ]
        try:
            coordinator.wait_for_workers(2, timeout=30.0)
            remote = run_sweep_grid(
                specs, table, base_seed=11,
                dispatch=RemoteDispatch(coordinator=coordinator, workers=2),
            )
            stats = coordinator.stats()
        finally:
            coordinator.stop()
        for thread in threads:
            thread.join(timeout=20.0)
            assert not thread.is_alive(), "worker thread failed to exit"

        assert stats["steals"] + stats["speculative_leases"] >= 1, stats
        assert _canon(remote) == _canon(serial)
        merged, _ = _merge_all(shard_dir)
        assert _canon(merged) == _canon(serial)

    def test_worker_capabilities_reported(self):
        capabilities = probe_capabilities(throttle=0.0)
        assert capabilities["cpus"] >= 1
        assert capabilities["score"] > 0.0
        assert isinstance(capabilities["numpy"], bool)


class TestSpeculativeDuplicates:
    def test_duplicate_completion_dropped_first_wins(self, tmp_path):
        """A speculative copy races the straggler; both results persist
        in shard stores, the stream and merge keep exactly one."""
        specs, table = _grid(sizes=(12,),
                             algorithms=("classical_exact", "two_approx"))
        serial = run_sweep_grid(specs, table, base_seed=7)
        shard_dir = tmp_path / "shards"

        coordinator = DispatchCoordinator(
            shard_policy="adaptive", straggler_deadline=0.1,
        )
        coordinator.start()
        outcome = {}

        def _client():
            try:
                outcome["records"] = run_sweep_grid(
                    specs, table, base_seed=7,
                    dispatch=RemoteDispatch(coordinator=coordinator),
                )
            except Exception as error:
                outcome["error"] = error

        slow = _start_worker_thread(coordinator.address, shard_dir, "slow",
                                    throttle=0.6)
        fast = None
        client = threading.Thread(target=_client, daemon=True)
        try:
            coordinator.wait_for_workers(1, timeout=30.0)
            client.start()
            # wait until the whole 2-cell grid is leased to the slow
            # worker, then bring up the fast one: it must steal the
            # tail cell, then speculate on the in-flight head cell.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if coordinator.stats()["in_flight_shards"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("grid never leased to the slow worker")
            fast = _start_worker_thread(coordinator.address, shard_dir,
                                        "fast")
            client.join(timeout=60.0)
            assert not client.is_alive(), "grid never completed"
            stats = coordinator.stats()
        finally:
            coordinator.stop()
        for thread in (slow, fast):
            if thread is not None:
                thread.join(timeout=20.0)
                assert not thread.is_alive()

        assert "error" not in outcome, outcome.get("error")
        assert stats["speculative_leases"] >= 1, stats
        assert _canon(outcome["records"]) == _canon(serial)

        # both the straggler and the speculative copy persisted the
        # contested cell -- the merge layer sees the duplicate and
        # drops it first-complete-wins.
        merged, paths = _merge_all(shard_dir, str(tmp_path / "merged.jsonl"))
        aggregate = shard_stats(paths)
        assert aggregate["duplicate_cells"] >= 1, aggregate
        assert _canon(merged) == _canon(serial)


def _spawn_worker_process(address, shard_dir, name, throttle=None):
    host, port = address
    extra = {}
    if throttle is not None:
        extra["REPRO_DISPATCH_THROTTLE"] = str(throttle)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.dispatch.worker",
         f"{host}:{port}", "--shard-dir", str(shard_dir),
         "--name", name, "--once", "--heartbeat", "0.2"],
        env=_subprocess_env(**extra),
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )


class TestMidStealWorkerDeath:
    def test_victim_killed_after_steal_grid_completes(self, tmp_path):
        """SIGKILL a straggler that has already been stolen from: the
        coordinator must requeue its remainder and the surviving worker
        finishes the grid byte-identically."""
        specs, table = _grid(sizes=(12, 14, 16, 18, 20, 22, 24, 26))
        serial = run_sweep_grid(specs, table, base_seed=13)
        shard_dir = tmp_path / "shards"

        coordinator = DispatchCoordinator(
            shard_policy="adaptive", straggler_deadline=30.0,
        )
        coordinator.start()
        victim = _spawn_worker_process(
            coordinator.address, shard_dir, "victim", throttle=0.4
        )
        outcome = {}

        def _client():
            try:
                outcome["records"] = run_sweep_grid(
                    specs, table, base_seed=13,
                    dispatch=RemoteDispatch(coordinator=coordinator),
                )
            except Exception as error:
                outcome["error"] = error

        client = threading.Thread(target=_client, daemon=True)
        thief = None
        try:
            coordinator.wait_for_workers(1, timeout=30.0)
            client.start()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if coordinator.stats()["in_flight_shards"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("grid never leased to the victim")
            thief = _start_worker_thread(coordinator.address, shard_dir,
                                         "thief")
            # the thief drains the queue, then steals from the victim
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if coordinator.stats()["steals"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no steal before the deadline")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
            client.join(timeout=60.0)
            assert not client.is_alive(), "grid never completed after death"
            stats = coordinator.stats()
        finally:
            coordinator.stop()
            try:
                victim.wait(timeout=10)
            except subprocess.TimeoutExpired:
                victim.kill()
        if thief is not None:
            thief.join(timeout=20.0)
            assert not thief.is_alive()

        assert "error" not in outcome, outcome.get("error")
        assert stats["steals"] >= 1, stats
        assert stats["requeues"] >= 1, stats
        assert _canon(outcome["records"]) == _canon(serial)
        merged, _ = _merge_all(shard_dir)
        assert _canon(merged) == _canon(serial)


class TestSupervisedWorker:
    def test_once_and_supervise_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_worker("127.0.0.1", 1, ".", once=True, supervise=True)

    def test_rejoins_after_coordinator_restart_and_replays(self, tmp_path):
        """A supervised worker rides out a coordinator restart: it
        reconnects with backoff, replays its shard store for the
        repeated grid, and only exits when told to stop."""
        specs, table = _grid(sizes=(10, 12))
        serial = run_sweep_grid(specs, table, base_seed=5)
        shard_dir = tmp_path / "shards"
        stop_event = threading.Event()
        results = {}

        first = DispatchCoordinator().start()
        port = first.address[1]
        worker = _start_worker_thread(
            first.address, shard_dir, "lifer",
            supervise=True, stop_event=stop_event, results=results,
        )
        second = None
        try:
            first.wait_for_workers(1, timeout=30.0)
            records = run_sweep_grid(
                specs, table, base_seed=5,
                dispatch=RemoteDispatch(coordinator=first),
            )
            assert _canon(records) == _canon(serial)
            first.stop()

            # restart on the same port: the supervised worker must
            # rejoin on its own (capped-backoff reconnect loop).
            second = DispatchCoordinator(port=port).start()
            second.wait_for_workers(1, timeout=30.0)
            again = run_sweep_grid(
                specs, table, base_seed=5,
                dispatch=RemoteDispatch(coordinator=second),
            )
            assert _canon(again) == _canon(serial)
        finally:
            stop_event.set()
            if second is not None:
                second.stop()
            first.stop()
        worker.join(timeout=30.0)
        assert not worker.is_alive(), "supervised worker failed to stop"

        # the second run replayed the store instead of recomputing
        stats = results["lifer"]
        assert stats["sessions"] >= 2, stats
        assert stats["replayed"] >= 1, stats
        _, paths = _merge_all(shard_dir)
        aggregate = shard_stats(paths)
        assert aggregate["workers"]["lifer"]["replayed"] >= 1, aggregate
        assert aggregate["workers"]["lifer"]["leases"] >= 2, aggregate


class TestMergeStatsCli:
    def test_merge_stats_renders_per_worker_table(self, tmp_path, capsys):
        specs, table = _grid(sizes=(10, 12),
                             algorithms=("classical_exact", "two_approx"))
        serial = run_sweep_grid(specs, table, base_seed=3)
        shard_dir = tmp_path / "shards"

        coordinator = DispatchCoordinator(shard_policy="adaptive")
        coordinator.start()
        threads = [
            _start_worker_thread(coordinator.address, shard_dir, "w1"),
            _start_worker_thread(coordinator.address, shard_dir, "w2"),
        ]
        try:
            coordinator.wait_for_workers(2, timeout=30.0)
            run_sweep_grid(
                specs, table, base_seed=3,
                dispatch=RemoteDispatch(coordinator=coordinator, workers=2),
            )
        finally:
            coordinator.stop()
        for thread in threads:
            thread.join(timeout=20.0)

        paths = sorted(
            str(shard_dir / name) for name in os.listdir(shard_dir)
        )
        out_path = tmp_path / "merged.jsonl"
        exit_code = main(["merge", *paths, "--out", str(out_path), "--stats"])
        captured = capsys.readouterr()
        assert exit_code == 0
        # the per-worker table is the command's primary output (the
        # records went to --out); the summary lines go to stderr
        table_text = captured.out
        assert "worker" in table_text and "cells/s" in table_text
        assert "duplicate(s) dropped" in captured.err
        # every worker that computed cells appears in the table
        for worker_id, entry in shard_stats(paths)["workers"].items():
            if entry["cells"]:
                assert worker_id in table_text

        merged = merge_shards(paths)
        assert _canon(merged) == _canon(serial)

    def test_merged_store_carries_dispatch_stats(self, tmp_path):
        specs, table = _grid(sizes=(10,))
        shard_dir = tmp_path / "shards"
        coordinator = DispatchCoordinator()
        coordinator.start()
        thread = _start_worker_thread(coordinator.address, shard_dir, "solo")
        try:
            coordinator.wait_for_workers(1, timeout=30.0)
            run_sweep_grid(
                specs, table, base_seed=9,
                dispatch=RemoteDispatch(coordinator=coordinator),
            )
        finally:
            coordinator.stop()
        thread.join(timeout=20.0)

        paths = sorted(
            str(shard_dir / name) for name in os.listdir(shard_dir)
        )
        out_path = str(tmp_path / "merged.jsonl")
        merge_shards(paths, out_path=out_path)
        with open(out_path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        stamped = header.get("dispatch_stats")
        assert stamped is not None, header
        assert stamped["unique_cells"] == len(specs) * len(table)
        assert "solo" in stamped["workers"]


class TestCliSurface:
    def test_shard_policy_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["sweep", "--families", "cycle",
                                  "--sizes", "10"])
        assert args.shard_policy == "adaptive"
        assert args.straggler_deadline == pytest.approx(10.0)
        assert args.dispatch_stats is None
        args = parser.parse_args([
            "sweep", "--families", "cycle", "--sizes", "10",
            "--shard-policy", "static", "--straggler-deadline", "3",
            "--dispatch-stats", "stats.json",
        ])
        assert args.shard_policy == "static"
        assert SHARD_POLICIES == ("static", "adaptive")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard policy"):
            DispatchCoordinator(shard_policy="banana")
        with pytest.raises(ValueError, match="straggler_deadline"):
            DispatchCoordinator(straggler_deadline=0.0)
