"""Unit tests for the CONGEST simulator: messages, metrics and the network."""

from __future__ import annotations

import pytest

from repro.congest.errors import (
    BandwidthExceededError,
    ProtocolError,
    RoundLimitExceededError,
)
from repro.congest.message import message_size_bits
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import NodeAlgorithm
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestMessageSizes:
    def test_none_and_bool(self):
        assert message_size_bits(None) == 1
        assert message_size_bits(True) == 1
        assert message_size_bits(False) == 1

    def test_small_ints(self):
        assert message_size_bits(0) == 1
        assert message_size_bits(1) == 1
        assert message_size_bits(7) == 3
        assert message_size_bits(8) == 4

    def test_negative_ints_cost_a_sign_bit(self):
        assert message_size_bits(-7) == message_size_bits(7) + 1

    def test_large_int_scales_logarithmically(self):
        assert message_size_bits(2 ** 20) == 21

    def test_float(self):
        assert message_size_bits(3.14) == 64

    def test_string(self):
        assert message_size_bits("abc") == 24
        assert message_size_bits("") == 1

    def test_tuple_framing(self):
        assert message_size_bits((1, 1)) == 2 * (2 + 1)

    def test_nested_structures(self):
        nested = ("tag", (1, 2), [3])
        assert message_size_bits(nested) > message_size_bits("tag")

    def test_dict(self):
        assert message_size_bits({"a": 1}) == 2 + 8 + 1

    def test_large_negative_int(self):
        # Sign bit on top of the magnitude, at any scale.
        assert message_size_bits(-(2 ** 20)) == 22
        assert message_size_bits(-(2 ** 200)) == message_size_bits(2 ** 200) + 1
        assert message_size_bits(-1) == 2

    def test_deeply_nested_containers(self):
        # Each nesting level adds 2 bits of framing around the inner value.
        payload = 5
        expected = message_size_bits(5)
        for _ in range(20):
            payload = (payload,)
            expected += 2
        assert message_size_bits(payload) == expected

    def test_nested_mixed_containers(self):
        payload = {"k": [(1, "x"), frozenset([2])], "m": {"inner": None}}
        # Consistency is the contract: the size decomposes into the parts.
        expected = (
            2 + message_size_bits("k")
            + (2 + message_size_bits((1, "x"))) + (2 + message_size_bits(frozenset([2])))
            + 2 + message_size_bits("m") + (2 + message_size_bits("inner") + message_size_bits(None))
        )
        assert message_size_bits(payload) == expected

    def test_dict_payload_framing(self):
        assert message_size_bits({}) == 1
        assert message_size_bits({1: 2, 3: 4}) == (
            (2 + message_size_bits(1) + message_size_bits(2))
            + (2 + message_size_bits(3) + message_size_bits(4))
        )
        # Key and value sizes both count.
        assert message_size_bits({"ab": "cd"}) == 2 + 16 + 16

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            message_size_bits(object())

    def test_unsupported_type_inside_container_raises(self):
        with pytest.raises(TypeError):
            message_size_bits(("tag", object()))


class TestMetrics:
    def test_merge_adds_and_maxes(self):
        a = ExecutionMetrics(rounds=3, messages=5, total_bits=50,
                             max_edge_bits_per_round=10, max_node_memory_bits=7)
        b = ExecutionMetrics(rounds=2, messages=1, total_bits=5,
                             max_edge_bits_per_round=20, max_node_memory_bits=3)
        merged = a.merged(b)
        assert merged.rounds == 5
        assert merged.messages == 6
        assert merged.total_bits == 55
        assert merged.max_edge_bits_per_round == 20
        assert merged.max_node_memory_bits == 7

    def test_merge_phases(self):
        a = ExecutionMetrics()
        a.record_phase("bfs", 4)
        b = ExecutionMetrics()
        b.record_phase("bfs", 2)
        b.record_phase("waves", 9)
        merged = a.merged(b)
        assert merged.phase_rounds == {"bfs": 6, "waves": 9}

    def test_scaled(self):
        metrics = ExecutionMetrics(rounds=4, messages=10, total_bits=100)
        scaled = metrics.scaled(3)
        assert scaled.rounds == 12
        assert scaled.messages == 30
        assert scaled.total_bits == 300

    def test_scaled_zero(self):
        assert ExecutionMetrics(rounds=4).scaled(0).rounds == 0

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            ExecutionMetrics().scaled(-1)

    def test_total(self):
        parts = [ExecutionMetrics(rounds=1), ExecutionMetrics(rounds=2),
                 ExecutionMetrics(rounds=3)]
        assert ExecutionMetrics.total(parts).rounds == 6

    def test_bandwidth_limit_merge_takes_minimum(self):
        a = ExecutionMetrics(bandwidth_limit_bits=64)
        b = ExecutionMetrics(bandwidth_limit_bits=32)
        assert a.merged(b).bandwidth_limit_bits == 32
        assert a.merged(ExecutionMetrics()).bandwidth_limit_bits == 64


class _PingPong(NodeAlgorithm):
    """Round 0: node 0 sends a ping; the receiver replies; then both stop."""

    def on_round(self, round_number, inbox):
        if round_number == 0 and self.node_id == 0:
            return self.send_to(self.neighbors[0], ("p",))
        for sender, payload in inbox.items():
            if payload == ("p",):
                self.finished = True
                return self.send_to(sender, ("q",))
            if payload == ("q",):
                self.received_pong = True
        self.finished = True
        return {}

    def result(self):
        return getattr(self, "received_pong", False)


class _Chatterbox(NodeAlgorithm):
    """Sends an oversized message to trigger bandwidth enforcement."""

    def on_round(self, round_number, inbox):
        self.finished = True
        if round_number == 0:
            return self.broadcast("x" * 4096)
        return {}


class _BadSender(NodeAlgorithm):
    """Sends to a non-neighbour to trigger a protocol error."""

    def on_round(self, round_number, inbox):
        self.finished = True
        if round_number == 0 and self.node_id == 0:
            return {999: "hello"}
        return {}


class _NeverFinishes(NodeAlgorithm):
    def on_round(self, round_number, inbox):
        return self.broadcast(1)


class TestNetwork:
    def _factory(self, cls):
        return lambda node, net: cls(
            node, net.graph.neighbors(node), net.num_nodes, net.node_rng(node)
        )

    def test_requires_connected_graph(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            Network(graph)

    def test_requires_nonempty_graph(self):
        with pytest.raises(ValueError):
            Network(Graph())

    def test_default_bandwidth_is_logarithmic(self):
        small = Network(generators.path_graph(8))
        large = Network(generators.path_graph(900))
        assert small.bandwidth_bits < large.bandwidth_bits
        assert large.bandwidth_bits <= 16 * 10

    def test_ping_pong_round_trip(self):
        network = Network(generators.path_graph(2))
        result = network.run(self._factory(_PingPong))
        assert result.results[0] is True
        assert result.metrics.messages == 2
        assert result.rounds >= 2

    def test_bandwidth_enforcement_strict(self):
        network = Network(generators.path_graph(3), strict_bandwidth=True)
        with pytest.raises(BandwidthExceededError):
            network.run(self._factory(_Chatterbox))

    def test_bandwidth_violations_counted_when_not_strict(self):
        network = Network(generators.path_graph(3), strict_bandwidth=False)
        result = network.run(self._factory(_Chatterbox))
        assert result.metrics.bandwidth_violations >= 1
        assert result.metrics.max_edge_bits_per_round > network.bandwidth_bits

    def test_protocol_error_on_non_neighbor(self):
        network = Network(generators.path_graph(3))
        with pytest.raises(ProtocolError):
            network.run(self._factory(_BadSender))

    def test_round_limit(self):
        network = Network(generators.path_graph(3))
        with pytest.raises(RoundLimitExceededError):
            network.run(self._factory(_NeverFinishes), max_rounds=5)

    def test_exact_rounds_mode(self):
        network = Network(generators.path_graph(3))
        result = network.run(self._factory(_NeverFinishes), exact_rounds=4)
        assert result.rounds == 4

    def test_traffic_recording(self):
        network = Network(generators.path_graph(2))
        result = network.run(self._factory(_PingPong), record_traffic=True)
        assert result.traffic is not None
        assert len(result.traffic) == 2
        rounds = [entry[0] for entry in result.traffic]
        assert rounds == sorted(rounds)

    def test_traffic_not_recorded_by_default(self):
        network = Network(generators.path_graph(2))
        result = network.run(self._factory(_PingPong))
        assert result.traffic is None

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Network(generators.path_graph(3), bandwidth_bits=0)

    def test_node_rng_deterministic(self):
        network = Network(generators.path_graph(3), seed=5)
        assert network.node_rng(1).random() == network.node_rng(1).random()
