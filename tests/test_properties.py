"""Property-based tests (hypothesis) for the core data structures and the
paper's key invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.dfs_traversal import sequential_euler_tour
from repro.congest.message import message_size_bits
from repro.congest.network import Network
from repro.core.coverage import coverage_probability, window_set
from repro.graphs import generators
from repro.graphs.gadgets_achk import ACHKGadget
from repro.graphs.gadgets_hw12 import HW12Gadget
from repro.graphs.graph import Graph
from repro.lowerbounds.disjointness import disjointness
from repro.quantum.amplitude_amplification import grover_success_probability

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=14):
    """A random connected graph built from a random tree plus extra edges."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    graph = Graph(nodes=range(n))
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        graph.add_edge(node, parent)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


bitstrings = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=9)


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(connected_graphs())
    def test_triangle_inequality(self, graph):
        nodes = graph.nodes()
        u, v, w = nodes[0], nodes[len(nodes) // 2], nodes[-1]
        assert graph.distance(u, w) <= graph.distance(u, v) + graph.distance(v, w)

    @given(connected_graphs())
    def test_distance_symmetry(self, graph):
        nodes = graph.nodes()
        u, v = nodes[0], nodes[-1]
        assert graph.distance(u, v) == graph.distance(v, u)

    @given(connected_graphs())
    def test_diameter_is_max_eccentricity_and_bounded(self, graph):
        diameter = graph.diameter()
        eccentricities = graph.all_eccentricities()
        assert diameter == max(eccentricities.values())
        assert diameter <= graph.num_nodes - 1
        # Radius <= diameter <= 2 * radius.
        radius = min(eccentricities.values())
        assert radius <= diameter <= 2 * radius

    @given(connected_graphs())
    def test_bfs_tree_has_n_minus_one_edges(self, graph):
        parent = graph.bfs_tree(graph.nodes()[0])
        tree_edges = [(node, par) for node, par in parent.items() if par is not None]
        assert len(tree_edges) == graph.num_nodes - 1


# ----------------------------------------------------------------------
# Distributed primitives against the sequential oracle
# ----------------------------------------------------------------------
class TestDistributedProperties:
    @given(connected_graphs(max_nodes=12))
    def test_distributed_bfs_matches_oracle(self, graph):
        network = Network(graph, seed=0)
        root = graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        assert tree.distance == graph.bfs_distances(root)

    @given(connected_graphs(max_nodes=12), st.integers(min_value=0, max_value=11))
    def test_euler_tour_walk_property(self, graph, start_index):
        network = Network(graph, seed=0)
        root = graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        start = graph.nodes()[start_index % graph.num_nodes]
        window = 2 * max(1, tree.depth)
        times = sequential_euler_tour(tree, start, window=window)
        for v, tv in times.items():
            for w, tw in times.items():
                if tv < tw:
                    assert graph.distance(v, w) <= tw - tv

    @given(connected_graphs(max_nodes=12))
    def test_lemma1_coverage(self, graph):
        network = Network(graph, seed=0)
        root = graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        d = max(1, tree.depth)
        n = graph.num_nodes
        target = graph.nodes()[-1]
        assert coverage_probability(tree, target, 2 * d) >= d / (2.0 * n) - 1e-12

    @given(connected_graphs(max_nodes=12), st.integers(min_value=0, max_value=30))
    def test_window_set_monotone_in_window(self, graph, window):
        network = Network(graph, seed=0)
        tree = run_bfs_tree(network, graph.nodes()[0])
        u0 = graph.nodes()[-1]
        small = window_set(tree, u0, window)
        large = window_set(tree, u0, window + 3)
        assert small <= large


# ----------------------------------------------------------------------
# Messages, gadgets and quantum algebra
# ----------------------------------------------------------------------
class TestMiscellaneousProperties:
    @given(
        st.recursive(
            st.one_of(
                st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
                st.booleans(),
                st.text(max_size=6),
                st.none(),
            ),
            lambda children: st.lists(children, max_size=4).map(tuple),
            max_leaves=8,
        )
    )
    def test_message_sizes_positive_and_monotone_under_nesting(self, payload):
        size = message_size_bits(payload)
        assert size >= 1
        assert message_size_bits((payload,)) >= size

    @given(bitstrings, bitstrings)
    def test_disjointness_is_symmetric_and_matches_definition(self, x, y):
        k = min(len(x), len(y))
        x, y = x[:k], y[:k]
        if k == 0:
            return
        assert disjointness(x, y) == disjointness(y, x)
        assert disjointness(x, y) == (0 if any(a and b for a, b in zip(x, y)) else 1)

    @given(st.integers(min_value=1, max_value=3), bitstrings, bitstrings)
    def test_hw12_gadget_promise(self, s, x, y):
        gadget = HW12Gadget(s)
        k = gadget.input_length
        x = (list(x) * k)[:k]
        y = (list(y) * k)[:k]
        graph = gadget.graph_for_inputs(x, y)
        if disjointness(x, y) == 1:
            assert graph.diameter() <= 2
        else:
            assert graph.diameter() >= 3

    @given(st.integers(min_value=1, max_value=6), bitstrings, bitstrings)
    def test_achk_gadget_promise(self, k, x, y):
        gadget = ACHKGadget(k)
        x = (list(x) * k)[:k]
        y = (list(y) * k)[:k]
        graph = gadget.graph_for_inputs(x, y)
        if disjointness(x, y) == 1:
            assert graph.diameter() <= 4
        else:
            assert graph.diameter() >= 5

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.integers(min_value=0, max_value=50),
    )
    def test_grover_probability_in_unit_interval(self, p, k):
        probability = grover_success_probability(p, k)
        assert 0.0 <= probability <= 1.0 + 1e-12

    @given(st.floats(min_value=0.001, max_value=0.25))
    def test_one_grover_iteration_never_decreases_small_success(self, p):
        assert grover_success_probability(p, 1) >= p - 1e-12
