"""Tests for the service job model, ledger, and capacity accounting.

The ledger is the daemon's durable queue; these tests pin the replay
semantics (first job entry wins, last state entry wins, truncated tails
and foreign lines are tolerated), the stale-lease recovery edge, and the
MAAS-style total/used/available capacity arithmetic.
"""

from __future__ import annotations

import json

import pytest

from repro.service import (
    GridRequest,
    JobLedger,
    JobRecord,
    QuotaExceeded,
    QuotaPolicy,
    capacity_report,
)
from repro.store import ExperimentStore


def _request(**overrides) -> GridRequest:
    base = dict(
        families=("cycle",), sizes=(10,), algorithms=("classical_exact",)
    )
    base.update(overrides)
    return GridRequest(**base)


def _record(job_id="job-000001", tenant="alice", state="queued", **overrides):
    record = JobRecord(
        job_id=job_id,
        tenant=tenant,
        request=_request(),
        store_name=f"{job_id}.jsonl",
        total=1,
        state=state,
    )
    for key, value in overrides.items():
        setattr(record, key, value)
    return record


class TestJobRecord:
    def test_active_states(self):
        assert _record(state="queued").active
        assert _record(state="running").active
        for state in ("done", "failed", "cancelled"):
            assert not _record(state=state).active

    def test_to_api_shape(self):
        record = _record(done=3, detail="x")
        record.total = 4
        payload = record.to_api()
        assert payload["job_id"] == "job-000001"
        assert payload["progress"] == {"done": 3, "total": 4}
        assert payload["store"] == "alice/job-000001.jsonl"
        assert payload["request"] == _request().to_dict()
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_store_is_tenant_namespaced(self, tmp_path):
        store = _record().store(str(tmp_path))
        assert store.path.endswith("alice/job-000001.jsonl")
        assert (tmp_path / "alice").is_dir()

    def test_bad_tenant_rejected(self, tmp_path):
        for tenant in ("", "../evil", "a/b", ".hidden", "x" * 65):
            with pytest.raises(ValueError, match="tenant"):
                _record(tenant=tenant).store(str(tmp_path))


class TestLedgerReplay:
    def test_round_trip(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        record = _record()
        record.created = 1000.0
        ledger.append_job(record)
        ledger.append_state("job-000001", "running", done=0)
        ledger.append_state("job-000001", "done", done=1)

        replayed = ledger.replay()
        assert set(replayed) == {"job-000001"}
        clone = replayed["job-000001"]
        assert clone.state == "done"
        assert clone.done == 1
        assert clone.request == record.request
        assert clone.created == 1000.0

    def test_first_job_entry_wins(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        first = _record(tenant="alice")
        ledger.append_job(first)
        ledger.append_job(_record(tenant="mallory"))
        assert ledger.replay()["job-000001"].tenant == "alice"

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        ledger.append_job(_record())
        ledger.append_state("job-000001", "running")
        # simulate a crash mid-append: a partial, newline-less JSON line
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "state", "job_id": "job-0')
        replayed = ledger.replay()
        assert replayed["job-000001"].state == "running"
        # ... and the next append must not splice into the partial line
        ledger.append_state("job-000001", "done", done=1)
        assert ledger.replay()["job-000001"].state == "done"

    def test_foreign_and_malformed_entries_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        ledger.append_job(_record())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "state", "job_id": "job-999999", "state": "done", "done": 0, "at": 0}\n')
            handle.write('{"kind": "state", "job_id": "job-000001", "state": "exploded", "done": 0, "at": 0}\n')
            handle.write('{"kind": "job", "job_id": "job-000002"}\n')
            handle.write('{"unrelated": true}\n')
        replayed = ledger.replay()
        assert set(replayed) == {"job-000001"}
        assert replayed["job-000001"].state == "queued"

    def test_unknown_state_rejected_on_write(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        with pytest.raises(ValueError, match="unknown job state"):
            ledger.append_state("job-000001", "exploded")


class TestRecovery:
    def test_stale_running_lease_requeued(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        ledger.append_job(_record())
        ledger.append_state("job-000001", "running", done=2)

        recovered = ledger.recover()
        assert recovered["job-000001"].state == "queued"
        assert recovered["job-000001"].done == 2  # progress survives
        assert "requeued" in recovered["job-000001"].detail
        # the requeue is durable, not just in-memory
        assert ledger.replay()["job-000001"].state == "queued"

    def test_terminal_jobs_untouched(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        ledger.append_job(_record())
        ledger.append_state("job-000001", "done", done=1)
        assert ledger.recover()["job-000001"].state == "done"

    def test_next_job_id_sequential(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        assert ledger.next_job_id() == "job-000001"
        ledger.append_job(_record(job_id="job-000007"))
        assert ledger.next_job_id() == "job-000008"


class TestQuota:
    def test_under_quota_passes(self):
        QuotaPolicy(tenant_jobs=2).check_submit("alice", [_record()])

    def test_at_quota_rejected(self):
        jobs = [_record(job_id="job-000001"),
                _record(job_id="job-000002", state="running")]
        with pytest.raises(QuotaExceeded, match="'alice'"):
            QuotaPolicy(tenant_jobs=2).check_submit("alice", jobs)

    def test_terminal_jobs_do_not_count(self):
        jobs = [_record(job_id=f"job-00000{i}", state=state)
                for i, state in enumerate(("done", "failed", "cancelled"), 1)]
        QuotaPolicy(tenant_jobs=1).check_submit("alice", jobs)

    def test_other_tenants_unaffected(self):
        jobs = [_record(job_id="job-000001", tenant="alice"),
                _record(job_id="job-000002", tenant="alice")]
        policy = QuotaPolicy(tenant_jobs=2)
        with pytest.raises(QuotaExceeded):
            policy.check_submit("alice", jobs)
        policy.check_submit("bob", jobs)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            QuotaPolicy(tenant_jobs=0)


class TestCapacityReport:
    def test_available_is_total_minus_used(self):
        jobs = [
            _record(job_id="job-000001", tenant="alice", state="running"),
            _record(job_id="job-000002", tenant="alice", state="queued"),
            _record(job_id="job-000003", tenant="bob", state="done"),
        ]
        report = capacity_report(4, QuotaPolicy(tenant_jobs=8), jobs)
        assert report["total"] == {"workers": 4}
        assert report["used"] == {"workers": 1}
        assert report["available"] == {"workers": 3}
        assert report["queued"] == 1
        assert report["tenants"]["alice"] == {
            "total": 8, "used": 2, "available": 6,
        }
        assert report["tenants"]["bob"] == {
            "total": 8, "used": 0, "available": 8,
        }

    def test_available_never_negative(self):
        jobs = [_record(job_id=f"job-00000{i}", state="running")
                for i in range(1, 4)]
        report = capacity_report(2, QuotaPolicy(tenant_jobs=2), jobs)
        assert report["available"] == {"workers": 0}
        assert report["tenants"]["alice"]["available"] == 0

    def test_empty_service(self):
        report = capacity_report(2, QuotaPolicy(), [])
        assert report["used"] == {"workers": 0}
        assert report["tenants"] == {}


class TestNamespacedStore:
    def test_namespaced_creates_tenant_directory(self, tmp_path):
        store = ExperimentStore.namespaced(str(tmp_path), "alice", "run.jsonl")
        assert store.path == str(tmp_path / "alice" / "run.jsonl")
        assert (tmp_path / "alice").is_dir()

    def test_namespaced_appends_extension(self, tmp_path):
        store = ExperimentStore.namespaced(str(tmp_path), "alice", "run")
        assert store.path.endswith("run.jsonl")
