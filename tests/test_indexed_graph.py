"""Differential tests: the compiled CSR view vs the legacy graph oracles.

The contract of ``Graph.compile()`` is that every oracle on the
:class:`repro.graphs.indexed.IndexedGraph` returns **byte-identical**
results to the adjacency-map reference implementation -- same values,
same dict iteration order, same exceptions.  These tests sweep every
generator family (plus hypothesis-generated random graphs) across seeds
and sizes chosen to exercise all three all-eccentricities strategies
(plain stamped BFS, bit-parallel, Takes-Kosters pruning incl. its
bailout), and guard the compile/invalidate lifecycle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators
from repro.graphs.graph import Graph, GraphError
from repro.graphs.indexed import IndexedGraph


def assert_oracles_identical(graph: Graph) -> None:
    """Every oracle of the compiled view matches the legacy oracle,
    including dict iteration order."""
    view = graph.compile()
    assert view.num_nodes == graph.num_nodes
    assert view.num_edges == graph.num_edges
    assert view.is_connected() == graph.is_connected()

    nodes = graph.nodes()
    assert list(view.labels) == nodes
    for node in nodes:
        assert view.degree(node) == graph.degree(node)
        assert list(view.neighbors(node)) == graph.neighbors(node)

    source = nodes[0]
    legacy_dist = graph.bfs_distances(source)
    csr_dist = view.bfs_distances(source)
    assert csr_dist == legacy_dist
    assert list(csr_dist) == list(legacy_dist)

    legacy_components = graph.connected_components()
    assert view.connected_components() == legacy_components

    if graph.is_connected():
        legacy_ecc = graph.all_eccentricities()
        csr_ecc = view.all_eccentricities()
        assert csr_ecc == legacy_ecc
        assert list(csr_ecc) == list(legacy_ecc)
        assert view.diameter() == graph.diameter()
        assert view.radius() == graph.radius()
        assert view.eccentricity(source) == graph.eccentricity(source)
        left, right = nodes[: max(1, len(nodes) // 4)], nodes[-3:]
        assert view.max_cross_distance(left, right) == graph.max_cross_distance(
            left, right
        )
        target = nodes[-1]
        assert view.distance(source, target) == graph.distance(source, target)


class TestDifferentialByFamily:
    @pytest.mark.parametrize("family", generators.SWEEP_FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_family_oracles_identical(self, family, seed):
        for n in (8, 24, 90):
            graph = generators.family_for_sweep(family, n, seed=seed)
            assert_oracles_identical(graph)

    def test_strategy_plain_small_graph(self):
        # n <= 64 takes the plain stamped-BFS strategy.
        graph = generators.family_for_sweep("random_sparse", 40, seed=5)
        assert_oracles_identical(graph)

    def test_strategy_bitparallel_small_diameter(self):
        # n > 64 with small diameter takes the bit-parallel strategy.
        graph = generators.family_for_sweep("random_sparse", 150, seed=5)
        assert graph.compile().diameter() * 8 <= graph.num_nodes
        assert_oracles_identical(graph)

    def test_strategy_pruned_high_diameter(self):
        # A path resolves in a handful of pruning sweeps.
        graph = generators.path_graph(200)
        assert_oracles_identical(graph)

    def test_strategy_pruned_bailout_on_cycle(self):
        # Every eccentricity of an even cycle ties, so pruning cannot
        # resolve non-swept nodes and must bail out to plain BFS.
        graph = generators.cycle_graph(300)
        assert_oracles_identical(graph)

    def test_tuple_labelled_graph(self):
        graph = Graph()
        for i in range(30):
            graph.add_edge(("ring", i), ("ring", (i + 1) % 30))
        graph.add_edge(("ring", 0), ("chord", 0))
        graph.add_edge(("chord", 0), ("ring", 15))
        assert_oracles_identical(graph)


class TestDifferentialHypothesis:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_connected_graphs(self, n, seed, extra):
        import random

        rng = random.Random(seed)
        graph = Graph(nodes=range(n))
        for node in range(1, n):
            graph.add_edge(node, rng.randrange(node))
        for _ in range(extra):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                graph.add_edge(u, v)
        assert_oracles_identical(graph)

    @given(st.integers(min_value=2, max_value=20), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_disconnected_graphs(self, n, seed):
        import random

        rng = random.Random(seed)
        graph = Graph(nodes=range(2 * n))
        # Two components: a tree on 0..n-1 and a tree on n..2n-1.
        for node in range(1, n):
            graph.add_edge(node, rng.randrange(node))
        for node in range(n + 1, 2 * n):
            graph.add_edge(node, n + rng.randrange(node - n))
        assert_oracles_identical(graph)
        view = graph.compile()
        assert not view.is_connected()
        with pytest.raises(GraphError):
            view.all_eccentricities()
        with pytest.raises(GraphError):
            view.diameter()


class TestDisconnectedBehaviour:
    """Satellite: oracles on disconnected graphs fail loudly (GraphError)
    or use the documented absent-key sentinel, on both paths."""

    @pytest.fixture
    def split(self) -> Graph:
        return Graph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])

    def test_bfs_distances_sentinel(self, split):
        # Documented sentinel: unreachable nodes are absent.
        for dist in (split.bfs_distances(0), split.compile().bfs_distances(0)):
            assert dist == {0: 0, 1: 1}
            assert 2 not in dist and 3 not in dist

    @pytest.mark.parametrize("compiled", [False, True])
    def test_eccentricity_raises_graph_error(self, split, compiled):
        oracle = split.compile() if compiled else split
        with pytest.raises(GraphError):
            oracle.eccentricity(0)
        with pytest.raises(GraphError):
            oracle.all_eccentricities()
        with pytest.raises(GraphError):
            oracle.diameter()
        with pytest.raises(GraphError):
            oracle.radius()
        with pytest.raises(GraphError):
            oracle.distance(0, 3)
        with pytest.raises(GraphError):
            oracle.max_cross_distance([0], [3])

    @pytest.mark.parametrize("compiled", [False, True])
    def test_empty_graph_raises_graph_error(self, compiled):
        graph = Graph()
        oracle = graph.compile() if compiled else graph
        with pytest.raises(GraphError):
            oracle.diameter()
        with pytest.raises(GraphError):
            oracle.radius()

    def test_graph_error_is_value_error(self):
        # Back-compat: callers catching the historical ValueError still do.
        assert issubclass(GraphError, ValueError)

    @pytest.mark.parametrize("compiled", [False, True])
    def test_missing_node_raises_key_error(self, compiled):
        graph = generators.path_graph(4)
        oracle = graph.compile() if compiled else graph
        with pytest.raises(KeyError):
            oracle.bfs_distances(99)
        with pytest.raises(KeyError):
            oracle.eccentricity(99)


class TestCompileLifecycle:
    """Guard: compile() caches aggressively but never serves a stale view."""

    def test_compile_is_cached(self):
        graph = generators.cycle_graph(6)
        assert graph.compile() is graph.compile()

    def test_oracle_calls_do_not_invalidate(self):
        graph = generators.cycle_graph(6)
        view = graph.compile()
        graph.diameter()
        graph.neighbors(0)
        assert graph.compile() is view

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_edge(0, 3),
            lambda g: g.remove_edge(0, 1),
            lambda g: g.add_node(99),
        ],
        ids=["add_edge", "remove_edge", "add_node"],
    )
    def test_mutation_invalidates(self, mutate):
        graph = generators.cycle_graph(6)
        view = graph.compile()
        mutate(graph)
        fresh = graph.compile()
        assert fresh is not view
        assert_oracles_identical(graph)

    def test_noop_mutations_keep_the_view(self):
        graph = generators.cycle_graph(6)
        view = graph.compile()
        graph.add_node(0)  # already present
        graph.add_edge(0, 1)  # already present
        assert graph.compile() is view

    def test_stale_view_never_served_after_each_mutation_step(self):
        # The CI guard: interleave mutations and compiles and check the
        # compiled oracle answers track the live graph at every step.
        graph = generators.path_graph(5)  # diameter 4
        assert graph.compile().diameter() == 4
        graph.add_edge(0, 4)  # now a cycle: diameter 2
        assert graph.compile().diameter() == 2
        assert graph.compile().diameter() == graph.diameter()
        graph.remove_edge(2, 3)  # back to a path 3-...-2, diameter 4
        assert graph.compile().diameter() == graph.diameter() == 4
        graph.add_node(("extra", 1))
        assert not graph.compile().is_connected()
        with pytest.raises(GraphError):
            graph.compile().diameter()

    def test_old_view_keeps_its_snapshot(self):
        graph = generators.path_graph(5)
        old = graph.compile()
        graph.add_edge(0, 4)
        assert old.diameter() == 4  # frozen snapshot
        assert graph.compile().diameter() == 2

    def test_copy_does_not_share_the_view(self):
        graph = generators.path_graph(5)
        view = graph.compile()
        clone = graph.copy()
        clone.add_edge(0, 4)
        assert clone.compile() is not view
        assert clone.compile().diameter() == 2
        assert graph.compile() is view

    def test_from_graph_records_version(self):
        graph = generators.path_graph(3)
        view = IndexedGraph.from_graph(graph)
        assert view.version == graph.version


class TestPreboundNeighbours:
    def test_neighbor_tuples_are_cached(self):
        graph = generators.cycle_graph(5)
        view = graph.compile()
        assert view.neighbors(0) is view.neighbors(0)
        assert list(view.neighbors(0)) == graph.neighbors(0)

    def test_neighbor_sets_match_topology(self):
        graph = generators.clique_chain(3, 4)
        sets = graph.compile().neighbor_sets()
        assert set(sets) == set(graph.nodes())
        for node, neighbours in sets.items():
            assert neighbours == frozenset(graph.neighbors(node))

    def test_csr_arrays_are_consistent(self):
        graph = generators.random_connected_gnp(30, p=0.2, seed=3)
        view = graph.compile()
        assert len(view.offsets) == view.num_nodes + 1
        assert view.offsets[-1] == len(view.targets)
        for i in range(view.num_nodes):
            assert view.degrees[i] == view.offsets[i + 1] - view.offsets[i]
            row = view.targets[view.offsets[i] : view.offsets[i + 1]]
            labels = [view.labels[j] for j in row]
            assert labels == graph.neighbors(view.labels[i])
