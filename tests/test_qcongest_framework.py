"""Tests for the branch-state simulation and the Theorem-7 framework."""

from __future__ import annotations

import math
import random

import pytest

from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.graphs import generators
from repro.qcongest.branch_state import DistributedSuperposition
from repro.qcongest.framework import (
    DistributedSearchProblem,
    run_distributed_quantum_optimization,
)
from repro.qcongest.setup import run_setup_broadcast
from repro.algorithms.bfs import run_bfs_tree
from repro.quantum.amplitude_amplification import grover_success_probability


class TestDistributedSuperposition:
    def test_uniform_construction(self):
        state = DistributedSuperposition.uniform(range(8))
        assert state.is_normalised()
        assert all(
            state.probability(label) == pytest.approx(1 / 8) for label in range(8)
        )

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            DistributedSuperposition({0: 1.0, 1: 1.0})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DistributedSuperposition.uniform([])

    def test_setup_copy_fills_branch_data(self):
        state = DistributedSuperposition.uniform(["u", "v"])
        state.apply_setup_copy(nodes=[1, 2, 3])
        assert state.branch_data("u") == {1: "u", 2: "u", 3: "u"}
        assert state.branch_data("v") == {1: "v", 2: "v", 3: "v"}

    def test_branch_computation_and_uncompute(self):
        state = DistributedSuperposition.uniform([0, 1, 2])
        state.apply_setup_copy(nodes=["a"])
        state.apply_branch_computation(
            lambda label, data: {**data, "result": label * 10}
        )
        assert state.branch_data(2)["result"] == 20
        state.uncompute_data()
        assert state.branch_data(2) == {}

    def test_phase_oracle_flips_sign_only(self):
        state = DistributedSuperposition.uniform([0, 1, 2, 3])
        state.apply_phase_oracle(lambda label: label == 2)
        assert state.amplitude(2) == pytest.approx(-0.5)
        assert state.probability(2) == pytest.approx(0.25)
        assert state.is_normalised()

    def test_grover_iteration_amplifies_marked(self):
        """One Grover iteration on 4 branches with one marked item boosts its
        probability to 1 (matching the rotation algebra)."""
        state = DistributedSuperposition.uniform([0, 1, 2, 3])
        state.grover_iteration(lambda label: label == 3)
        assert state.probability(3) == pytest.approx(1.0, abs=1e-9)

    def test_grover_iterations_match_rotation_formula(self):
        n, marked = 32, {4, 9, 17}
        state = DistributedSuperposition.uniform(range(n))
        p = len(marked) / n
        for k in range(1, 4):
            state.grover_iteration(lambda label: label in marked)
            mass = state.total_mass(lambda label: label in marked)
            assert mass == pytest.approx(grover_success_probability(p, k), abs=1e-9)

    def test_reflection_requires_same_support(self):
        state = DistributedSuperposition.uniform([0, 1])
        with pytest.raises(ValueError):
            state.reflect_about({0: 1.0})

    def test_measurement_collapses(self):
        state = DistributedSuperposition.uniform(range(5))
        outcome = state.measure_internal_register(random.Random(3))
        assert outcome in range(5)
        assert state.probability(outcome) == pytest.approx(1.0)
        assert state.labels == [outcome]


class TestSetupBroadcast:
    def test_every_node_receives_label(self, network_factory):
        graph = generators.random_tree(12, seed=2)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        metrics, values = run_setup_broadcast(network, tree, ("u0", 7))
        assert all(value == ("u0", 7) for value in values.values())
        assert metrics.rounds <= tree.depth + 4


class _ToyProblem(DistributedSearchProblem):
    """A synthetic problem with known costs, used to test the accounting."""

    def __init__(self, values, eps, init_rounds=5, setup_rounds=2, eval_rounds=3):
        self.values = dict(values)
        self.eps = eps
        self._init = ExecutionMetrics(rounds=init_rounds)
        self._setup = ExecutionMetrics(rounds=setup_rounds)
        self._eval = ExecutionMetrics(rounds=eval_rounds)
        self.evaluations = 0

    def initialization(self):
        return self._init

    def search_space(self):
        return sorted(self.values)

    def setup_amplitudes(self):
        weight = 1.0 / math.sqrt(len(self.values))
        return {item: weight for item in self.values}

    def setup_cost(self):
        return self._setup

    def evaluate(self, item):
        self.evaluations += 1
        return float(self.values[item]), self._eval

    def optimum_mass_lower_bound(self):
        return self.eps

    def internal_register_bits(self):
        return 16


class TestDistributedOptimization:
    def test_finds_maximum_and_accounts_rounds(self):
        values = {i: (i % 7) for i in range(20)}
        problem = _ToyProblem(values, eps=1 / 20)
        result = run_distributed_quantum_optimization(
            problem, delta=0.05, rng=random.Random(4)
        )
        assert result.best_value == 6
        expected_rounds = (
            5 + 2 * result.counts.setup_calls + 3 * result.counts.evaluation_calls
        )
        assert result.metrics.rounds == expected_rounds
        assert result.initialization_rounds == 5
        assert result.setup_rounds_per_call == 2
        assert result.evaluation_rounds_per_call == 3

    def test_distinct_evaluations_cached(self):
        values = {i: i for i in range(10)}
        problem = _ToyProblem(values, eps=1 / 10)
        result = run_distributed_quantum_optimization(
            problem, delta=0.1, rng=random.Random(1)
        )
        # The oracle is only run once per distinct item even though the
        # quantum schedule charges every application.
        assert problem.evaluations == result.distinct_evaluations
        assert problem.evaluations <= len(values)
        assert result.counts.evaluation_calls >= problem.evaluations or True
        assert result.counts.evaluation_calls >= 1

    def test_memory_includes_internal_register(self):
        problem = _ToyProblem({0: 1, 1: 2}, eps=0.5)
        result = run_distributed_quantum_optimization(
            problem, delta=0.1, rng=random.Random(0)
        )
        assert result.metrics.max_node_memory_bits >= 16

    def test_success_probability_over_seeds(self):
        values = {i: (1 if i != 11 else 9) for i in range(24)}
        hits = 0
        for seed in range(15):
            problem = _ToyProblem(values, eps=1 / 24)
            result = run_distributed_quantum_optimization(
                problem, delta=0.05, rng=random.Random(seed)
            )
            hits += result.best_value == 9
        assert hits >= 11
