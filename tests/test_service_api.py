"""End-to-end tests for the experiment service (daemon + HTTP API + client).

The load-bearing acceptance property: a job submitted over HTTP and
executed by the daemon's worker pool produces a canonical JSONL export
**byte-identical** to running the same grid request locally.  Around it:
capacity accounting stays consistent, per-tenant quota rejections are
structured and isolated, cancellation preserves durable partial
progress, and a SIGKILLed daemon resumes its queue to the same bytes.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    ExperimentService,
    GridRequest,
    QuotaPolicy,
    ServiceClient,
    ServiceClientError,
    execute_grid_request,
    serve_api,
)
from repro.store import render_records

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

#: A small, fast grid for happy-path jobs (~0.1s of compute).
_FAST = dict(families=("cycle", "path"), sizes=(10, 12),
             algorithms=("classical_exact", "two_approx"), seed=3)

#: A grid slow enough (~2s across 8 cells) to observe/interrupt mid-run.
_SLOW = dict(families=("cycle",),
             sizes=(104, 112, 120, 128, 136, 144, 152, 160),
             algorithms=("classical_exact",), seed=5)


def _request(**overrides) -> GridRequest:
    base = dict(_FAST)
    base.update(overrides)
    return GridRequest(**base)


def _local_export(request: GridRequest) -> str:
    """The canonical export of running ``request`` locally, serially.

    Uses :func:`execute_grid_request` -- the exact path ``repro sweep``
    takes -- so the comparison is daemon-vs-local, not daemon-vs-itself
    (a separate test pins ``execute_grid_request`` against a direct
    :func:`run_sweep_grid` call).
    """
    return render_records(execute_grid_request(request), "jsonl")


@pytest.fixture
def live(tmp_path):
    """A started daemon + HTTP server + client (small poll interval)."""
    service = ExperimentService(
        tmp_path / "data", workers=2, poll_interval=0.05
    )
    service.start()
    server = serve_api(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
    yield client, service
    server.shutdown()
    server.server_close()
    service.stop()


@pytest.fixture
def idle(tmp_path):
    """An HTTP server over a *non-started* daemon: submissions stay
    queued forever, which makes quota and queued-cancel tests
    deterministic (no worker races)."""
    service = ExperimentService(
        tmp_path / "data", workers=2, quota=QuotaPolicy(tenant_jobs=2)
    )
    server = serve_api(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
    yield client, service
    server.shutdown()
    server.server_close()


class TestAPIBasics:
    def test_health(self, idle):
        client, _ = idle
        assert client.health()["status"] == "ok"

    def test_capacity_empty(self, idle):
        client, _ = idle
        report = client.capacity()
        assert report["total"] == {"workers": 2}
        assert report["used"] == {"workers": 0}
        assert report["available"] == {"workers": 2}
        assert report["tenants"] == {}

    def test_unknown_route_is_structured_404(self, idle):
        client, _ = idle
        with pytest.raises(ServiceClientError) as info:
            client._json("GET", "/frobnicate")
        assert info.value.status == 404
        assert info.value.code == "unknown_route"

    def test_unknown_job_404(self, idle):
        client, _ = idle
        for call in (lambda: client.status("job-999999"),
                     lambda: client.cancel("job-999999"),
                     lambda: client.results("job-999999")):
            with pytest.raises(ServiceClientError) as info:
                call()
            assert info.value.status == 404
            assert info.value.code == "unknown_job"

    def test_submit_missing_fields_400(self, idle):
        client, _ = idle
        with pytest.raises(ServiceClientError) as info:
            client._json("POST", "/jobs", {"request": _request().to_dict()})
        assert (info.value.status, info.value.code) == (400, "missing_tenant")
        with pytest.raises(ServiceClientError) as info:
            client._json("POST", "/jobs", {"tenant": "alice"})
        assert (info.value.status, info.value.code) == (400, "missing_request")

    def test_submit_invalid_request_400(self, idle):
        client, _ = idle
        with pytest.raises(ServiceClientError) as info:
            client.submit("alice", _request(families=("bogus",)))
        assert info.value.status == 400
        assert "unknown family" in info.value.message

    def test_submit_bad_tenant_400(self, idle):
        client, _ = idle
        with pytest.raises(ServiceClientError) as info:
            client.submit("../evil", _request())
        assert info.value.status == 400

    def test_results_unknown_format_400(self, idle):
        client, _ = idle
        job_id = client.submit("alice", _request())["job_id"]
        with pytest.raises(ServiceClientError) as info:
            client.results(job_id, format="xml")
        assert (info.value.status, info.value.code) == (400, "unknown_format")


class TestQuota:
    def test_quota_rejection_is_structured_and_isolated(self, idle):
        client, _ = idle  # tenant_jobs=2, workers never drain the queue
        client.submit("alice", _request())
        client.submit("alice", _request())
        with pytest.raises(ServiceClientError) as info:
            client.submit("alice", _request())
        assert info.value.status == 429
        assert info.value.code == "quota_exceeded"
        assert "'alice'" in info.value.message
        # ... with no effect on other tenants
        assert client.submit("bob", _request())["state"] == "queued"
        assert len(client.list_jobs(tenant="alice")) == 2
        assert len(client.list_jobs(tenant="bob")) == 1

    def test_capacity_tracks_tenant_usage(self, idle):
        client, _ = idle
        client.submit("alice", _request())
        report = client.capacity()
        assert report["tenants"]["alice"] == {
            "total": 2, "used": 1, "available": 1,
        }
        assert report["queued"] == 1

    def test_capacity_consistent_under_concurrent_submissions(self, idle):
        client, _ = idle
        errors = []

        def spam(tenant):
            try:
                for _ in range(4):
                    try:
                        client.submit(tenant, _request())
                    except ServiceClientError as error:
                        if error.status != 429:
                            raise
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [threading.Thread(target=spam, args=(t,))
                   for t in ("alice", "bob", "carol")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        report = client.capacity()
        # the quota (2/tenant) must have held exactly under concurrency
        for tenant in ("alice", "bob", "carol"):
            assert report["tenants"][tenant]["used"] == 2
            assert report["tenants"][tenant]["available"] == 0
        assert report["queued"] == 6


class TestCancelQueued:
    def test_queued_job_cancels_immediately(self, idle):
        client, _ = idle
        job_id = client.submit("alice", _request())["job_id"]
        status = client.cancel(job_id)
        assert status["state"] == "cancelled"
        assert status["detail"] == "cancelled before execution"
        # cancelling a terminal job is a structured conflict
        with pytest.raises(ServiceClientError) as info:
            client.cancel(job_id)
        assert info.value.status == 409
        assert info.value.code == "invalid_transition"
        # ... and frees the tenant's quota slot
        assert client.capacity()["tenants"]["alice"]["used"] == 0


class TestExecution:
    def test_daemon_export_byte_identical_to_local_run(self, live):
        client, _ = live
        request = _request()
        job_id = client.submit("alice", request)["job_id"]
        status = client.watch(job_id, poll=0.05, timeout=60)
        assert status["state"] == "done"
        assert status["progress"] == {"done": 8, "total": 8}
        assert client.results(job_id, format="jsonl") == _local_export(request)

    def test_jobs_with_different_selections_isolated(self, live):
        # two concurrent jobs with *different* engine/backend selections:
        # per-job process isolation must keep the selections apart, and
        # both exports must still match plain local runs (selections
        # change wall-clock, never bytes).
        client, _ = live
        a = client.submit("alice", _request(engine="sparse"))["job_id"]
        b = client.submit("bob", _request(backend="batched"))["job_id"]
        assert client.watch(a, poll=0.05, timeout=60)["state"] == "done"
        assert client.watch(b, poll=0.05, timeout=60)["state"] == "done"
        assert client.results(a) == _local_export(_request(engine="sparse"))
        assert client.results(b) == _local_export(_request(backend="batched"))

    def test_fault_injected_job_completes(self, live):
        client, _ = live
        request = GridRequest.from_dict({
            **_request().to_dict(),
            "fault": {"loss": 0.05, "seed": 3},
        })
        job_id = client.submit("alice", request)["job_id"]
        status = client.watch(job_id, poll=0.05, timeout=60)
        assert status["state"] == "done"
        assert client.results(job_id) == _local_export(request)

    def test_capacity_during_and_after(self, live):
        client, _ = live
        job_id = client.submit("alice", GridRequest(**_SLOW))["job_id"]
        deadline = time.monotonic() + 30
        saw_running = False
        while time.monotonic() < deadline:
            if client.status(job_id)["state"] == "running":
                saw_running = True
                report = client.capacity()
                assert report["used"]["workers"] >= 1
                assert (report["used"]["workers"]
                        + report["available"]["workers"] == 2)
                break
            time.sleep(0.05)
        assert saw_running, "job never entered running state"
        client.watch(job_id, poll=0.05, timeout=60)
        report = client.capacity()
        assert report["used"] == {"workers": 0}
        assert report["tenants"]["alice"]["used"] == 0

    def test_cancel_running_preserves_partial_progress(self, live):
        client, _ = live
        request = GridRequest(**_SLOW)
        job_id = client.submit("alice", request)["job_id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.status(job_id)
            if status["state"] == "running" and status["progress"]["done"] >= 1:
                break
            time.sleep(0.02)
        else:  # pragma: no cover - diagnostics
            pytest.fail("job never made observable progress")
        client.cancel(job_id)
        status = client.watch(job_id, poll=0.05, timeout=60)
        assert status["state"] == "cancelled"
        assert status["cancel_requested"] is True
        done = status["progress"]["done"]
        assert 1 <= done < status["progress"]["total"]
        assert "cancelled after" in status["detail"]
        # the partial records are durable and served
        lines = client.results(job_id).splitlines()
        assert len(lines) == done
        # ... and a cancelled job frees its quota slot
        assert client.capacity()["tenants"]["alice"]["used"] == 0


def _start_daemon(data_dir: str) -> "tuple[subprocess.Popen, str]":
    """Launch ``repro serve`` in its own session; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--data-dir", data_dir, "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env, start_new_session=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on "), line
    return proc, line[len("serving on "):]


@pytest.mark.slow
class TestDaemonDurability:
    def test_sigkill_restart_resumes_to_identical_bytes(self, tmp_path):
        """SIGKILL the whole daemon session mid-job; a restarted daemon
        must requeue the stale lease, resume from the store checkpoint,
        and finish with a byte-identical canonical export."""
        data_dir = str(tmp_path / "data")
        request = GridRequest(**_SLOW)
        proc, url = _start_daemon(data_dir)
        try:
            client = ServiceClient(url, timeout=10.0)
            job_id = client.submit("alice", request)["job_id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = client.status(job_id)
                if status["progress"]["done"] >= 1:
                    break
                time.sleep(0.02)
            else:  # pragma: no cover - diagnostics
                pytest.fail("job never made observable progress")
            assert status["state"] == "running"
        finally:
            # kill the daemon AND its worker subprocess, no goodbyes
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait()

        proc, url = _start_daemon(data_dir)
        try:
            client = ServiceClient(url, timeout=10.0)
            # the stale lease was requeued durably and re-leased
            status = client.watch(job_id, poll=0.05, timeout=120)
            assert status["state"] == "done"
            assert status["progress"] == {
                "done": request.total_cells(), "total": request.total_cells(),
            }
            assert client.results(job_id) == _local_export(request)
        finally:
            os.killpg(os.getpgid(proc.pid), signal.SIGTERM)
            proc.wait(timeout=30)


def _fetch_metrics(client: ServiceClient) -> "tuple[str, str]":
    """GET /metrics raw; returns (body, content_type)."""
    import urllib.request

    with urllib.request.urlopen(client.base_url + "/metrics", timeout=10) as r:
        return r.read().decode("utf-8"), r.headers.get("Content-Type")


class TestMetrics:
    def test_empty_service_zero_filled(self, idle):
        client, _ = idle
        body, content_type = _fetch_metrics(client)
        assert content_type.startswith("text/plain")
        for state in ("queued", "running", "done", "failed", "cancelled"):
            assert f'repro_service_jobs{{state="{state}"}} 0' in body
        assert 'repro_service_worker_slots{state="total"} 2' in body
        assert 'repro_service_worker_slots{state="available"} 2' in body
        assert "repro_service_queued_jobs 0" in body
        # no coordinator, so no dispatch-worker gauge
        assert "repro_service_dispatch_workers" not in body

    def test_counts_follow_the_ledger(self, idle):
        client, _ = idle  # daemon not started: jobs stay queued
        client.submit("alice", _request())
        client.submit("bob", _request())
        body, _ = _fetch_metrics(client)
        assert 'repro_service_jobs{state="queued"} 2' in body
        assert 'repro_service_tenant_active_jobs{tenant="alice"} 1' in body
        assert 'repro_service_tenant_active_jobs{tenant="bob"} 1' in body
        assert "repro_service_queued_jobs 2" in body

    def test_matches_json_api(self, idle):
        # the two faces render the same snapshots; they cannot disagree
        client, _ = idle
        client.submit("alice", _request())
        body, _ = _fetch_metrics(client)
        capacity = client.capacity()
        used = capacity["tenants"]["alice"]["used"]
        assert f'repro_service_tenant_active_jobs{{tenant="alice"}} {used}' \
            in body


class TestRemoteDispatchJobs:
    def test_remote_submit_rejected_without_coordinator(self, live):
        client, _ = live
        with pytest.raises(ServiceClientError) as info:
            client.submit("alice", _request(dispatch="remote"))
        assert info.value.status == 400
        assert "no dispatch coordinator" in info.value.message

    def test_remote_job_byte_identical_via_daemon_coordinator(self, tmp_path):
        """A daemon owning a coordinator fans a remote-dispatch job out to
        a joined worker; the export must match a plain local run."""
        service = ExperimentService(
            tmp_path / "data", workers=1, poll_interval=0.05,
            dispatch="remote",
        )
        service.start()
        server = serve_api(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=10.0)

        chost, cport = service.coordinator.address
        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.dispatch.worker",
             f"{chost}:{cport}", "--shard-dir", str(tmp_path / "shards"),
             "--name", "tw1", "--once", "--heartbeat", "0.5"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        )
        try:
            service.coordinator.wait_for_workers(1, timeout=30.0)
            body, _ = _fetch_metrics(client)
            assert "repro_service_dispatch_workers 1" in body

            request = _request(dispatch="remote")
            job_id = client.submit("alice", request)["job_id"]
            status = client.watch(job_id, poll=0.05, timeout=120)
            assert status["state"] == "done"
            # the export matches a local *serial* run of the same grid
            # (dispatch changes where cells run, never the bytes)
            local = _request()
            assert client.results(job_id, format="jsonl") == \
                _local_export(local)
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
