"""Tests for the distributed dispatch subsystem (``repro.dispatch``).

The load-bearing property is the same one the batch runner pins: remote
execution must be **byte-identical** to serial execution -- for the
streamed records, for the per-worker shard stores after merging, and
regardless of worker deaths, reconnects or completion order.  Around
that sit the protocol-level contracts (framing, EOF, oversize refusal)
and the backend-resolution rules of ``--dispatch``.

Thread workers are used for fault-free grids (cheap, deterministic);
grids that mutate process defaults (fault models) and the worker-death
path use real subprocess workers, as the CLI would.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.analysis.sweep import run_sweep_grid
from repro.dispatch import (
    DISPATCH_NAMES,
    DispatchCoordinator,
    DispatchError,
    FrameError,
    FramedSocket,
    MAX_FRAME_BYTES,
    RemoteDispatch,
    dispatch_signature,
    parse_address,
    resolve_dispatch,
)
from repro.dispatch.worker import (
    default_worker_id,
    run_worker,
    shard_store_path,
    validate_worker_id,
)
from repro.faults import FaultModel
from repro.runner import BatchRunner, GraphSpec, resolve_algorithms
from repro.store import merge_shards, render_records

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (SRC_ROOT, env.get("PYTHONPATH")) if part
    )
    return env


def _grid(sizes=(12, 16)):
    specs = tuple(GraphSpec("cycle", n, seed=1) for n in sizes) + tuple(
        GraphSpec("clique_chain", n, seed=1) for n in sizes
    )
    table = resolve_algorithms(["classical_exact", "two_approx"])
    return specs, table


class TestProtocol:
    def _pair(self):
        left, right = socket.socketpair()
        return FramedSocket(left), FramedSocket(right)

    def test_frames_round_trip_in_order(self):
        a, b = self._pair()
        frames = [
            {"type": "register", "worker": "w1"},
            {"type": "cell", "index": 3, "record": {"nested": [1, 2, 3]}},
            {"type": "heartbeat"},
        ]
        for frame in frames:
            a.send(frame)
        received = [b.recv() for _ in frames]
        assert received == frames
        a.close()
        b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        assert b.recv() is None
        b.close()

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        # A length header promising bytes that never arrive.
        left.sendall(struct.pack(">I", 64) + b'{"type":')
        left.close()
        with pytest.raises(FrameError):
            FramedSocket(right).recv()
        right.close()

    def test_oversize_length_prefix_refused(self):
        left, right = socket.socketpair()
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="cap"):
            FramedSocket(right).recv()
        left.close()
        right.close()

    def test_non_object_payload_refused(self):
        left, right = socket.socketpair()
        payload = b"[1, 2, 3]"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError, match="JSON object"):
            FramedSocket(right).recv()
        left.close()
        right.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert parse_address("my.host:1") == ("my.host", 1)
        for bad in ("nohost", ":8080", "host:", "host:zero", "host:0",
                    "host:70000"):
            with pytest.raises(ValueError):
                parse_address(bad)


class TestBackendResolution:
    def test_none_keeps_runner_or_builds_one(self):
        runner = BatchRunner(jobs=1)
        assert resolve_dispatch(None, runner=runner) is runner
        built = resolve_dispatch(None, jobs=2)
        assert isinstance(built, BatchRunner) and built.jobs == 2

    def test_inprocess_is_serial(self):
        backend = resolve_dispatch("inprocess", jobs=8)
        assert isinstance(backend, BatchRunner) and backend.jobs == 1

    def test_multiprocessing_uses_jobs(self):
        backend = resolve_dispatch("multiprocessing", jobs=3)
        assert isinstance(backend, BatchRunner) and backend.jobs == 3

    def test_bare_remote_refused(self):
        with pytest.raises(DispatchError, match="needs a coordinator"):
            resolve_dispatch("remote")

    def test_unknown_name_refused(self):
        with pytest.raises(DispatchError, match="unknown dispatch backend"):
            resolve_dispatch("carrier-pigeon")

    def test_configured_object_passes_through(self):
        backend = RemoteDispatch(address=("127.0.0.1", 1))
        assert resolve_dispatch(backend) is backend

    def test_names_are_the_cli_choices(self):
        assert DISPATCH_NAMES == ("inprocess", "multiprocessing", "remote")

    def test_signature_depends_on_keys(self):
        first = dispatch_signature(["a", "b"])
        assert first == dispatch_signature(["a", "b"])
        assert first != dispatch_signature(["a", "c"])
        assert len(first) == 16


class TestRemoteDispatchMisuse:
    def test_needs_exactly_one_target(self):
        with pytest.raises(ValueError, match="exactly one"):
            RemoteDispatch()
        with pytest.raises(ValueError, match="exactly one"):
            RemoteDispatch(
                address=("127.0.0.1", 1),
                coordinator=DispatchCoordinator(),
            )

    def test_unknown_kind_refused(self):
        with pytest.raises(ValueError, match="unknown grid kind"):
            RemoteDispatch(address=("127.0.0.1", 1), kind="banana")

    def test_arbitrary_callables_refused(self):
        backend = RemoteDispatch(address=("127.0.0.1", 1))
        with pytest.raises(DispatchError, match="only executes sweep grid"):
            backend.map(len, [((), "x")], context=({}, 0))

    def test_empty_task_list_never_connects(self):
        # port 1 is unreachable: an empty batch must not even try.
        backend = RemoteDispatch(address=("127.0.0.1", 1))
        from repro.analysis.sweep import _sweep_one_grid_cell

        assert backend.map(_sweep_one_grid_cell, [], context=({}, 0)) == []


class TestCoordinator:
    def test_wait_for_workers_times_out(self):
        coordinator = DispatchCoordinator()
        coordinator.start()
        try:
            with pytest.raises(DispatchError, match="repro worker join"):
                coordinator.wait_for_workers(1, timeout=0.2)
        finally:
            coordinator.stop()

    def test_invalid_shard_size_rejected(self):
        with pytest.raises(ValueError):
            DispatchCoordinator(shard_size=0)


class TestWorkerIds:
    def test_default_id_is_valid(self):
        assert validate_worker_id(default_worker_id())

    def test_unsafe_ids_rejected(self):
        for bad in ("", "../escape", "a/b", ".hidden", "x" * 65):
            with pytest.raises(ValueError):
                validate_worker_id(bad)

    def test_shard_path_shape(self):
        path = shard_store_path("dir", "abcd", "w1")
        assert path == os.path.join("dir", "shard-abcd-w1.jsonl")


def _run_remote(specs, table, base_seed, shard_dir, workers=2,
                shard_size=None, start_delay=0.0):
    """A full remote round-trip with in-thread workers; returns records."""
    coordinator = DispatchCoordinator(shard_size=shard_size)
    coordinator.start()
    host, port = coordinator.address
    threads = [
        threading.Thread(
            target=run_worker,
            args=(host, port, shard_dir),
            kwargs=dict(worker_id=f"w{index + 1}", once=True,
                        connect_wait=15.0, heartbeat_interval=0.5),
            daemon=True,
        )
        for index in range(workers)
    ]
    try:
        if start_delay:
            # Late workers: the grid must queue until somebody registers.
            starter = threading.Timer(
                start_delay, lambda: [t.start() for t in threads]
            )
            starter.start()
        else:
            for thread in threads:
                thread.start()
            coordinator.wait_for_workers(workers, timeout=30.0)
        records = run_sweep_grid(
            specs, table, base_seed=base_seed,
            dispatch=RemoteDispatch(coordinator=coordinator, workers=workers),
        )
    finally:
        coordinator.stop()
    for thread in threads:
        thread.join(timeout=15.0)
        assert not thread.is_alive(), "worker thread failed to exit"
    return records


class TestRemoteEndToEnd:
    def test_two_workers_byte_identical_and_merge(self, tmp_path):
        specs, table = _grid()
        serial = run_sweep_grid(specs, table, base_seed=11)
        shard_dir = str(tmp_path / "shards")
        remote = _run_remote(specs, table, 11, shard_dir, workers=2,
                             shard_size=2)
        assert render_records(remote, "jsonl") == render_records(serial, "jsonl")

        shard_paths = sorted(
            os.path.join(shard_dir, name) for name in os.listdir(shard_dir)
        )
        assert len(shard_paths) == 2  # one store shard per worker
        merged = merge_shards(shard_paths, out_path=str(tmp_path / "m.jsonl"))
        assert render_records(merged, "jsonl") == render_records(serial, "jsonl")

    def test_grid_queues_until_a_worker_joins(self, tmp_path):
        specs, table = _grid(sizes=(10,))
        serial = run_sweep_grid(specs, table, base_seed=5)
        remote = _run_remote(specs, table, 5, str(tmp_path / "shards"),
                             workers=1, start_delay=0.4)
        assert remote == serial

    def test_unreachable_coordinator_fails_loudly(self):
        specs, table = _grid(sizes=(10,))
        backend = RemoteDispatch(address=("127.0.0.1", 1),
                                 connect_timeout=0.5)
        with pytest.raises(DispatchError, match="could not reach"):
            run_sweep_grid(specs, table, base_seed=5, dispatch=backend)

    def test_dispatch_names_resolve_identically(self):
        specs, table = _grid(sizes=(10,))
        serial = run_sweep_grid(specs, table, base_seed=7)
        for name in ("inprocess", "multiprocessing"):
            assert run_sweep_grid(
                specs, table, base_seed=7, dispatch=name
            ) == serial


def _spawn_worker(address, shard_dir, name, heartbeat=0.5):
    host, port = address
    return subprocess.Popen(
        [sys.executable, "-m", "repro.dispatch.worker",
         f"{host}:{port}", "--shard-dir", str(shard_dir),
         "--name", name, "--once", "--heartbeat", str(heartbeat)],
        env=_subprocess_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )


class TestSubprocessWorkers:
    def test_fault_grid_byte_identical(self, tmp_path):
        """Fault-injected grids survive the trip: the fault model rides
        the grid description and is re-applied on the worker."""
        specs, _ = _grid(sizes=(10,))
        table = resolve_algorithms(["two_approx_retry"])
        fault = FaultModel(loss=0.05, crash=0.1, timeout=256, seed=3)
        serial = run_sweep_grid(specs, table, base_seed=9, fault_model=fault)

        coordinator = DispatchCoordinator(worker_timeout=20.0)
        coordinator.start()
        proc = _spawn_worker(coordinator.address, tmp_path / "shards", "fw1")
        try:
            coordinator.wait_for_workers(1, timeout=30.0)
            remote = run_sweep_grid(
                specs, table, base_seed=9, fault_model=fault,
                dispatch=RemoteDispatch(coordinator=coordinator),
            )
        finally:
            coordinator.stop()
            proc.wait(timeout=30)
        assert render_records(remote, "jsonl") == render_records(serial, "jsonl")

        shard_dir = tmp_path / "shards"
        merged = merge_shards(
            sorted(str(shard_dir / name) for name in os.listdir(shard_dir))
        )
        assert merged == serial

    def test_killed_worker_shard_requeued(self, tmp_path):
        """SIGKILL the only worker mid-grid: its unfinished shards must be
        requeued (the ledger's stale-lease idiom) and completed by a
        replacement, with the stream and the merge still byte-identical.
        """
        specs, table = _grid(sizes=(24, 32))
        serial = run_sweep_grid(specs, table, base_seed=11)
        shard_dir = tmp_path / "shards"

        coordinator = DispatchCoordinator(shard_size=2, worker_timeout=3.0)
        coordinator.start()
        victim = _spawn_worker(coordinator.address, shard_dir, "victim")

        outcome = {}

        def _client():
            try:
                outcome["records"] = run_sweep_grid(
                    specs, table, base_seed=11,
                    dispatch=RemoteDispatch(coordinator=coordinator),
                )
            except Exception as error:  # surfaced in the main thread
                outcome["error"] = error

        client = threading.Thread(target=_client, daemon=True)
        rescue = None
        try:
            coordinator.wait_for_workers(1, timeout=30.0)
            client.start()
            victim_shard = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if shard_dir.is_dir():
                    stores = [
                        path for path in shard_dir.iterdir()
                        if path.name.endswith("-victim.jsonl")
                        and path.stat().st_size > 200
                    ]
                    if stores:
                        victim_shard = stores[0]
                        break
                time.sleep(0.05)
            assert victim_shard is not None, "victim never started computing"
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
            rescue = _spawn_worker(coordinator.address, shard_dir, "rescue")
            client.join(timeout=120.0)
            assert not client.is_alive(), "grid never completed after requeue"
        finally:
            coordinator.stop()
            for proc in (victim, rescue):
                if proc is not None:
                    try:
                        proc.wait(timeout=15)
                    except subprocess.TimeoutExpired:
                        proc.kill()

        assert "error" not in outcome, outcome.get("error")
        remote = outcome["records"]
        assert render_records(remote, "jsonl") == render_records(serial, "jsonl")
        # the rescue worker actually computed cells...
        rescue_store = [
            path for path in shard_dir.iterdir()
            if path.name.endswith("-rescue.jsonl")
        ]
        assert rescue_store and rescue_store[0].stat().st_size > 0
        # ...and merging the victim's partial shard with the rescue's
        # dedups the overlap back to the exact serial record list.
        merged = merge_shards(
            sorted(str(path) for path in shard_dir.iterdir())
        )
        assert render_records(merged, "jsonl") == render_records(serial, "jsonl")
