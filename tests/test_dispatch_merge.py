"""Tests for the provenance-aware shard merge (``repro.store.merge``).

A distributed run's shards can arrive in every degenerate shape a fleet
of killable workers produces: empty files (registered but never leased),
duplicated task keys (a requeued shard recomputed elsewhere while the
dead worker's partial file survives), truncated tails (killed mid-append)
and stray files from *other* grids.  The merge must fold all of the
benign shapes into the exact serial record list -- byte-identical,
independent of shard order and hash randomisation -- and refuse the
corrupting ones loudly.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import threading

import pytest

import repro
from repro.analysis.sweep import run_sweep_grid
from repro.cli import main as cli_main
from repro.dispatch import DispatchCoordinator, RemoteDispatch
from repro.dispatch.worker import run_worker
from repro.runner import GraphSpec, resolve_algorithms
from repro.store import (
    ExperimentStore,
    ExperimentStoreError,
    merge_shards,
    render_records,
)

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

BASE_SEED = 11


def _grid():
    specs = tuple(GraphSpec("cycle", n, seed=1) for n in (10, 14))
    table = resolve_algorithms(["classical_exact", "two_approx"])
    return specs, table


@pytest.fixture(scope="module")
def shard_fixture(tmp_path_factory):
    """One real two-worker remote run: its shards and the serial truth."""
    root = tmp_path_factory.mktemp("dispatch-merge")
    shard_dir = root / "shards"
    specs, table = _grid()
    serial = run_sweep_grid(specs, table, base_seed=BASE_SEED)

    coordinator = DispatchCoordinator(shard_size=1)
    coordinator.start()
    host, port = coordinator.address
    threads = [
        threading.Thread(
            target=run_worker,
            args=(host, port, str(shard_dir)),
            kwargs=dict(worker_id=f"w{index + 1}", once=True,
                        connect_wait=15.0, heartbeat_interval=0.5),
            daemon=True,
        )
        for index in range(2)
    ]
    for thread in threads:
        thread.start()
    try:
        coordinator.wait_for_workers(2, timeout=30.0)
        remote = run_sweep_grid(
            specs, table, base_seed=BASE_SEED,
            dispatch=RemoteDispatch(coordinator=coordinator, workers=2),
        )
    finally:
        coordinator.stop()
    for thread in threads:
        thread.join(timeout=15.0)
    assert remote == serial
    shards = sorted(str(shard_dir / name) for name in os.listdir(shard_dir))
    assert len(shards) == 2
    return {"shards": shards, "serial": serial, "root": root}


def _serial_canon(fixture):
    return render_records(fixture["serial"], "jsonl")


class TestMergeHappyPath:
    def test_merge_matches_serial(self, shard_fixture, tmp_path):
        out = str(tmp_path / "merged.jsonl")
        merged = merge_shards(shard_fixture["shards"], out_path=out)
        assert render_records(merged, "jsonl") == _serial_canon(shard_fixture)
        # the written store round-trips to the same records, and its
        # header names the source shards
        store = ExperimentStore(out)
        assert render_records(store.load_records(), "jsonl") == \
            _serial_canon(shard_fixture)
        header = store.latest_header()
        assert sorted(header["merged_from"]) == sorted(
            os.path.basename(path) for path in shard_fixture["shards"]
        )

    def test_shard_order_is_irrelevant(self, shard_fixture):
        forward = merge_shards(shard_fixture["shards"])
        backward = merge_shards(list(reversed(shard_fixture["shards"])))
        assert forward == backward == shard_fixture["serial"]

    def test_existing_output_refused(self, shard_fixture, tmp_path):
        out = tmp_path / "merged.jsonl"
        out.write_text("occupied\n")
        with pytest.raises(ExperimentStoreError, match="already exists"):
            merge_shards(shard_fixture["shards"], out_path=str(out))


class TestMergeEdgeCases:
    def test_empty_shard_tolerated(self, shard_fixture, tmp_path):
        empty = tmp_path / "shard-empty-w9.jsonl"
        empty.write_bytes(b"")
        merged = merge_shards(shard_fixture["shards"] + [str(empty)])
        assert merged == shard_fixture["serial"]
        # a missing file behaves like an empty one (never-created shard)
        merged = merge_shards(
            shard_fixture["shards"] + [str(tmp_path / "never-written.jsonl")]
        )
        assert merged == shard_fixture["serial"]

    def test_all_empty_is_an_error(self, tmp_path):
        empty = tmp_path / "shard-a.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(ExperimentStoreError, match="nothing to merge"):
            merge_shards([str(empty)])
        with pytest.raises(ExperimentStoreError, match="no shard paths"):
            merge_shards([])

    def test_duplicate_keys_first_complete_wins(self, shard_fixture, tmp_path):
        # A full copy of one shard: every one of its keys now appears
        # twice, as after a requeue race.  The records are deterministic
        # in their keys, so dedup must reproduce the serial list exactly.
        duplicate = tmp_path / "shard-dup.jsonl"
        shutil.copy(shard_fixture["shards"][0], duplicate)
        merged = merge_shards(shard_fixture["shards"] + [str(duplicate)])
        assert render_records(merged, "jsonl") == _serial_canon(shard_fixture)

    def test_truncated_tail_tolerated(self, shard_fixture, tmp_path):
        # Kill-mid-append: drop the footer and cut the final *record*
        # line in half.  The tolerant reader silently loses that cell;
        # pairing the mutilated shard with the intact ones restores
        # completeness.
        truncated = tmp_path / "shard-trunc.jsonl"
        with open(shard_fixture["shards"][0], "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert json.loads(lines[-1])["kind"] == "finish"
        body = lines[:-1]
        assert json.loads(body[-1])["kind"] == "record"
        body[-1] = body[-1][: len(body[-1]) // 2]
        truncated.write_text("".join(body))

        intact = merge_shards([shard_fixture["shards"][0]],
                              require_complete=False)
        cut = merge_shards([str(truncated)], require_complete=False)
        assert len(cut) == len(intact) - 1  # exactly the cut cell is lost

        merged = merge_shards([str(truncated)] + shard_fixture["shards"])
        assert render_records(merged, "jsonl") == _serial_canon(shard_fixture)

    def test_missing_cells_require_allow_partial(self, shard_fixture):
        # One shard alone covers only its own cells (shard_size=1 spread
        # work across both workers): completeness must be opt-out.
        one = [shard_fixture["shards"][0]]
        with pytest.raises(ExperimentStoreError, match="not contiguous"):
            merge_shards(one)
        partial = merge_shards(one, require_complete=False)
        assert 0 < len(partial) < len(shard_fixture["serial"])
        serial_texts = render_records(shard_fixture["serial"], "jsonl").splitlines()
        for line in render_records(partial, "jsonl").splitlines():
            assert line in serial_texts

    def test_records_without_header_refused(self, shard_fixture, tmp_path):
        headerless = tmp_path / "shard-headerless.jsonl"
        with open(shard_fixture["shards"][0], "r", encoding="utf-8") as handle:
            lines = [
                line for line in handle
                if json.loads(line).get("kind") == "record"
            ]
        headerless.write_text("".join(lines))
        with pytest.raises(ExperimentStoreError, match="no run header"):
            merge_shards([str(headerless)])

    def test_mismatched_signature_refused(self, shard_fixture, tmp_path):
        # The same grid under a different seed stream: different task
        # keys, different signature -- a silent mix would corrupt.
        specs, table = _grid()
        other_dir = tmp_path / "other"
        coordinator = DispatchCoordinator()
        coordinator.start()
        host, port = coordinator.address
        thread = threading.Thread(
            target=run_worker,
            args=(host, port, str(other_dir)),
            kwargs=dict(worker_id="w1", once=True, connect_wait=15.0,
                        heartbeat_interval=0.5),
            daemon=True,
        )
        thread.start()
        try:
            coordinator.wait_for_workers(1, timeout=30.0)
            run_sweep_grid(
                specs, table, base_seed=BASE_SEED + 1,
                dispatch=RemoteDispatch(coordinator=coordinator),
            )
        finally:
            coordinator.stop()
        thread.join(timeout=15.0)
        foreign = sorted(
            str(other_dir / name) for name in os.listdir(other_dir)
        )
        with pytest.raises(ExperimentStoreError, match="different grid"):
            merge_shards(shard_fixture["shards"] + foreign)


class TestHashSeedIndependence:
    def test_merged_bytes_stable_across_hash_seeds(self, shard_fixture):
        """PYTHONHASHSEED must not leak into merged ordering or content:
        ordering is by integer grid index and keys are CRC-derived."""
        script = (
            "import sys\n"
            "from repro.store import merge_shards, render_records\n"
            "records = merge_shards(sys.argv[1:])\n"
            "sys.stdout.write(render_records(records, 'jsonl'))\n"
        )
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                part for part in (SRC_ROOT, env.get("PYTHONPATH")) if part
            )
            env["PYTHONHASHSEED"] = hash_seed
            result = subprocess.run(
                [sys.executable, "-c", script] + shard_fixture["shards"],
                env=env, capture_output=True, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].decode() == _serial_canon(shard_fixture)


class TestMergeCLI:
    def test_repro_merge_writes_canonical_store(self, shard_fixture, tmp_path,
                                                capsys):
        out = str(tmp_path / "merged.jsonl")
        code = cli_main(["merge", *shard_fixture["shards"], "--out", out])
        captured = capsys.readouterr()
        assert code == 0
        assert "merged from 2 shard(s)" in captured.err
        store = ExperimentStore(out)
        assert render_records(store.load_records(), "jsonl") == \
            _serial_canon(shard_fixture)

    def test_repro_merge_partial_needs_flag(self, shard_fixture, tmp_path,
                                            capsys):
        one = shard_fixture["shards"][0]
        assert cli_main(["merge", one]) == 2
        assert "--allow-partial" in capsys.readouterr().err
        assert cli_main(["merge", one, "--allow-partial"]) == 0

    def test_repro_merge_refuses_foreign_shards(self, shard_fixture, tmp_path,
                                                capsys):
        # a store written by a *serial* sweep is not a shard of this grid
        foreign = str(tmp_path / "foreign.jsonl")
        specs, table = _grid()
        run_sweep_grid(specs, table, base_seed=99,
                       store=ExperimentStore(foreign))
        code = cli_main(["merge", shard_fixture["shards"][0], foreign])
        assert code == 2
        assert "different grid" in capsys.readouterr().err
