"""Unit tests for the pluggable execution-engine subsystem.

Covers engine selection, the failure paths of ``Network.run`` under *both*
schedulers (strict bandwidth, round limit, protocol violations), the
self-wake API that keeps timer-driven algorithms correct under the sparse
scheduler, the transport's payload-size memo cache, and the observer
pipeline (traffic logs, stitched multi-phase recording, run logs).
"""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import run_bfs_tree
from repro.congest.errors import (
    BandwidthExceededError,
    ProtocolError,
    RoundLimitExceededError,
)
from repro.congest.message import message_size_bits
from repro.congest.network import Network
from repro.congest.node import NodeAlgorithm
from repro.engine import (
    ENGINE_NAMES,
    DenseScheduler,
    RunLogObserver,
    SparseScheduler,
    StitchedTrafficObserver,
    Transport,
    TrafficLogObserver,
    get_default_engine,
    make_scheduler,
    set_default_engine,
)
from repro.graphs import generators

ENGINES = list(ENGINE_NAMES)


def _factory(cls, *extra):
    return lambda node, net: cls(
        node, net.graph.neighbors(node), net.num_nodes, net.node_rng(node), *extra
    )


class _Chatterbox(NodeAlgorithm):
    """Sends an oversized message to trigger bandwidth enforcement."""

    def on_round(self, round_number, inbox):
        self.finished = True
        if round_number == 0:
            return self.broadcast("x" * 4096)
        return {}


class _BadSender(NodeAlgorithm):
    """Sends to a non-neighbour to trigger a protocol error."""

    def on_round(self, round_number, inbox):
        self.finished = True
        if round_number == 0 and self.node_id == 0:
            return {999: "hello"}
        return {}


class _NeverFinishes(NodeAlgorithm):
    def on_round(self, round_number, inbox):
        return self.broadcast(1)


class _SilentlyStuck(NodeAlgorithm):
    """Never finishes, never sends, never wakes: a quiescent deadlock."""

    def on_round(self, round_number, inbox):
        return {}


class _TimerNode(NodeAlgorithm):
    """Fires a broadcast at a prescribed round with no prior traffic."""

    FIRE_ROUND = 7

    def __init__(self, node_id, neighbors, num_nodes, rng):
        super().__init__(node_id, neighbors, num_nodes, rng)
        if node_id == 0:
            self.wake_at(self.FIRE_ROUND)
        else:
            self.finished = True

    def on_round(self, round_number, inbox):
        if self.node_id == 0:
            if round_number == self.FIRE_ROUND:
                self.finished = True
                self.fired_at = round_number
                return self.broadcast(("f",))
            return {}
        if inbox:
            self.received_at = round_number
        return {}

    def result(self):
        return getattr(self, "fired_at", None) or getattr(self, "received_at", None)


class _QueueDrainer(NodeAlgorithm):
    """Node 0 seeds a queue and drains one item per round via self-wakes."""

    def __init__(self, node_id, neighbors, num_nodes, rng):
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.queue = [1, 2, 3] if node_id == 0 else []
        self.received = []
        self.finished = node_id != 0

    def on_round(self, round_number, inbox):
        self.received.extend(inbox.values())
        if not self.queue:
            self.finished = True
            return {}
        item = self.queue.pop(0)
        if self.queue:
            self.wake_next_round()
        else:
            self.finished = True
        return self.broadcast(item)

    def result(self):
        return self.received


class TestEngineSelection:
    def test_default_engine_is_dense(self):
        network = Network(generators.path_graph(3))
        assert network.engine_name == "dense"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_explicit_engine(self, engine):
        network = Network(generators.path_graph(3), engine=engine)
        assert network.engine_name == engine
        assert network.engine.scheduler.name == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Network(generators.path_graph(3), engine="warp")

    def test_unknown_default_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("warp")

    def test_default_engine_toggle(self):
        previous = set_default_engine("sparse")
        try:
            assert get_default_engine() == "sparse"
            assert Network(generators.path_graph(3)).engine_name == "sparse"
        finally:
            set_default_engine(previous)
        assert get_default_engine() == previous

    def test_make_scheduler(self):
        assert isinstance(make_scheduler("dense"), DenseScheduler)
        assert isinstance(make_scheduler("sparse"), SparseScheduler)
        with pytest.raises(ValueError):
            make_scheduler("warp")


@pytest.mark.parametrize("engine", ENGINES)
class TestFailurePaths:
    """The seed's failure modes must survive the refactor, on both engines."""

    def test_strict_bandwidth_raises(self, engine):
        network = Network(
            generators.path_graph(3), strict_bandwidth=True, engine=engine
        )
        with pytest.raises(BandwidthExceededError, match="budget"):
            network.run(_factory(_Chatterbox))

    def test_non_strict_counts_violations(self, engine):
        network = Network(
            generators.path_graph(3), strict_bandwidth=False, engine=engine
        )
        result = network.run(_factory(_Chatterbox))
        assert result.metrics.bandwidth_violations >= 1
        assert result.metrics.max_edge_bits_per_round > network.bandwidth_bits

    def test_protocol_error_on_non_neighbour(self, engine):
        network = Network(generators.path_graph(3), engine=engine)
        with pytest.raises(ProtocolError, match="non-neighbour"):
            network.run(_factory(_BadSender))

    def test_round_limit_exceeded(self, engine):
        network = Network(generators.path_graph(3), engine=engine)
        with pytest.raises(RoundLimitExceededError):
            network.run(_factory(_NeverFinishes), max_rounds=5)

    def test_exact_rounds_mode(self, engine):
        network = Network(generators.path_graph(3), engine=engine)
        result = network.run(_factory(_NeverFinishes), exact_rounds=4)
        assert result.rounds == 4

    def test_bandwidth_policy_mutation_after_construction(self, engine):
        """The seed loop read the policy live each run; the engine must too."""
        network = Network(
            generators.path_graph(3), strict_bandwidth=True, engine=engine
        )
        network.strict_bandwidth = False
        result = network.run(_factory(_Chatterbox))
        assert result.metrics.bandwidth_violations >= 1
        network.strict_bandwidth = True
        network.bandwidth_bits = 10 ** 6
        clean = network.run(_factory(_Chatterbox))
        assert clean.metrics.bandwidth_violations == 0
        assert clean.metrics.bandwidth_limit_bits == 10 ** 6

    def test_traffic_recording(self, engine):
        network = Network(generators.path_graph(4), engine=engine)
        result = network.run(_factory(_NeverFinishes), exact_rounds=3)
        assert result.traffic is None
        recorded = network.run(
            _factory(_NeverFinishes), exact_rounds=3, record_traffic=True
        )
        assert recorded.traffic is not None
        assert len(recorded.traffic) == recorded.metrics.messages
        rounds = [entry[0] for entry in recorded.traffic]
        assert rounds == sorted(rounds)


class TestSelfWakes:
    def test_timer_fires_under_both_engines(self):
        outcomes = {}
        for engine in ENGINES:
            network = Network(generators.path_graph(3), engine=engine)
            result = network.run(_factory(_TimerNode))
            outcomes[engine] = (result.results, result.rounds)
        assert outcomes["dense"] == outcomes["sparse"]
        results, _ = outcomes["sparse"]
        assert results[0] == _TimerNode.FIRE_ROUND
        assert results[1] == _TimerNode.FIRE_ROUND + 1

    def test_queue_drains_under_both_engines(self):
        outcomes = {}
        for engine in ENGINES:
            network = Network(generators.path_graph(2), engine=engine)
            result = network.run(_factory(_QueueDrainer))
            outcomes[engine] = (result.results[1], result.metrics.messages)
        assert outcomes["dense"] == outcomes["sparse"]
        assert outcomes["sparse"][0] == [1, 2, 3]

    def test_sparse_deadlock_fails_fast(self):
        network = Network(generators.path_graph(3), engine="sparse")
        with pytest.raises(RoundLimitExceededError, match="wake_next_round"):
            network.run(_factory(_SilentlyStuck), max_rounds=10_000)

    def test_dense_spins_to_round_limit(self):
        network = Network(generators.path_graph(3), engine="dense")
        with pytest.raises(RoundLimitExceededError, match="did not terminate"):
            network.run(_factory(_SilentlyStuck), max_rounds=17)

    def test_wake_requests_are_drained(self):
        node = NodeAlgorithm(0, [1], 2)
        node.wake_next_round()
        node.wake_at(5)
        assert node.consume_wake_requests() == [None, 5]
        assert node.consume_wake_requests() == []

    def test_wake_requests_do_not_pile_up_under_dense(self):
        """The engine drains wake requests even when the scheduler ignores
        them, so re-arming timers cannot grow memory on long dense runs."""

        class _Rearming(NodeAlgorithm):
            def on_round(self, round_number, inbox):
                if round_number >= 6:
                    self.finished = True
                    return {}
                self.wake_at(round_number + 2)
                return {}

        network = Network(generators.path_graph(2), engine="dense")
        holder = {}

        def factory(node, net):
            algorithm = _Rearming(
                node, net.graph.neighbors(node), net.num_nodes, net.node_rng(node)
            )
            holder[node] = algorithm
            return algorithm

        network.run(factory, max_rounds=50)
        assert all(len(a._wake_requests) == 0 for a in holder.values())

    def test_nested_run_preserves_outer_scheduler_state(self):
        """A nested run on the same network must not clobber the outer
        sparse run's pending wakes."""

        class _NestedCaller(NodeAlgorithm):
            def __init__(self, node_id, neighbors, num_nodes, rng, network):
                super().__init__(node_id, neighbors, num_nodes, rng)
                self.network = network
                self.inner_messages = None
                if node_id == 0:
                    self.wake_at(2)
                    self.wake_at(5)
                else:
                    self.finished = True

            def on_round(self, round_number, inbox):
                if self.node_id != 0:
                    return {}
                if round_number == 2:
                    inner = self.network.run(_factory(_TwoPhasePing))
                    self.inner_messages = inner.metrics.messages
                if round_number == 5:
                    self.finished = True
                    self.fired = True
                return {}

            def result(self):
                return (self.inner_messages, getattr(self, "fired", False))

        network = Network(generators.path_graph(3), engine="sparse")
        result = network.run(
            lambda node, net: _NestedCaller(
                node, net.graph.neighbors(node), net.num_nodes,
                net.node_rng(node), net,
            )
        )
        assert result.results[0] == (1, True)


class TestTransportMemoCache:
    def _transport(self, n=8):
        graph = generators.path_graph(n)
        return Transport(graph, bandwidth_bits=64, strict_bandwidth=True)

    def test_measure_matches_reference(self):
        transport = self._transport()
        payloads = [None, True, 7, -7, 3.14, "abc", ("bfs", 5), [1, (2, "x")],
                    {"a": 1}]
        for payload in payloads:
            assert transport.measure(payload) == message_size_bits(payload)

    def test_repeated_payloads_hit_the_cache(self):
        transport = self._transport()
        assert transport.size_cache_entries == 0
        first = transport.measure(("bfs", 5))
        assert transport.size_cache_entries == 1
        second = transport.measure(("bfs", 5))
        assert first == second
        assert transport.size_cache_entries == 1

    def test_cache_distinguishes_equal_but_differently_typed_payloads(self):
        transport = self._transport()
        # 2 == 2.0 and hash(2) == hash(2.0), but they cost 2 vs 64 bits.
        assert transport.measure(2) == message_size_bits(2)
        assert transport.measure(2.0) == message_size_bits(2.0)
        assert transport.measure((2,)) == message_size_bits((2,))
        assert transport.measure((2.0,)) == message_size_bits((2.0,))

    def test_unsupported_payload_still_raises(self):
        transport = self._transport()
        with pytest.raises(TypeError):
            transport.measure(object())

    def test_cache_limit_respected(self):
        graph = generators.path_graph(4)
        transport = Transport(
            graph, bandwidth_bits=64, strict_bandwidth=True, size_cache_limit=2
        )
        for value in range(5):
            transport.measure(("m", value))
        assert transport.size_cache_entries == 2
        # Uncached payloads are still measured correctly.
        assert transport.measure(("m", 4)) == message_size_bits(("m", 4))

    def test_cache_limit_counts_overflows(self):
        graph = generators.path_graph(4)
        transport = Transport(
            graph, bandwidth_bits=64, strict_bandwidth=True, size_cache_limit=2
        )
        for value in range(5):
            transport.measure(("m", value))
        stats = transport.cache_stats()
        assert stats["entries"] == 2
        assert stats["misses"] == 5
        assert stats["overflows"] == 3

    def test_fast_tier_exact_on_numeric_ping_pong(self):
        # Alternating probes that compare equal across types must each get
        # their own size, even though they collide in the value tier.
        transport = self._transport()
        for _ in range(3):
            assert transport.measure((2,)) == message_size_bits((2,))
            assert transport.measure((2.0,)) == message_size_bits((2.0,))
            assert transport.measure((True,)) == message_size_bits((True,))

    def test_nested_tuples_fall_back_to_repr_tier_exactly(self):
        transport = self._transport()
        assert transport.measure((("a", 2),)) == message_size_bits((("a", 2),))
        assert transport.measure((("a", 2.0),)) == message_size_bits(
            (("a", 2.0),)
        )

    def test_unhashable_payloads_are_cached_via_repr(self):
        transport = self._transport()
        first = transport.measure([1, 2, 3])
        entries = transport.size_cache_entries
        assert first == message_size_bits([1, 2, 3])
        assert transport.measure([1, 2, 3]) == first
        assert transport.size_cache_entries == entries


class TestCacheMetricsReporting:
    def test_run_metrics_carry_cache_stats(self):
        network = Network(generators.path_graph(30), engine="sparse")
        tree = run_bfs_tree(network, 0)
        metrics = tree.metrics
        assert metrics.size_cache_misses > 0
        assert metrics.size_cache_hits > 0
        assert (
            metrics.size_cache_hits + metrics.size_cache_misses
            == metrics.messages
        )
        assert metrics.size_cache_overflows == 0

    def test_second_run_on_same_network_is_all_hits(self):
        network = Network(generators.path_graph(20), engine="sparse")
        run_bfs_tree(network, 0)
        metrics = run_bfs_tree(network, 0).metrics
        assert metrics.size_cache_misses == 0
        assert metrics.size_cache_hits == metrics.messages

    def test_cache_stats_do_not_affect_metric_equality(self):
        cold = run_bfs_tree(Network(generators.path_graph(20)), 0).metrics
        network = Network(generators.path_graph(20))
        run_bfs_tree(network, 0)
        warm = run_bfs_tree(network, 0).metrics
        assert cold.size_cache_misses != warm.size_cache_misses
        assert cold == warm  # diagnostics are excluded from equality


class _TwoPhasePing(NodeAlgorithm):
    """Node 0 pings its neighbour once; used to exercise observers."""

    def on_round(self, round_number, inbox):
        self.finished = True
        if round_number == 0 and self.node_id == 0:
            return self.send_to(self.neighbors[0], ("p",))
        return {}


class TestObservers:
    def test_persistent_observer_sees_every_run(self):
        network = Network(generators.path_graph(2))
        log = RunLogObserver()
        network.add_observer(log)
        network.run(_factory(_TwoPhasePing))
        network.run(_factory(_TwoPhasePing))
        assert log.runs == 2
        assert log.messages == 2
        assert log.rounds > 0
        network.remove_observer(log)
        network.run(_factory(_TwoPhasePing))
        assert log.runs == 2

    def test_traffic_log_observer_matches_record_traffic(self):
        network = Network(generators.path_graph(2))
        observer = TrafficLogObserver()
        network.add_observer(observer)
        result = network.run(_factory(_TwoPhasePing), record_traffic=True)
        network.remove_observer(observer)
        assert observer.traffic == result.traffic

    def test_stitched_observer_rebases_phases(self):
        network = Network(generators.path_graph(2))
        stitched = StitchedTrafficObserver()
        network.add_observer(stitched)
        network.run(_factory(_TwoPhasePing))
        network.run(_factory(_TwoPhasePing))
        network.remove_observer(stitched)
        assert len(stitched.traffic) == 2
        first, second = stitched.traffic
        # Phase 2's message is re-based to start after phase 1's last
        # traffic-carrying round (round 0), i.e. at stitched round 1.
        assert first[0] == 0
        assert second[0] == 1

    def test_persistent_observers_skip_nested_runs(self):
        """A nested run must not interleave events into cross-run
        accounting such as the stitched transcript."""

        class _NestingPing(NodeAlgorithm):
            def __init__(self, node_id, neighbors, num_nodes, rng, network):
                super().__init__(node_id, neighbors, num_nodes, rng)
                self.network = network

            def on_round(self, round_number, inbox):
                self.finished = True
                if round_number == 0 and self.node_id == 0:
                    # Simulate a sub-protocol mid-run on the same network.
                    self.network.run(_factory(_TwoPhasePing))
                    return self.send_to(self.neighbors[0], ("p",))
                return {}

        network = Network(generators.path_graph(2))
        log = RunLogObserver()
        network.add_observer(log)
        network.run(
            lambda node, net: _NestingPing(
                node, net.graph.neighbors(node), net.num_nodes,
                net.node_rng(node), net,
            )
        )
        network.remove_observer(log)
        # Only the outer run is reported: one run, one message.
        assert log.runs == 1
        assert log.messages == 1
