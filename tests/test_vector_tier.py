"""Differential tests: the numpy compute tier vs the stdlib reference.

The tier contract (:mod:`repro.tier`) is that flipping the process-wide
default between ``stdlib`` and ``numpy`` can never change a result: the
vectorized kernels (:mod:`repro.graphs.vector`) must return the same
values, in the same (dict) order, and raise the same exceptions as the
stdlib oracles -- on every generator family, on disconnected/singleton/
empty inputs, and across ``PYTHONHASHSEED`` values.  Everything here is
a comparison between the two tiers; none of the assertions encodes an
expected value of its own beyond the graph oracles' ground truth.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import tier
from repro._numpy import missing_numpy_message
from repro.analysis.sweep import run_sweep_grid
from repro.graphs import generators, vector
from repro.graphs.graph import Graph, GraphError
from repro.runner import BatchRunner, grid, resolve_algorithms

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

settings.register_profile(
    "repro_vector",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.fixture
def numpy_tier():
    """Run the test body under the numpy tier, restoring the default."""
    previous = tier.set_default_tier(tier.TIER_NUMPY)
    try:
        yield
    finally:
        tier.set_default_tier(previous)


def _stdlib_ecc_list(graph):
    """Index-ordered stdlib eccentricities (the kernels' reference)."""
    indexed = graph.compile()
    eccs = graph.all_eccentricities()
    return [eccs[label] for label in indexed.labels]


# ----------------------------------------------------------------------
# Tier registry
# ----------------------------------------------------------------------
class TestTierRegistry:
    def test_names_and_validation(self):
        assert set(tier.TIER_NAMES) == {"stdlib", "numpy"}
        assert tier.validate_tier_name("stdlib") == "stdlib"
        with pytest.raises(ValueError, match="unknown compute tier"):
            tier.validate_tier_name("cupy")

    def test_set_returns_previous_and_restores(self):
        original = tier.get_default_tier()
        flipped = "numpy" if original == "stdlib" else "stdlib"
        previous = tier.set_default_tier(flipped)
        try:
            assert previous == original
            assert tier.get_default_tier() == flipped
        finally:
            assert tier.set_default_tier(previous) == flipped
        assert tier.get_default_tier() == original

    def test_resolve(self):
        assert tier.resolve_tier(None) == tier.get_default_tier()
        assert tier.resolve_tier("numpy") == "numpy"
        with pytest.raises(ValueError):
            tier.resolve_tier("bogus")

    def test_active_numpy(self, numpy_tier):
        assert tier.active_numpy() is np
        assert tier.active_numpy("stdlib") is None

    def test_active_numpy_stdlib_default(self):
        previous = tier.set_default_tier("stdlib")
        try:
            assert tier.active_numpy() is None
        finally:
            tier.set_default_tier(previous)

    def test_missing_numpy_message_is_actionable(self):
        message = missing_numpy_message("the widget")
        assert "the widget" in message
        assert "repro[numpy]" in message
        assert "--tier stdlib" in message

    def test_set_default_rejects_unknown(self):
        before = tier.get_default_tier()
        with pytest.raises(ValueError):
            tier.set_default_tier("bogus")
        assert tier.get_default_tier() == before


# ----------------------------------------------------------------------
# Kernel differential: every generator family
# ----------------------------------------------------------------------
class TestKernelDifferential:
    @pytest.mark.parametrize("family", sorted(generators.SWEEP_FAMILIES))
    def test_all_eccentricities_matches_stdlib(self, family):
        graph = generators.family_for_sweep(family, 120, seed=5)
        expected = _stdlib_ecc_list(graph)
        got = vector.all_eccentricities_vector(graph.compile())
        assert got == expected
        assert all(isinstance(value, int) for value in got)

    @pytest.mark.parametrize("family", ["clique_chain", "random_sparse", "tree"])
    def test_dispatch_byte_identical_across_tiers(self, family):
        """The public oracle under ``--tier numpy`` vs ``--tier stdlib``:
        same values, same dict order."""
        stdlib_graph = generators.family_for_sweep(family, 600, seed=3)
        numpy_graph = generators.family_for_sweep(family, 600, seed=3)
        previous = tier.set_default_tier("stdlib")
        try:
            stdlib_eccs = stdlib_graph.compile().all_eccentricities()
            tier.set_default_tier("numpy")
            numpy_eccs = numpy_graph.compile().all_eccentricities()
        finally:
            tier.set_default_tier(previous)
        assert numpy_eccs == stdlib_eccs
        assert list(numpy_eccs) == list(stdlib_eccs)

    def test_vector_path_engages_on_clique_chain(self):
        """Guard against the dispatch silently never using the kernel:
        the n=600 sweep clique chain is in the vectorized regime."""
        graph = generators.family_for_sweep("clique_chain", 600, seed=3)
        indexed = graph.compile()
        bound = indexed._double_sweep()
        assert bound >= vector.VECTOR_MIN_BOUND
        assert bound * 8 <= graph.num_nodes
        assert indexed._all_ecc_vector_dispatch(np, bound) is not None

    def test_derived_oracles_match_across_tiers(self, numpy_tier):
        graph = generators.family_for_sweep("clique_chain", 600, seed=7)
        reference = generators.family_for_sweep("clique_chain", 600, seed=7)
        previous = tier.set_default_tier("stdlib")
        try:
            expected = (
                reference.compile().diameter(),
                reference.compile().radius(),
            )
        finally:
            tier.set_default_tier(previous)
        assert (graph.compile().diameter(), graph.compile().radius()) == expected


# ----------------------------------------------------------------------
# Batched multi-source BFS
# ----------------------------------------------------------------------
class TestMsbfsLevels:
    def test_rows_match_stdlib_bfs(self):
        graph = generators.family_for_sweep("clique_chain", 200, seed=2)
        indexed = graph.compile()
        sources = list(range(0, len(indexed.labels), 7))[:20]
        dist = vector.msbfs_levels(indexed, sources)
        assert dist.shape == (len(sources), len(indexed.labels))
        for row, source in enumerate(sources):
            reference = graph.bfs_distances(indexed.labels[source])
            expected = [reference[label] for label in indexed.labels]
            assert dist[row].tolist() == expected

    def test_unreached_nodes_are_minus_one(self):
        graph = Graph(nodes=range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        dist = vector.bfs_levels_single(graph.compile(), 0)
        assert dist.tolist() == [0, 1, -1, -1]

    def test_empty_source_block(self):
        graph = generators.path_graph(5)
        dist = vector.msbfs_levels(graph.compile(), [])
        assert dist.shape == (0, 5)

    def test_source_validation(self):
        indexed = generators.path_graph(80).compile()
        with pytest.raises(ValueError, match="at most 64 sources"):
            vector.msbfs_levels(indexed, list(range(65)))
        with pytest.raises(ValueError, match="distinct"):
            vector.msbfs_levels(indexed, [1, 1])
        with pytest.raises(IndexError):
            vector.msbfs_levels(indexed, [80])
        with pytest.raises(IndexError):
            vector.msbfs_levels(indexed, [-1])

    def test_full_block_of_64(self):
        graph = generators.family_for_sweep("random_sparse", 150, seed=9)
        indexed = graph.compile()
        sources = list(range(64))
        dist = vector.msbfs_levels(indexed, sources)
        for row, source in enumerate(sources):
            reference = graph.bfs_distances(indexed.labels[source])
            assert dist[row].tolist() == [
                reference[label] for label in indexed.labels
            ]


# ----------------------------------------------------------------------
# Edge cases: disconnected, singleton, empty
# ----------------------------------------------------------------------
class TestEdgeCases:
    def _disconnected_graph(self):
        graph = Graph(nodes=range(140))
        for node in range(69):
            graph.add_edge(node, node + 1)
        for node in range(70, 139):
            graph.add_edge(node, node + 1)
        return graph

    def test_disconnected_same_exception_both_tiers(self):
        stdlib_graph = self._disconnected_graph()
        with pytest.raises(GraphError) as stdlib_error:
            stdlib_graph.compile().all_eccentricities()
        numpy_graph = self._disconnected_graph()
        previous = tier.set_default_tier("numpy")
        try:
            with pytest.raises(GraphError) as numpy_error:
                numpy_graph.compile().all_eccentricities()
        finally:
            tier.set_default_tier(previous)
        assert str(numpy_error.value) == str(stdlib_error.value)

    def test_kernel_raises_on_disconnected(self):
        indexed = self._disconnected_graph().compile()
        with pytest.raises(GraphError, match="disconnected"):
            vector.all_eccentricities_vector(indexed)

    def test_singleton(self, numpy_tier):
        graph = Graph(nodes=[42])
        assert graph.compile().all_eccentricities() == {42: 0}
        assert vector.all_eccentricities_vector(graph.compile()) == [0]

    def test_empty(self, numpy_tier):
        graph = Graph()
        assert graph.compile().all_eccentricities() == {}
        assert vector.all_eccentricities_vector(graph.compile()) == []

    def test_fallback_invoked_verbatim(self):
        """When the bounds stall, the kernel returns the fallback's result
        untouched (the dispatcher passes the stdlib strategy)."""
        graph = generators.family_for_sweep("ring_of_cliques", 400, seed=1)
        sentinel = list(range(graph.num_nodes))
        calls = []

        def fallback():
            calls.append(True)
            return sentinel

        result = vector.all_eccentricities_vector(
            graph.compile(), fallback=fallback
        )
        if calls:
            assert result is sentinel
        else:
            assert result == _stdlib_ecc_list(graph)


# ----------------------------------------------------------------------
# Property-based comparison
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=24):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    graph = Graph(nodes=range(n))
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        graph.add_edge(node, parent)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestKernelProperties:
    @settings(settings.get_profile("repro_vector"))
    @given(connected_graphs())
    def test_eccentricities_match_stdlib(self, graph):
        assert vector.all_eccentricities_vector(graph.compile()) == (
            _stdlib_ecc_list(graph)
        )

    @settings(settings.get_profile("repro_vector"))
    @given(connected_graphs(), st.data())
    def test_msbfs_matches_stdlib_bfs(self, graph, data):
        indexed = graph.compile()
        n = len(indexed.labels)
        count = data.draw(st.integers(min_value=1, max_value=min(n, 64)))
        sources = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        dist = vector.msbfs_levels(indexed, sources)
        for row, source in enumerate(sources):
            reference = graph.bfs_distances(indexed.labels[source])
            assert dist[row].tolist() == [
                reference[label] for label in indexed.labels
            ]


# ----------------------------------------------------------------------
# Sweep records and the batch runner
# ----------------------------------------------------------------------
def _record_tuple(record):
    return (
        record.family,
        record.algorithm,
        record.num_nodes,
        record.diameter,
        record.rounds,
        record.value,
        record.correct,
        sorted(record.extra.items()),
    )


def _tier_probe(task):
    from repro.tier import get_default_tier

    return get_default_tier()


class TestTierThreading:
    def test_sweep_records_identical_across_tiers(self):
        specs = grid(["clique_chain", "random_sparse"], [24], seed=9)
        algorithms = resolve_algorithms(["classical_exact", "two_approx"])
        previous = tier.set_default_tier("stdlib")
        try:
            stdlib_records = run_sweep_grid(specs, algorithms, base_seed=5)
            tier.set_default_tier("numpy")
            numpy_records = run_sweep_grid(specs, algorithms, base_seed=5)
        finally:
            tier.set_default_tier(previous)
        assert [_record_tuple(r) for r in stdlib_records] == [
            _record_tuple(r) for r in numpy_records
        ]

    def test_batch_workers_inherit_tier_default(self):
        previous = tier.set_default_tier("numpy")
        try:
            runner = BatchRunner(jobs=2)
            seen = runner.map(_tier_probe, [1, 2, 3, 4])
        finally:
            tier.set_default_tier(previous)
        assert seen == ["numpy"] * 4


# ----------------------------------------------------------------------
# Hash-seed independence of the numpy tier
# ----------------------------------------------------------------------
_HASHSEED_SCRIPT = r"""
import json
import sys

from repro.graphs.graph import Graph
from repro.tier import active_numpy, set_default_tier

# A tuple-labelled clique chain big enough for the vectorized regime
# (25 cliques of 24 nodes: n=600; distinct entry/exit bridge nodes per
# clique keep the diameter ~2 hops per clique, inside [48, n/8]).
graph = Graph()
cliques = 25
size = 24
for c in range(cliques):
    members = [("clique", c, i) for i in range(size)]
    for a in range(size):
        for b in range(a + 1, size):
            graph.add_edge(members[a], members[b])
    if c:
        graph.add_edge(("clique", c - 1, 1), ("clique", c, 0))

set_default_tier("numpy")
assert active_numpy() is not None
indexed = graph.compile()
bound = indexed._double_sweep()
assert bound >= 48 and bound * 8 <= graph.num_nodes, bound
eccs = indexed.all_eccentricities()
out = {
    "hash_randomised": sys.flags.hash_randomization,
    "eccentricities": [[repr(node), value] for node, value in eccs.items()],
}
print(json.dumps(out, sort_keys=True))
"""


def _run_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


def test_numpy_tier_identical_across_hash_seeds():
    first = _run_with_hash_seed("1")
    second = _run_with_hash_seed("4242")
    assert first["hash_randomised"] == second["hash_randomised"] == 1
    assert first["eccentricities"] == second["eccentricities"]
