"""Tests for the Theorem-11 path network and block-staircase simulation."""

from __future__ import annotations

import math

import pytest

from repro.lowerbounds.disjointness import (
    disjointness,
    random_disjoint_instance,
    random_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.simulation import (
    PathNetworkProtocol,
    PathNodeProcess,
    make_disjointness_path_protocol,
    run_path_protocol_directly,
    simulate_path_protocol_as_two_party,
)


class TestDirectExecution:
    def test_disjointness_protocol_computes_correctly(self):
        for seed in range(5):
            x, y = random_instance(25, seed=seed)
            protocol = make_disjointness_path_protocol(x, y, path_length=3)
            alice_out, bob_out = run_path_protocol_directly(protocol)
            assert bob_out == disjointness(x, y)
            assert alice_out == disjointness(x, y)

    def test_works_for_single_relay(self):
        x, y = random_intersecting_instance(10, seed=1)
        protocol = make_disjointness_path_protocol(x, y, path_length=1)
        alice_out, bob_out = run_path_protocol_directly(protocol)
        assert alice_out == bob_out == 0

    def test_rounds_scale_with_k_plus_d(self):
        x, y = random_disjoint_instance(60, seed=0)
        shallow = make_disjointness_path_protocol(x, y, path_length=2)
        deep = make_disjointness_path_protocol(x, y, path_length=20)
        assert deep.rounds > shallow.rounds
        assert deep.rounds <= 2 * (60 + 4 * 22)

    def test_input_length_mismatch(self):
        with pytest.raises(ValueError):
            make_disjointness_path_protocol([1, 0], [1], path_length=2)

    def test_bandwidth_too_small(self):
        with pytest.raises(ValueError):
            make_disjointness_path_protocol([1], [1], path_length=2, bandwidth_bits=8)


class TestStaircaseSimulation:
    def test_outputs_match_direct_execution(self):
        for seed in range(4):
            for d in (1, 2, 4):
                x, y = random_instance(20, seed=seed)
                protocol = make_disjointness_path_protocol(x, y, path_length=d)
                direct = run_path_protocol_directly(protocol)
                simulated = simulate_path_protocol_as_two_party(protocol)
                assert (simulated.alice_output, simulated.bob_output) == direct
                assert simulated.transcript.output == disjointness(x, y)

    def test_message_count_scales_as_r_over_d(self):
        """Theorem 11: the number of two-party messages is O(r / d)."""
        x, y = random_disjoint_instance(40, seed=3)
        for d in (2, 4, 8):
            protocol = make_disjointness_path_protocol(x, y, path_length=d)
            result = simulate_path_protocol_as_two_party(protocol)
            assert result.num_messages <= 2 * math.ceil(result.distributed_rounds / d) + 3

    def test_larger_d_means_fewer_messages_for_same_rounds(self):
        x, y = random_disjoint_instance(80, seed=2)
        small_d = simulate_path_protocol_as_two_party(
            make_disjointness_path_protocol(x, y, path_length=2)
        )
        large_d = simulate_path_protocol_as_two_party(
            make_disjointness_path_protocol(x, y, path_length=10)
        )
        assert large_d.num_messages < small_d.num_messages

    def test_communication_bounded_by_r_times_bw_plus_s(self):
        """Theorem 11: total communication is O(r (bw + s))."""
        x, y = random_instance(50, seed=7)
        for d in (2, 5):
            protocol = make_disjointness_path_protocol(x, y, path_length=d)
            result = simulate_path_protocol_as_two_party(protocol)
            r = result.distributed_rounds
            bw = protocol.bandwidth_bits
            s = result.max_relay_memory_bits
            assert result.total_communication_bits <= 4 * r * (bw + s) + 4 * (bw + s)

    def test_handoff_size_is_linear_in_d(self):
        x, y = random_instance(30, seed=4)
        protocol = make_disjointness_path_protocol(x, y, path_length=6)
        result = simulate_path_protocol_as_two_party(protocol)
        bw = protocol.bandwidth_bits
        s = result.max_relay_memory_bits
        assert result.transcript.max_message_bits <= 3 * 6 * (bw + s)

    def test_relay_memory_is_bounded_by_bandwidth(self):
        x, y = random_instance(60, seed=5)
        protocol = make_disjointness_path_protocol(x, y, path_length=4)
        result = simulate_path_protocol_as_two_party(protocol)
        assert result.max_relay_memory_bits <= 4 * protocol.bandwidth_bits

    def test_invalid_protocol_parameters(self):
        with pytest.raises(ValueError):
            PathNetworkProtocol(
                path_length=0, rounds=4,
                alice=PathNodeProcess(), bob=PathNodeProcess(), relays=[],
                bandwidth_bits=32,
            )
        with pytest.raises(ValueError):
            PathNetworkProtocol(
                path_length=2, rounds=4,
                alice=PathNodeProcess(), bob=PathNodeProcess(),
                relays=[PathNodeProcess()],
                bandwidth_bits=32,
            )
