"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_diameter_defaults(self):
        args = build_parser().parse_args(["diameter"])
        assert args.family == "clique_chain"
        assert args.nodes == 24
        assert args.oracle_mode == "reference"

    def test_table1_requires_nodes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1"])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diameter", "--family", "bogus"])


class TestCommands:
    def test_diameter_command_runs_and_agrees(self, capsys):
        exit_code = main(["diameter", "--family", "clique_chain", "--nodes", "12",
                          "--seed", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "classical exact" in output
        assert "quantum exact" in output
        assert "true diameter" in output

    def test_diameter_command_controlled_family(self, capsys):
        exit_code = main(["diameter", "--family", "controlled", "--nodes", "16",
                          "--diameter", "4", "--seed", "2"])
        assert exit_code == 0
        assert "true diameter=4" in capsys.readouterr().out

    def test_approx_command_classical_only(self, capsys):
        exit_code = main(["approx", "--family", "cycle", "--nodes", "14", "--seed", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "2-approximation" in output
        assert "3/2-approx" in output
        assert "Theorem 4" not in output

    def test_approx_command_with_quantum(self, capsys):
        exit_code = main(["approx", "--family", "star", "--nodes", "15",
                          "--quantum", "--seed", "4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Theorem 4" in output

    def test_table1_command(self, capsys):
        exit_code = main(["table1", "--nodes", "10000", "--diameter", "20"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Exact computation" in output
        assert "3/2-approximation" in output

    def test_table1_default_diameter_and_memory(self, capsys):
        exit_code = main(["table1", "--nodes", "4096", "--memory", "8"])
        assert exit_code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_sweep_command_serial(self, capsys):
        exit_code = main([
            "sweep", "--families", "cycle", "--sizes", "10,12",
            "--algorithms", "classical_exact,two_approx",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "cycle[10]" in output and "cycle[12]" in output
        assert "classical_exact" in output and "two_approx" in output

    def test_sweep_command_parallel_matches_serial(self, capsys):
        argv = ["sweep", "--families", "cycle,path", "--sizes", "10,12",
                "--algorithms", "classical_exact"]
        assert main(argv) == 0
        serial_output = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert serial_output == parallel_output

    def test_sweep_command_rejects_unknown_family(self, capsys):
        exit_code = main(["sweep", "--families", "bogus"])
        assert exit_code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_sweep_command_controlled_requires_diameter(self, capsys):
        exit_code = main(["sweep", "--families", "controlled", "--sizes", "12"])
        assert exit_code == 2
        assert "--diameter" in capsys.readouterr().err
        assert main(["sweep", "--families", "controlled", "--sizes", "12",
                     "--diameter", "4", "--algorithms", "two_approx"]) == 0

    def test_sweep_command_rejects_unknown_algorithm(self, capsys):
        exit_code = main(["sweep", "--algorithms", "bogus"])
        assert exit_code == 2
        assert "unknown sweep algorithm" in capsys.readouterr().err
