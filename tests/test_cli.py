"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, main
from repro.store import ExperimentStore


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_diameter_defaults(self):
        args = build_parser().parse_args(["diameter"])
        assert args.family == "clique_chain"
        assert args.nodes == 24
        assert args.oracle_mode == "reference"

    def test_table1_requires_nodes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1"])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diameter", "--family", "bogus"])


class TestCommands:
    def test_diameter_command_runs_and_agrees(self, capsys):
        exit_code = main(["diameter", "--family", "clique_chain", "--nodes", "12",
                          "--seed", "1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "classical exact" in output
        assert "quantum exact" in output
        assert "true diameter" in output

    def test_diameter_command_controlled_family(self, capsys):
        exit_code = main(["diameter", "--family", "controlled", "--nodes", "16",
                          "--diameter", "4", "--seed", "2"])
        assert exit_code == 0
        assert "true diameter=4" in capsys.readouterr().out

    def test_approx_command_classical_only(self, capsys):
        exit_code = main(["approx", "--family", "cycle", "--nodes", "14", "--seed", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "2-approximation" in output
        assert "3/2-approx" in output
        assert "Theorem 4" not in output

    def test_approx_command_with_quantum(self, capsys):
        exit_code = main(["approx", "--family", "star", "--nodes", "15",
                          "--quantum", "--seed", "4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Theorem 4" in output

    def test_table1_command(self, capsys):
        exit_code = main(["table1", "--nodes", "10000", "--diameter", "20"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Exact computation" in output
        assert "3/2-approximation" in output

    def test_table1_default_diameter_and_memory(self, capsys):
        exit_code = main(["table1", "--nodes", "4096", "--memory", "8"])
        assert exit_code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_sweep_command_serial(self, capsys):
        exit_code = main([
            "sweep", "--families", "cycle", "--sizes", "10,12",
            "--algorithms", "classical_exact,two_approx",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "cycle[10]" in output and "cycle[12]" in output
        assert "classical_exact" in output and "two_approx" in output

    def test_sweep_command_parallel_matches_serial(self, capsys):
        argv = ["sweep", "--families", "cycle,path", "--sizes", "10,12",
                "--algorithms", "classical_exact"]
        assert main(argv) == 0
        serial_output = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert serial_output == parallel_output

    def test_sweep_command_rejects_unknown_family(self, capsys):
        exit_code = main(["sweep", "--families", "bogus"])
        assert exit_code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_sweep_command_controlled_requires_diameter(self, capsys):
        exit_code = main(["sweep", "--families", "controlled", "--sizes", "12"])
        assert exit_code == 2
        assert "--diameter" in capsys.readouterr().err
        assert main(["sweep", "--families", "controlled", "--sizes", "12",
                     "--diameter", "4", "--algorithms", "two_approx"]) == 0

    def test_sweep_command_rejects_unknown_algorithm(self, capsys):
        exit_code = main(["sweep", "--algorithms", "bogus"])
        assert exit_code == 2
        assert "unknown sweep algorithm" in capsys.readouterr().err

    def test_sweep_command_rejects_malformed_sizes(self, capsys):
        exit_code = main(["sweep", "--families", "cycle", "--sizes", "24,abc"])
        assert exit_code == 2
        assert "invalid literal" in capsys.readouterr().err

    def test_sweep_command_new_families_run(self, capsys):
        exit_code = main([
            "sweep", "--families", "ring_of_cliques,random_regular,preferential",
            "--sizes", "16", "--algorithms", "two_approx", "--seed", "1",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ring_of_cliques" in output
        assert "random_regular" in output
        assert "preferential" in output

    def test_sweep_seed_streams_are_independent(self, capsys, monkeypatch):
        # Regression: --seed used to be passed verbatim as both the graph
        # construction seed and the algorithm base seed, correlating the
        # two randomness streams.  Execution flows through the shared
        # grid-request path, so the interception point lives there.
        import repro.service.gridspec as gridspec

        captured = {}

        def fake_run_sweep_grid(specs, algorithms, runner=None, base_seed=0,
                                store=None, resume=False, fault_model=None,
                                progress=None, should_stop=None,
                                dispatch=None):
            captured["graph_seed"] = specs[0].seed
            captured["base_seed"] = base_seed
            return []

        monkeypatch.setattr(gridspec, "run_sweep_grid", fake_run_sweep_grid)
        assert main(["sweep", "--families", "cycle", "--sizes", "10",
                     "--seed", "7"]) == 0
        assert captured["graph_seed"] != captured["base_seed"]
        assert captured["graph_seed"] != 7
        assert captured["base_seed"] != 7
        # ... and both streams derive deterministically from --seed.
        first = dict(captured)
        assert main(["sweep", "--families", "cycle", "--sizes", "10",
                     "--seed", "7"]) == 0
        assert captured == first


class TestStoreCommands:
    SWEEP = ["sweep", "--families", "cycle", "--sizes", "10,12",
             "--algorithms", "classical_exact,two_approx", "--seed", "3"]

    def test_sweep_resume_requires_out(self, capsys):
        exit_code = main(["sweep", "--resume"])
        assert exit_code == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_sweep_out_persists_and_exports(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(self.SWEEP + ["--out", str(out)]) == 0
        table = capsys.readouterr().out
        store = ExperimentStore(out)
        assert len(store.load_records()) == 4
        assert store.latest_header()["algorithms"] == [
            "classical_exact", "two_approx",
        ]

        # table export reproduces the sweep's printed table
        assert main(["export", "--store", str(out)]) == 0
        assert capsys.readouterr().out == table

        # csv export to a file
        csv_path = tmp_path / "run.csv"
        assert main(["export", "--store", str(out), "--format", "csv",
                     "--out", str(csv_path)]) == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("family,algorithm")
        assert len(lines) == 5

        # json export parses
        assert main(["export", "--store", str(out), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4

    def test_sweep_out_refuses_existing_store_without_resume(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(self.SWEEP + ["--out", str(out)]) == 0
        assert main(self.SWEEP + ["--out", str(out)]) == 2
        assert "already holds" in capsys.readouterr().err

    def test_sweep_resume_completes_and_matches(self, capsys, tmp_path):
        out = tmp_path / "run.jsonl"
        assert main(self.SWEEP + ["--out", str(out)]) == 0
        first = capsys.readouterr().out
        assert main(self.SWEEP + ["--out", str(out), "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_export_missing_store(self, capsys, tmp_path):
        exit_code = main(["export", "--store", str(tmp_path / "nope.jsonl")])
        assert exit_code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_export_empty_store(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        exit_code = main(["export", "--store", str(empty)])
        assert exit_code == 2
        assert "no records" in capsys.readouterr().err


class TestTierFlag:
    def test_tier_option_parsed(self):
        args = build_parser().parse_args(["diameter", "--tier", "numpy"])
        assert args.tier == "numpy"
        args = build_parser().parse_args(["sweep", "--tier", "stdlib"])
        assert args.tier == "stdlib"
        args = build_parser().parse_args(["quantum", "--tier", "numpy"])
        assert args.tier == "numpy"

    def test_unknown_tier_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diameter", "--tier", "cupy"])

    def test_diameter_output_identical_across_tiers(self, capsys):
        pytest.importorskip("numpy")
        from repro.tier import get_default_tier

        command = ["diameter", "--family", "clique_chain", "--nodes", "12",
                   "--seed", "1"]
        default_before = get_default_tier()
        assert main(command) == 0
        stdlib_output = capsys.readouterr().out
        assert main(command + ["--tier", "numpy"]) == 0
        assert capsys.readouterr().out == stdlib_output
        # the flag must not leak into the process default
        assert get_default_tier() == default_before

    def test_sweep_output_identical_across_tiers(self, capsys):
        pytest.importorskip("numpy")
        command = ["sweep", "--families", "clique_chain", "--sizes", "10,12",
                   "--algorithms", "classical_exact", "--seed", "3"]
        assert main(command) == 0
        stdlib_output = capsys.readouterr().out
        assert main(command + ["--tier", "numpy"]) == 0
        assert capsys.readouterr().out == stdlib_output


#: A stub harness: fast, deterministic, controlled via an env variable.
_STUB_HARNESS = """\
import os


def run_benchmark(smoke=False):
    return {"headline_speedup": float(os.environ.get("STUB_SPEEDUP", "4.0")),
            "smoke": smoke}
"""


class TestBenchCommand:
    def _bench_dir(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_engine_overhead.py").write_text(_STUB_HARNESS)
        return bench_dir

    def test_missing_dir(self, capsys, tmp_path):
        exit_code = main(["bench", "--dir", str(tmp_path / "nope")])
        assert exit_code == 2
        assert "not found" in capsys.readouterr().err

    def test_update_then_compare_ok(self, capsys, tmp_path, monkeypatch):
        bench_dir = self._bench_dir(tmp_path)
        baselines = tmp_path / "BENCH_baselines.json"
        monkeypatch.setenv("STUB_SPEEDUP", "4.0")
        assert main(["bench", "--smoke", "--dir", str(bench_dir),
                     "--baselines", str(baselines), "--update"]) == 0
        capsys.readouterr()
        payload = json.loads(baselines.read_text())
        assert payload["smoke"]["engine"] == 4.0

        # within tolerance: 3.1 > 4.0 * 0.75
        monkeypatch.setenv("STUB_SPEEDUP", "3.1")
        assert main(["bench", "--smoke", "--dir", str(bench_dir),
                     "--baselines", str(baselines)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_fails(self, capsys, tmp_path, monkeypatch):
        bench_dir = self._bench_dir(tmp_path)
        baselines = tmp_path / "BENCH_baselines.json"
        monkeypatch.setenv("STUB_SPEEDUP", "4.0")
        assert main(["bench", "--smoke", "--dir", str(bench_dir),
                     "--baselines", str(baselines), "--update"]) == 0
        capsys.readouterr()
        monkeypatch.setenv("STUB_SPEEDUP", "2.9")  # < 4.0 * 0.75
        assert main(["bench", "--smoke", "--dir", str(bench_dir),
                     "--baselines", str(baselines)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regressed" in captured.err

    def test_no_baseline_passes(self, capsys, tmp_path, monkeypatch):
        bench_dir = self._bench_dir(tmp_path)
        monkeypatch.setenv("STUB_SPEEDUP", "1.0")
        assert main(["bench", "--smoke", "--dir", str(bench_dir),
                     "--baselines", str(tmp_path / "none.json")]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_full_and_smoke_baselines_are_separate(self, tmp_path, monkeypatch):
        bench_dir = self._bench_dir(tmp_path)
        baselines = tmp_path / "BENCH_baselines.json"
        monkeypatch.setenv("STUB_SPEEDUP", "4.0")
        assert main(["bench", "--smoke", "--dir", str(bench_dir),
                     "--baselines", str(baselines), "--update"]) == 0
        monkeypatch.setenv("STUB_SPEEDUP", "9.0")
        assert main(["bench", "--dir", str(bench_dir),
                     "--baselines", str(baselines), "--update"]) == 0
        payload = json.loads(baselines.read_text())
        assert payload["smoke"]["engine"] == 4.0
        assert payload["full"]["engine"] == 9.0
