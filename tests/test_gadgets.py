"""Tests for the lower-bound gadget graphs (Figures 4 and 8, Theorems 8-9)."""

from __future__ import annotations

import itertools

import pytest

from repro.graphs.gadgets_achk import ACHKGadget
from repro.graphs.gadgets_hw12 import HW12Gadget
from repro.graphs.gadgets_path import PathSubdividedGadget
from repro.lowerbounds.disjointness import (
    disjointness,
    random_disjoint_instance,
    random_intersecting_instance,
)


class TestHW12Gadget:
    def test_parameters(self):
        gadget = HW12Gadget(4)
        assert gadget.num_nodes == 18
        assert gadget.input_length == 16
        assert gadget.cut_size == 9
        assert gadget.diameter_if_disjoint == 2
        assert gadget.diameter_if_intersecting == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            HW12Gadget(0)

    def test_base_graph_structure(self):
        gadget = HW12Gadget(3)
        graph = gadget.base_graph()
        assert graph.num_nodes == gadget.num_nodes
        assert graph.is_connected()
        # Cut edges are present.
        for u, v in gadget.cut_edges():
            assert graph.has_edge(u, v)
        # The four cliques are present.
        assert graph.has_edge(("l", 0), ("l", 2))
        assert graph.has_edge(("rp", 1), ("rp", 2))

    def test_sides_partition_nodes(self):
        gadget = HW12Gadget(3)
        left = set(gadget.left_nodes())
        right = set(gadget.right_nodes())
        assert not left & right
        assert len(left | right) == gadget.num_nodes

    def test_cut_edges_cross_sides(self):
        gadget = HW12Gadget(3)
        left = set(gadget.left_nodes())
        right = set(gadget.right_nodes())
        for u, v in gadget.cut_edges():
            assert (u in left) != (v in left)
            assert (u in right) != (v in right)

    def test_input_length_validation(self):
        gadget = HW12Gadget(2)
        with pytest.raises(ValueError):
            gadget.graph_for_inputs([0, 1], [0] * 4)
        with pytest.raises(ValueError):
            gadget.graph_for_inputs([0, 2, 0, 0], [0] * 4)

    def test_diameter_two_when_disjoint_exhaustive(self):
        gadget = HW12Gadget(2)
        k = gadget.input_length
        for x in itertools.product([0, 1], repeat=k):
            for y in itertools.product([0, 1], repeat=k):
                if disjointness(x, y) == 1:
                    graph = gadget.graph_for_inputs(x, y)
                    assert graph.diameter() == 2

    def test_diameter_three_when_intersecting_sampled(self):
        gadget = HW12Gadget(3)
        for seed in range(10):
            x, y = random_intersecting_instance(gadget.input_length, seed=seed)
            graph = gadget.graph_for_inputs(x, y)
            assert graph.diameter() == 3
            assert gadget.predicted_diameter(x, y) == 3

    def test_witness_pair_distance(self):
        gadget = HW12Gadget(3)
        x = [0] * 9
        y = [0] * 9
        x[4] = 1  # (i, j) = (1, 1)
        y[4] = 1
        graph = gadget.graph_for_inputs(x, y)
        assert graph.distance(("l", 1), ("rp", 1)) == 3
        assert graph.distance(("lp", 1), ("r", 1)) == 3

    def test_all_zero_inputs_give_diameter_two(self):
        gadget = HW12Gadget(4)
        zeros = [0] * gadget.input_length
        assert gadget.graph_for_inputs(zeros, zeros).diameter() == 2


class TestACHKGadget:
    def test_parameters_scale(self):
        gadget = ACHKGadget(16)
        assert gadget.num_index_bits == 4
        assert gadget.cut_size == 9
        assert gadget.num_nodes == 2 * 16 + 4 * 4 + 2

    def test_cut_is_logarithmic(self):
        small = ACHKGadget(8)
        large = ACHKGadget(64)
        assert large.cut_size - small.cut_size == 2 * (6 - 3)
        assert large.cut_size <= 2 * 7 + 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ACHKGadget(0)

    def test_base_graph_connected(self):
        gadget = ACHKGadget(6)
        graph = gadget.base_graph()
        assert graph.is_connected()
        assert graph.num_nodes == gadget.num_nodes

    def test_exhaustive_small_instances(self):
        gadget = ACHKGadget(3)
        for x in itertools.product([0, 1], repeat=3):
            for y in itertools.product([0, 1], repeat=3):
                graph = gadget.graph_for_inputs(x, y)
                diameter = graph.diameter()
                if disjointness(x, y) == 1:
                    assert diameter <= 4
                else:
                    assert diameter == 5

    def test_sampled_medium_instances(self):
        gadget = ACHKGadget(10)
        for seed in range(6):
            x, y = random_disjoint_instance(10, seed=seed)
            assert gadget.graph_for_inputs(x, y).diameter() <= 4
            x, y = random_intersecting_instance(10, seed=seed)
            assert gadget.graph_for_inputs(x, y).diameter() == 5

    def test_witness_pair(self):
        gadget = ACHKGadget(5)
        x, y = random_intersecting_instance(5, seed=3)
        u, v = gadget.witness_pair(x, y)
        graph = gadget.graph_for_inputs(x, y)
        assert graph.distance(u, v) == 5

    def test_witness_pair_raises_when_disjoint(self):
        gadget = ACHKGadget(5)
        x, y = random_disjoint_instance(5, seed=3)
        with pytest.raises(ValueError):
            gadget.witness_pair(x, y)

    def test_single_index_gadget(self):
        gadget = ACHKGadget(1)
        assert gadget.graph_for_inputs([1], [1]).diameter() == 5
        assert gadget.graph_for_inputs([1], [0]).diameter() <= 4
        assert gadget.graph_for_inputs([0], [0]).diameter() <= 4


class TestPathSubdividedGadget:
    def test_node_count(self):
        base = ACHKGadget(4)
        gadget = PathSubdividedGadget(base, path_length=5)
        assert gadget.num_nodes == base.num_nodes + base.cut_size * 5
        x, y = random_disjoint_instance(4, seed=0)
        graph = gadget.graph_for_inputs(x, y)
        assert graph.num_nodes == gadget.num_nodes
        assert graph.is_connected()

    def test_invalid_path_length(self):
        with pytest.raises(ValueError):
            PathSubdividedGadget(ACHKGadget(4), 0)

    def test_diameter_shift_intersecting(self):
        base = ACHKGadget(4)
        for d in (3, 4, 6):
            gadget = PathSubdividedGadget(base, d)
            x, y = random_intersecting_instance(4, seed=d)
            graph = gadget.graph_for_inputs(x, y)
            assert graph.diameter() == d + 5

    def test_diameter_shift_disjoint(self):
        base = ACHKGadget(4)
        for d in (3, 5):
            gadget = PathSubdividedGadget(base, d)
            x, y = random_disjoint_instance(4, seed=d)
            graph = gadget.graph_for_inputs(x, y)
            assert graph.diameter() <= d + 4

    def test_layers_partition_intermediate_nodes(self):
        gadget = PathSubdividedGadget(ACHKGadget(3), 4)
        ownership = gadget.ownership()
        x, y = random_disjoint_instance(3, seed=1)
        graph = gadget.graph_for_inputs(x, y)
        assert set(ownership) == set(graph.nodes())
        layer_sizes = {
            layer: len(gadget.layer_nodes(layer)) for layer in range(1, 5)
        }
        assert all(size == gadget.cut_size for size in layer_sizes.values())

    def test_layer_bounds_checked(self):
        gadget = PathSubdividedGadget(ACHKGadget(3), 2)
        with pytest.raises(ValueError):
            gadget.layer_nodes(0)
        with pytest.raises(ValueError):
            gadget.layer_nodes(3)

    def test_works_with_hw12_base(self):
        gadget = PathSubdividedGadget(HW12Gadget(2), 3)
        x, y = random_intersecting_instance(4, seed=2)
        graph = gadget.graph_for_inputs(x, y)
        assert graph.diameter() == 3 + 3
        x, y = random_disjoint_instance(4, seed=2)
        assert gadget.graph_for_inputs(x, y).diameter() <= 3 + 2
