"""Tests for the paper's algorithms: Theorem 1 and Theorem 4, plus coverage
(Lemma 1) and the Table-1 complexity formulas."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.bfs import run_bfs_tree
from repro.congest.network import Network
from repro.core.approx_diameter import (
    default_s_parameter,
    quantum_three_halves_diameter,
)
from repro.core.complexity import (
    classical_approx_upper,
    classical_exact_upper,
    quantum_approx_upper,
    quantum_exact_upper,
    quantum_exact_lower_bounded_memory,
    table1_rows,
)
from repro.core.coverage import (
    coverage_probability,
    empirical_optimum_mass,
    popt_lower_bound,
    window_set,
)
from repro.core.exact_diameter import (
    ExactDiameterProblem,
    quantum_exact_diameter,
)
from repro.graphs import generators


class TestCoverageLemma:
    def test_window_contains_start(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        d = max(1, tree.depth)
        for u0 in list(small_graph.nodes())[:5]:
            assert u0 in window_set(tree, u0, 2 * d)

    def test_window_size_bounded(self, network_factory):
        graph = generators.path_graph(20)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        window = window_set(tree, 10, 6)
        assert len(window) <= 7  # at most window + 1 nodes

    def test_lemma1_coverage_bound(self, small_graph, network_factory):
        """Lemma 1: Pr_{u0}[v in S(u0)] >= d / (2 n) for every v."""
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        d = max(1, tree.depth)
        n = small_graph.num_nodes
        for target in small_graph.nodes():
            probability = coverage_probability(tree, target, 2 * d)
            assert probability >= d / (2.0 * n) - 1e-12

    def test_popt_lower_bound_formula(self):
        assert popt_lower_bound(100, 10) == pytest.approx(0.05)
        assert popt_lower_bound(4, 100) == 1.0
        with pytest.raises(ValueError):
            popt_lower_bound(0, 1)
        with pytest.raises(ValueError):
            popt_lower_bound(5, 0)

    def test_empirical_mass_dominates_bound(self, small_graph, network_factory):
        """The true P_opt is at least the Lemma-1 lower bound."""
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        d = max(1, tree.depth)
        mass = empirical_optimum_mass(small_graph, tree, 2 * d)
        assert mass >= popt_lower_bound(small_graph.num_nodes, d) - 1e-12


class TestQuantumExactDiameter:
    def test_reference_and_congest_oracles_agree(self, network_factory):
        graph = generators.clique_chain(3, 4)
        congest = quantum_exact_diameter(
            network_factory(graph), oracle_mode="congest", seed=9
        )
        reference = quantum_exact_diameter(
            network_factory(graph), oracle_mode="reference", seed=9
        )
        assert congest.diameter == reference.diameter
        assert congest.rounds == reference.rounds
        assert congest.counts.evaluation_calls == reference.counts.evaluation_calls

    def test_correct_on_small_graphs(self, small_graph):
        result = quantum_exact_diameter(small_graph, oracle_mode="reference", seed=2)
        assert result.diameter == small_graph.diameter()

    def test_simple_variant_correct(self, small_graph):
        result = quantum_exact_diameter(
            small_graph, variant="simple", oracle_mode="reference", seed=2
        )
        assert result.diameter == small_graph.diameter()

    def test_success_rate_over_seeds(self):
        graph = generators.random_connected_gnp(24, 0.12, seed=6)
        true_diameter = graph.diameter()
        hits = sum(
            quantum_exact_diameter(graph, oracle_mode="reference", seed=seed).diameter
            == true_diameter
            for seed in range(12)
        )
        assert hits >= 9

    def test_window_parameter_is_leader_eccentricity(self):
        graph = generators.path_graph(15)
        result = quantum_exact_diameter(graph, oracle_mode="reference", seed=1)
        assert result.window_parameter == graph.eccentricity(result.leader)
        assert result.window_parameter <= graph.diameter() <= 2 * result.window_parameter

    def test_round_accounting_matches_theorem7(self):
        graph = generators.cycle_graph(16)
        result = quantum_exact_diameter(graph, oracle_mode="reference", seed=4)
        expected = (
            result.optimization.initialization_rounds
            + result.counts.setup_calls * result.optimization.setup_rounds_per_call
            + result.counts.evaluation_calls
            * result.optimization.evaluation_rounds_per_call
        )
        assert result.rounds == expected

    def test_memory_accounting_polylog(self):
        graph = generators.random_connected_gnp(30, 0.1, seed=3)
        result = quantum_exact_diameter(graph, oracle_mode="reference", seed=0)
        log_n = math.ceil(math.log2(graph.num_nodes + 1))
        assert result.memory_bits_per_node <= 10 * log_n ** 2

    def test_accepts_prebuilt_network_and_leader(self, network_factory):
        graph = generators.cycle_graph(10)
        network = network_factory(graph)
        result = quantum_exact_diameter(
            network, oracle_mode="reference", seed=1, leader=3
        )
        assert result.leader == 3
        assert result.diameter == 5

    def test_invalid_variant_and_mode(self, network_factory):
        network = network_factory(generators.path_graph(4))
        with pytest.raises(ValueError):
            ExactDiameterProblem(network, variant="bogus")
        with pytest.raises(ValueError):
            ExactDiameterProblem(network, oracle_mode="bogus")

    def test_evaluation_calls_scale_with_sqrt_n_over_d(self):
        """More branches (relative to d) means more amplification work."""
        small = quantum_exact_diameter(
            generators.clique_chain(2, 4), oracle_mode="reference", seed=7
        )
        large = quantum_exact_diameter(
            generators.clique_chain(2, 18), oracle_mode="reference", seed=7
        )
        assert large.counts.evaluation_calls >= small.counts.evaluation_calls


class TestQuantumApproxDiameter:
    def test_estimate_within_bounds(self, small_graph):
        result = quantum_three_halves_diameter(
            small_graph, oracle_mode="reference", seed=3
        )
        diameter = small_graph.diameter()
        assert math.floor(2 * diameter / 3) <= result.estimate <= diameter

    def test_congest_and_reference_agree(self, network_factory):
        graph = generators.clique_chain(3, 3)
        congest = quantum_three_halves_diameter(
            network_factory(graph), oracle_mode="congest", seed=5
        )
        reference = quantum_three_halves_diameter(
            network_factory(graph), oracle_mode="reference", seed=5
        )
        assert congest.estimate == reference.estimate

    def test_ball_size_close_to_s(self):
        graph = generators.random_connected_gnp(40, 0.08, seed=2)
        result = quantum_three_halves_diameter(
            graph, s=6, oracle_mode="reference", seed=1
        )
        assert result.ball_size >= 6
        assert result.ball_size <= max(12, 2 * 6)

    def test_default_s_parameter_balances(self):
        assert default_s_parameter(1000, 10) == math.ceil(1000 ** (2 / 3) / 10 ** (1 / 3))
        assert default_s_parameter(8, 1) <= 8
        assert default_s_parameter(5, 100) >= 1
        with pytest.raises(ValueError):
            default_s_parameter(0, 5)

    def test_estimate_bounds_multiple_seeds(self):
        graph = generators.cycle_graph(18)
        diameter = graph.diameter()
        for seed in range(4):
            result = quantum_three_halves_diameter(
                graph, oracle_mode="reference", seed=seed
            )
            assert math.floor(2 * diameter / 3) <= result.estimate <= diameter


class TestComplexityFormulas:
    def test_exact_upper_bounds(self):
        assert classical_exact_upper(100) == 100
        assert quantum_exact_upper(100, 4) == pytest.approx(20.0)
        assert quantum_exact_upper(100, 0) == pytest.approx(10.0)

    def test_quantum_beats_classical_for_small_diameter(self):
        for n in (10 ** 3, 10 ** 4, 10 ** 5):
            assert quantum_exact_upper(n, 10) < classical_exact_upper(n)

    def test_quantum_matches_classical_at_linear_diameter(self):
        n = 10 ** 4
        assert quantum_exact_upper(n, n) == pytest.approx(classical_exact_upper(n))

    def test_approx_upper_bounds(self):
        assert classical_approx_upper(10 ** 4, 10) == pytest.approx(110.0)
        assert quantum_approx_upper(10 ** 6, 10) < classical_approx_upper(10 ** 6, 10)

    def test_lower_bound_with_memory(self):
        value = quantum_exact_lower_bounded_memory(10 ** 4, 100, 10)
        assert value == pytest.approx(math.sqrt(10 ** 6) / 10 + 100)
        with pytest.raises(ValueError):
            quantum_exact_lower_bounded_memory(100, 10, 0)

    def test_table1_rows_structure(self):
        rows = table1_rows()
        assert len(rows) == 4
        problems = [row.problem for row in rows]
        assert problems.count("Exact computation") == 2
        evaluated = rows[0].evaluate(10 ** 4, 16)
        assert evaluated["classical"] == 10 ** 4
        assert evaluated["quantum"] == pytest.approx(400.0)

    def test_theorem1_and_theorem3_meet_for_polylog_memory(self):
        """Theorems 1 and 3 together settle the complexity for small memory:
        the upper and lower bounds match up to polylog factors."""
        n, diameter = 10 ** 6, 10 ** 3
        upper = quantum_exact_upper(n, diameter)
        polylog_memory = math.ceil(math.log2(n)) ** 2
        lower = quantum_exact_lower_bounded_memory(n, diameter, polylog_memory)
        ratio = upper / lower
        assert ratio <= polylog_memory * 2
        assert ratio >= 1 / (polylog_memory * 2)
