"""Differential tests: the batched schedule backend == the sampling one.

The batched backend's contract is *byte identity* with the reference
sampling simulation for a fixed seed -- same values, same Setup /
Evaluation / measurement counts, same conditioned samples -- across every
registered problem, graph family and execution path (including the
BatchRunner parallel branch evaluation).  These tests mirror the
dense==sparse engine differential suite of PR 1.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.network import Network
from repro.core.problems import QUANTUM_PROBLEMS
from repro.graphs import generators
from repro.quantum.backend import (
    BACKEND_NAMES,
    SCHEDULE_BACKENDS,
    BatchedScheduleBackend,
    SamplingScheduleBackend,
    get_default_schedule_backend,
    resolve_schedule_backend,
    set_default_schedule_backend,
    validate_backend_name,
)
from repro.quantum.grover import grover_search
from repro.quantum.maximum_finding import find_maximum, uniform_amplitudes
from repro.runner.batch import BatchRunner

settings.register_profile(
    "repro-backends",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro-backends")

SAMPLING = SCHEDULE_BACKENDS["sampling"]
BATCHED = SCHEDULE_BACKENDS["batched"]

#: The graph families the sweep layer exercises, at differential sizes.
FAMILY_GRAPHS = [
    ("cycle", generators.cycle_graph(17)),
    ("path", generators.path_graph(13)),
    ("clique_chain", generators.clique_chain(3, 4)),
    ("random_sparse", generators.family_for_sweep("random_sparse", 30, seed=4)),
    ("random_tree", generators.random_tree(21, seed=8)),
]


class TestBackendRegistry:
    def test_names_and_instances(self):
        assert BACKEND_NAMES == ("batched", "sampling")
        assert isinstance(SAMPLING, SamplingScheduleBackend)
        assert isinstance(BATCHED, BatchedScheduleBackend)

    def test_resolution(self):
        assert resolve_schedule_backend(None).name == get_default_schedule_backend()
        assert resolve_schedule_backend("batched") is BATCHED
        assert resolve_schedule_backend(BATCHED) is BATCHED
        with pytest.raises(ValueError):
            resolve_schedule_backend("bogus")
        with pytest.raises(ValueError):
            validate_backend_name("")

    def test_default_toggle_returns_previous(self):
        previous = set_default_schedule_backend("batched")
        try:
            assert previous == "sampling"
            assert get_default_schedule_backend() == "batched"
            assert resolve_schedule_backend(None) is BATCHED
        finally:
            set_default_schedule_backend(previous)
        assert get_default_schedule_backend() == "sampling"

    def test_unknown_default_rejected(self):
        with pytest.raises(ValueError):
            set_default_schedule_backend("bogus")
        assert get_default_schedule_backend() == "sampling"


class TestMaximumFindingDifferential:
    def _assert_identical(self, values, eps, seeds=40, delta=0.1):
        amplitudes = uniform_amplitudes(values)
        for seed in range(seeds):
            sampling = SAMPLING.run_maximum_finding(
                amplitudes, values.__getitem__, eps=eps,
                delta=delta, rng=random.Random(seed),
            )
            batched = BATCHED.run_maximum_finding(
                amplitudes, values.__getitem__, eps=eps,
                delta=delta, rng=random.Random(seed),
            )
            assert sampling == batched, f"seed {seed}: {sampling} != {batched}"

    def test_distinct_values(self):
        self._assert_identical({i: i for i in range(50)}, eps=1 / 50)

    def test_few_distinct_values(self):
        self._assert_identical({i: (i * 7) % 5 for i in range(60)}, eps=5 / 120)

    def test_constant_function(self):
        self._assert_identical({i: 3.0 for i in range(20)}, eps=0.5)

    def test_negative_values(self):
        """The radius problem optimizes -ecc; thresholds are negative."""
        self._assert_identical({i: -((i * 11) % 9) for i in range(40)}, eps=1 / 40)

    def test_single_item(self):
        self._assert_identical({"only": 7.0}, eps=1.0, seeds=10)

    def test_tiny_delta_long_schedule(self):
        self._assert_identical(
            {i: (i * 13) % 23 for i in range(64)}, eps=1 / 128,
            seeds=15, delta=0.01,
        )

    def test_matches_reference_find_maximum(self):
        """The sampling backend *is* find_maximum; batched matches both."""
        values = {i: (i * 5) % 17 for i in range(32)}
        amplitudes = uniform_amplitudes(values)
        for seed in (0, 7, 23):
            reference = find_maximum(
                amplitudes, values.__getitem__, eps=1 / 32,
                rng=random.Random(seed),
            )
            batched = BATCHED.run_maximum_finding(
                amplitudes, values.__getitem__, eps=1 / 32,
                rng=random.Random(seed),
            )
            assert batched == reference

    def test_value_of_called_once_per_item_in_reference_order(self):
        """Both backends evaluate every item exactly once, best-item first."""
        values = {i: (i * 3) % 11 for i in range(25)}
        amplitudes = uniform_amplitudes(values)
        for backend in (SAMPLING, BATCHED):
            calls = []

            def value_of(item):
                calls.append(item)
                return values[item]

            backend.run_maximum_finding(
                amplitudes, value_of, eps=1 / 25, rng=random.Random(9)
            )
            assert len(calls) == len(values)
            assert sorted(calls) == sorted(values)
            if backend is SAMPLING:
                reference_order = calls
        assert calls == reference_order

    def test_validation_matches_reference(self):
        for backend in (SAMPLING, BATCHED):
            with pytest.raises(ValueError):
                backend.run_maximum_finding({}, lambda x: 0.0, eps=0.5)
            with pytest.raises(ValueError):
                backend.run_maximum_finding({0: 1.0}, lambda x: 0.0, eps=0.0)
            with pytest.raises(ValueError, match="normalised"):
                backend.run_maximum_finding(
                    {0: 1.0, 1: 1.0}, lambda x: 0.0, eps=0.5,
                    rng=random.Random(0),
                )

    @given(
        values=st.lists(
            st.integers(min_value=-50, max_value=50), min_size=1, max_size=60
        ),
        seed=st.integers(min_value=0, max_value=2 ** 31),
        eps_denominator=st.integers(min_value=1, max_value=200),
    )
    def test_property_identical_results(self, values, seed, eps_denominator):
        table = {index: float(value) for index, value in enumerate(values)}
        amplitudes = uniform_amplitudes(table)
        eps = 1.0 / eps_denominator
        sampling = SAMPLING.run_maximum_finding(
            table and amplitudes, table.__getitem__, eps=eps,
            rng=random.Random(seed),
        )
        batched = BATCHED.run_maximum_finding(
            amplitudes, table.__getitem__, eps=eps, rng=random.Random(seed)
        )
        assert sampling == batched

    @given(
        weights=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=30
        ),
        seed=st.integers(min_value=0, max_value=2 ** 31),
    )
    def test_property_nonuniform_amplitudes(self, weights, seed):
        """Identity holds for arbitrary (normalised) Setup amplitudes."""
        norm = math.sqrt(sum(weight ** 2 for weight in weights))
        amplitudes = {
            index: weight / norm for index, weight in enumerate(weights)
        }
        values = {index: float((index * 7) % 5) for index in amplitudes}
        sampling = SAMPLING.run_maximum_finding(
            amplitudes, values.__getitem__, eps=0.25, rng=random.Random(seed)
        )
        batched = BATCHED.run_maximum_finding(
            amplitudes, values.__getitem__, eps=0.25, rng=random.Random(seed)
        )
        assert sampling == batched


class TestSearchDifferential:
    def test_grover_search_identical_across_backends(self):
        items = list(range(40))
        for seed in range(30):
            outcomes = [
                grover_search(
                    items, lambda x: x % 13 == 4,
                    rng=random.Random(seed), backend=backend,
                )
                for backend in ("sampling", "batched")
            ]
            assert outcomes[0] == outcomes[1]

    def test_empty_marked_set(self):
        items = list(range(24))
        for seed in range(10):
            outcomes = [
                grover_search(
                    items, lambda x: False,
                    rng=random.Random(seed), backend=backend,
                )
                for backend in ("sampling", "batched")
            ]
            assert outcomes[0] == outcomes[1]
            assert outcomes[0].found is None

    @given(
        n=st.integers(min_value=1, max_value=50),
        marked_stride=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2 ** 31),
    )
    def test_property_search_identical(self, n, marked_stride, seed):
        """Identity extends to the failure paths: when float noise pushes
        the marked mass past 1.0 (everything marked), both backends raise
        the same rotation-domain error."""
        items = list(range(n))
        predicate = lambda x: x % marked_stride == 0  # noqa: E731
        outcomes = []
        for backend in (SAMPLING, BATCHED):
            try:
                outcome = backend.run_search(
                    uniform_amplitudes(items), predicate,
                    rng=random.Random(seed), eps=1.0 / n, delta=0.05,
                )
            except ValueError as error:
                outcome = (type(error), str(error))
            outcomes.append(outcome)
        assert outcomes[0] == outcomes[1]


def _optimization_fields(result):
    """The comparable fields of a DistributedOptimizationResult."""
    optimization = result.optimization
    return (
        optimization.best_item,
        optimization.best_value,
        optimization.counts,
        optimization.metrics.rounds,
        optimization.metrics.messages,
        optimization.initialization_rounds,
        optimization.setup_rounds_per_call,
        optimization.evaluation_rounds_per_call,
        optimization.distinct_evaluations,
        optimization.simulated_runs,
        optimization.simulated_rounds,
    )


class TestProblemsDifferential:
    """Batched == sampling across all registered problems and families."""

    @pytest.mark.parametrize("family,graph", FAMILY_GRAPHS, ids=[f for f, _ in FAMILY_GRAPHS])
    @pytest.mark.parametrize("problem", sorted(QUANTUM_PROBLEMS))
    def test_registered_problem_identical(self, problem, family, graph):
        info = QUANTUM_PROBLEMS[problem]
        runs = {}
        for backend in ("sampling", "batched"):
            runs[backend] = info.solve(
                Network(graph, seed=2),
                oracle_mode="reference",
                seed=5,
                backend=backend,
            )
        sampling, batched = runs["sampling"], runs["batched"]
        assert sampling.value == batched.value
        assert sampling.rounds == batched.rounds
        assert sampling.counts == batched.counts
        assert _optimization_fields(sampling) == _optimization_fields(batched)

    @pytest.mark.parametrize("problem", sorted(QUANTUM_PROBLEMS))
    def test_congest_oracle_identical(self, problem):
        """Identity also holds under end-to-end CONGEST evaluation."""
        graph = generators.clique_chain(3, 3)
        info = QUANTUM_PROBLEMS[problem]
        runs = {
            backend: info.solve(
                Network(graph, seed=1), oracle_mode="congest",
                seed=3, backend=backend,
            )
            for backend in ("sampling", "batched")
        }
        assert runs["sampling"].value == runs["batched"].value
        assert runs["sampling"].rounds == runs["batched"].rounds
        assert runs["sampling"].counts == runs["batched"].counts
        assert (
            _optimization_fields(runs["sampling"])
            == _optimization_fields(runs["batched"])
        )

    def test_parallel_branch_evaluation_identical(self):
        """The BatchRunner congest path is backend-independent too."""
        from repro.core.exact_diameter import quantum_exact_diameter

        graph = generators.clique_chain(3, 3)
        runner = BatchRunner(jobs=2)
        results = {}
        for backend in ("sampling", "batched"):
            results[backend] = quantum_exact_diameter(
                Network(graph, seed=4), oracle_mode="congest",
                seed=6, runner=runner, backend=backend,
            )
        sampling, batched = results["sampling"], results["batched"]
        assert sampling.diameter == batched.diameter
        assert sampling.rounds == batched.rounds
        assert sampling.counts == batched.counts
        assert (
            sampling.optimization.simulated_runs
            == batched.optimization.simulated_runs
        )
        assert (
            sampling.optimization.simulated_rounds
            == batched.optimization.simulated_rounds
        )

    def test_parallel_sweep_records_identical_across_backends(self):
        """run_sweep_grid over quantum kernels: serial sampling == parallel
        batched, record for record (the strongest cross-layer identity)."""
        from repro.analysis.sweep import run_sweep_grid
        from repro.runner import GraphSpec, resolve_algorithms

        specs = (
            GraphSpec(family="cycle", num_nodes=12, seed=3),
            GraphSpec(family="clique_chain", num_nodes=16, seed=3),
        )
        algorithms = resolve_algorithms(
            ["quantum_exact", "quantum_radius", "quantum_source_ecc"]
        )
        previous = set_default_schedule_backend("sampling")
        try:
            serial = run_sweep_grid(specs, algorithms, jobs=1, base_seed=7)
            set_default_schedule_backend("batched")
            parallel = run_sweep_grid(specs, algorithms, jobs=2, base_seed=7)
        finally:
            set_default_schedule_backend(previous)
        assert serial == parallel
