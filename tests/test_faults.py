"""Tests of the deterministic fault-injection layer (:mod:`repro.faults`).

Covers the model/registry surface, the stateless per-event decision
hashes, the engine's fault-aware loop (loss, delay, crash/restart,
churn), the retry helpers and the resilient BFS built on them, and the
sweep/store integration (``success``/``failure_reason`` records, fault-
aware task keys, provenance stamping, serial == parallel).

The headline guarantees are differential:

* the **null model is byte-identical** to the fault-free simulator on
  every engine and compute tier (same values, rounds, metrics);
* faulty executions are **identical across engines** for wake-driven
  algorithms and reproducible across processes and ``PYTHONHASHSEED``
  values (fault decisions are stateless CRC hashes, not RNG draws).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import faults, tier
from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.diameter_approx import run_classical_two_approximation
from repro.algorithms.resilient import (
    run_resilient_bfs,
    run_resilient_two_approximation,
)
from repro.analysis.sweep import run_sweep_grid, sweep_task_key
from repro.congest.errors import CongestSimulationError, RoundLimitExceededError
from repro.congest.network import Network
from repro.congest.node import NodeAlgorithm
from repro.faults import (
    FAULT_MODELS,
    NULL_FAULT_MODEL,
    FaultModel,
    fault_stream_seed,
    get_default_fault_model,
    register_fault_model,
    resolve_fault_model,
    set_default_fault_model,
    validate_fault_model,
)
from repro.graphs import generators
from repro.runner import GraphSpec, resolve_algorithms
from repro.store import ExperimentStore, collect_provenance, record_from_dict, record_to_dict

ENGINES = ("dense", "sparse", "vector")

#: The bench-calibrated loss scenario: at 10% loss the single-shot
#: 2-approximation reliably times out on this graph while the retrying
#: variant still lands inside the approximation bound.
LOSSY = FaultModel(loss=0.1, timeout=256)


@pytest.fixture(autouse=True)
def _restore_default_fault_model():
    """No test may leak a process-default fault model into the suite."""
    previous = get_default_fault_model()
    yield
    set_default_fault_model(previous)


def _graph(nodes=18, family="clique_chain"):
    return generators.family_for_sweep(family, nodes, seed=3)


def _root(graph):
    return min(graph.nodes(), key=repr)


class TestFaultModel:
    def test_default_model_is_null(self):
        assert NULL_FAULT_MODEL.is_null
        assert FaultModel().is_null
        assert FaultModel().describe() == "none"

    def test_timeout_only_model_is_not_null(self):
        # A zero-probability model with a timeout must still cap runs.
        assert not FaultModel(timeout=64).is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 1.5},
            {"delay": -0.1},
            {"crash": 2.0},
            {"churn": -1.0},
            {"max_delay": 0},
            {"crash_window": 0},
            {"down_rounds": -1},
            {"timeout": 0},
        ],
    )
    def test_validation_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_describe_distinguishes_models(self):
        a = FaultModel(loss=0.1)
        b = FaultModel(loss=0.1, seed=1)
        assert a.describe() != b.describe()
        assert "loss=0.1" in a.describe()
        # Stable across instances: describe is a pure function of fields.
        assert a.describe() == FaultModel(loss=0.1).describe()

    def test_registry_lookup(self):
        assert validate_fault_model("lossy") is FAULT_MODELS["lossy"]
        assert validate_fault_model(LOSSY) is LOSSY
        with pytest.raises(ValueError, match="lossy"):
            validate_fault_model("no-such-model")
        with pytest.raises(TypeError):
            validate_fault_model(3)

    def test_register_rejects_conflicting_redefinition(self):
        register_fault_model("lossy", FAULT_MODELS["lossy"])  # idempotent
        with pytest.raises(ValueError, match="already registered"):
            register_fault_model("lossy", FaultModel(loss=0.5))
        try:
            register_fault_model("test-model", FaultModel(churn=0.25))
            assert validate_fault_model("test-model") == FaultModel(churn=0.25)
        finally:
            FAULT_MODELS.pop("test-model", None)

    def test_default_model_toggle(self):
        previous = set_default_fault_model("lossy")
        assert get_default_fault_model() == FAULT_MODELS["lossy"]
        assert resolve_fault_model(None) == FAULT_MODELS["lossy"]
        assert resolve_fault_model("none").is_null
        restored = set_default_fault_model(previous)
        assert restored == FAULT_MODELS["lossy"]


class TestFaultPlan:
    def test_decisions_are_stateless_and_order_independent(self):
        indexed = _graph().compile()
        model = FaultModel(loss=0.4, delay=0.3, max_delay=3)
        plan = model.resolve(3, indexed)
        coords = [
            (r, u, v)
            for r in range(4)
            for u in list(indexed.labels)[:4]
            for v in list(indexed.labels)[:4]
            if u != v
        ]
        forward = {c: plan.message_fate(*c) for c in coords}
        backward = {c: plan.message_fate(*c) for c in reversed(coords)}
        assert forward == backward
        # A fresh plan over the same inputs decides identically.
        replay = model.resolve(3, indexed)
        assert forward == {c: replay.message_fate(*c) for c in coords}
        assert set(forward.values()) & {-1} and set(forward.values()) & {0}

    def test_fault_stream_is_isolated_per_run_and_seed(self):
        seeds = {
            fault_stream_seed(net, model, run)
            for net in (0, 1)
            for model in (0, 1)
            for run in (0, 1)
        }
        assert len(seeds) == 8  # every coordinate matters

    def test_crash_schedule_and_fail_pause_windows(self):
        indexed = _graph().compile()
        plan = FaultModel(crash=1.0, crash_window=4, down_rounds=3).resolve(
            5, indexed
        )
        assert set(plan.crash_round) == set(indexed.labels)
        for node, at in plan.crash_round.items():
            # Round 0 never crashes: initiators always get to start.
            assert 1 <= at <= 4
            assert plan.restart_round[node] == at + 3
            assert not plan.node_down(at - 1, node)
            assert plan.node_down(at, node)
            assert plan.node_down(at + 2, node)
            assert not plan.node_down(at + 3, node)
        assert plan.restarts_pending(0)
        assert not plan.restarts_pending(max(plan.restart_round.values()) + 1)

    def test_permanent_crash_has_no_restart(self):
        indexed = _graph().compile()
        plan = FaultModel(crash=1.0, crash_window=4).resolve(5, indexed)
        assert plan.crash_round and not plan.restart_round
        node, at = next(iter(plan.crash_round.items()))
        assert plan.node_down(at + 10_000, node)
        assert not plan.restarts_pending(0)

    def test_churn_is_per_round_and_orientation_free(self):
        indexed = _graph().compile()
        plan = FaultModel(churn=0.3).resolve(3, indexed)
        sets = []
        for round_number in range(6):
            down = plan.churned_edges(round_number)
            for u, v in down:
                assert plan.edge_down(round_number, u, v)
                assert plan.edge_down(round_number, v, u)
            sets.append(frozenset(down))
        # The churn draw is per (round, edge): the down set varies.
        assert len(set(sets)) > 1

    def test_full_churn_downs_every_edge(self):
        graph = _graph()
        plan = FaultModel(churn=1.0).resolve(3, graph.compile())
        assert len(plan.churned_edges(0)) == graph.num_edges

    def test_null_probabilities_never_fire(self):
        indexed = _graph().compile()
        plan = FaultModel(timeout=8).resolve(3, indexed)
        labels = list(indexed.labels)
        assert plan.message_fate(0, labels[0], labels[1]) == 0
        assert not plan.node_down(5, labels[0])
        assert plan.churned_edges(5) == ()


class TestRetryHelpers:
    def _node(self):
        return NodeAlgorithm("a", ("b",), 4)

    def test_wake_after_schedules_absolute_round(self):
        node = self._node()
        assert node.wake_after(5, 3) == 8
        assert node.wake_after(5, 0) == 6  # delay is clamped to >= 1
        assert node.consume_wake_requests() == [8, 6]

    def test_retry_backoff_doubles_and_caps(self):
        node = self._node()
        targets = [node.retry_backoff(0, attempt) for attempt in range(8)]
        assert targets == [1, 2, 4, 8, 16, 32, 64, 64]
        assert node.retry_backoff(10, 2, base=3, factor=2, cap=100) == 22


class TestNullModelIdentity:
    """The null model takes the exact pre-fault code paths."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_null_model_byte_identical_per_engine(self, engine):
        graph = _graph()
        clean = run_classical_two_approximation(
            Network(graph, seed=3, engine=engine)
        )
        null = run_classical_two_approximation(
            Network(graph, seed=3, engine=engine, fault_model=FaultModel())
        )
        named = run_classical_two_approximation(
            Network(graph, seed=3, engine=engine, fault_model="none")
        )
        for faulty in (null, named):
            assert faulty.estimate == clean.estimate
            assert faulty.metrics == clean.metrics

    def test_null_model_byte_identical_numpy_tier(self):
        pytest.importorskip("numpy")
        graph = _graph()
        previous = tier.set_default_tier("numpy")
        try:
            clean = run_classical_two_approximation(
                Network(graph, seed=3, engine="vector")
            )
            null = run_classical_two_approximation(
                Network(graph, seed=3, engine="vector", fault_model=FaultModel())
            )
        finally:
            tier.set_default_tier(previous)
        assert null.estimate == clean.estimate
        assert null.metrics == clean.metrics

    def test_null_metrics_report_no_degradation(self):
        result = run_bfs_tree(
            Network(_graph(), seed=3, fault_model=FaultModel()), _root(_graph())
        )
        metrics = result.metrics
        assert metrics.dropped_messages == 0
        assert metrics.delayed_messages == 0
        assert metrics.node_crashes == 0
        assert metrics.node_restarts == 0
        assert metrics.churned_edge_rounds == 0


class TestLossFaults:
    def test_total_loss_times_out_with_enriched_error(self):
        graph = _graph()
        network = Network(
            graph,
            seed=1,
            engine="dense",
            fault_model=FaultModel(loss=1.0, timeout=32),
        )
        with pytest.raises(RoundLimitExceededError) as excinfo:
            run_bfs_tree(network, _root(graph))
        error = excinfo.value
        assert error.max_rounds == 32
        assert error.rounds_completed == 32
        assert error.messages_sent >= 0
        assert "32 rounds" in str(error)
        assert "round(s) completed" in str(error)

    def test_moderate_loss_is_counted_and_survivable(self):
        graph = _graph()
        result = run_resilient_bfs(
            Network(graph, seed=1, fault_model=FaultModel(loss=0.2, timeout=512)),
            _root(graph),
        )
        assert result.complete
        assert result.metrics.dropped_messages > 0
        assert result.distance == graph.bfs_distances(_root(graph))

    def test_retry_beats_single_shot_under_loss(self):
        """The robustness headline: at 10% loss the plain 2-approximation
        times out on every probed seed while the retrying variant still
        satisfies the approximation bound."""
        graph = _graph(24)
        true_diameter = graph.compile().diameter()
        for seed in (0, 1, 2):
            with pytest.raises((CongestSimulationError, RuntimeError)):
                run_classical_two_approximation(
                    Network(graph, seed=seed, fault_model=LOSSY)
                )
            result = run_resilient_two_approximation(
                Network(graph, seed=seed, fault_model=LOSSY)
            )
            assert result.estimate <= true_diameter <= 2 * result.estimate


class TestDelayFaults:
    DELAYED = FaultModel(delay=0.5, max_delay=3, timeout=512)

    def test_delay_preserves_information(self):
        # Delays reorder but never destroy messages: the resilient flood
        # still computes exact BFS distances (late announcements can only
        # propose larger distances, which are ignored).
        graph = _graph()
        result = run_resilient_bfs(
            Network(graph, seed=2, fault_model=self.DELAYED), _root(graph)
        )
        assert result.complete
        assert result.metrics.delayed_messages > 0
        assert result.distance == graph.bfs_distances(_root(graph))

    def test_faulty_runs_identical_across_engines(self):
        graph = _graph()
        outcomes = []
        for engine in ENGINES:
            result = run_resilient_bfs(
                Network(graph, seed=2, engine=engine, fault_model=self.DELAYED),
                _root(graph),
            )
            outcomes.append(
                (
                    result.distance,
                    result.metrics.rounds,
                    result.metrics.messages,
                    result.metrics.total_bits,
                    result.metrics.dropped_messages,
                    result.metrics.delayed_messages,
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestCrashFaults:
    def test_fail_pause_with_restart_recovers(self):
        graph = _graph()
        result = run_resilient_bfs(
            Network(
                graph,
                seed=4,
                fault_model=FaultModel(
                    crash=0.5, crash_window=4, down_rounds=4, timeout=512
                ),
            ),
            _root(graph),
        )
        assert result.complete
        assert result.metrics.node_crashes > 0
        assert result.metrics.node_restarts == result.metrics.node_crashes

    def test_permanent_crash_cannot_terminate(self):
        # Fail-pause nodes that never restart also never finish: the run
        # must hit the fault timeout rather than hang at the generic cap.
        graph = _graph()
        network = Network(
            graph,
            seed=4,
            fault_model=FaultModel(crash=0.4, crash_window=4, timeout=64),
        )
        with pytest.raises(RoundLimitExceededError) as excinfo:
            run_resilient_bfs(network, _root(graph))
        assert excinfo.value.max_rounds == 64


class TestChurnFaults:
    def test_churn_is_counted_and_tolerated(self):
        graph = _graph()
        result = run_resilient_bfs(
            Network(graph, seed=5, fault_model=FaultModel(churn=0.3, timeout=512)),
            _root(graph),
        )
        assert result.complete
        assert result.metrics.churned_edge_rounds > 0
        assert result.distance == graph.bfs_distances(_root(graph))


class TestSweepIntegration:
    SPECS = (GraphSpec(family="clique_chain", num_nodes=24, seed=3),)

    def _algorithms(self):
        return resolve_algorithms(["two_approx", "two_approx_retry"])

    def test_failed_cells_become_failure_records(self):
        records = run_sweep_grid(
            self.SPECS, self._algorithms(), base_seed=0, fault_model=LOSSY
        )
        by_name = {record.algorithm: record for record in records}
        failed = by_name["two_approx"]
        assert not failed.success
        assert failed.value == -1.0
        assert failed.correct is None
        assert "RoundLimitExceededError" in failed.failure_reason
        survived = by_name["two_approx_retry"]
        assert survived.success
        assert survived.failure_reason is None
        assert survived.value > 0
        # The grid restores whatever default was active before it ran.
        assert get_default_fault_model().is_null

    def test_faulty_grid_serial_equals_parallel(self):
        serial = run_sweep_grid(
            self.SPECS, self._algorithms(), base_seed=0, fault_model=LOSSY
        )
        parallel = run_sweep_grid(
            self.SPECS, self._algorithms(), base_seed=0, jobs=2, fault_model=LOSSY
        )
        assert serial == parallel

    def test_task_key_carries_only_non_null_models(self):
        spec = self.SPECS[0]
        base = sweep_task_key(spec, "two_approx", 0)
        assert sweep_task_key(spec, "two_approx", 0, NULL_FAULT_MODEL) == base
        lossy_key = sweep_task_key(spec, "two_approx", 0, LOSSY)
        assert lossy_key != base
        assert "fault=" in lossy_key
        assert sweep_task_key(spec, "two_approx", 0, FaultModel(loss=0.2)) != lossy_key

    def test_store_roundtrip_preserves_outcome_fields(self, tmp_path):
        store = ExperimentStore(tmp_path / "faulty.jsonl")
        records = run_sweep_grid(
            self.SPECS,
            self._algorithms(),
            base_seed=0,
            store=store,
            fault_model=LOSSY,
        )
        assert store.load_records() == records
        header = store.latest_header()
        assert header["fault_model"] == LOSSY.describe()

    def test_record_loader_defaults_legacy_rows_to_success(self):
        records = run_sweep_grid(self.SPECS, self._algorithms(), base_seed=0)
        data = record_to_dict(records[0])
        assert data["success"] is True and data["failure_reason"] is None
        legacy = {
            key: value
            for key, value in data.items()
            if key not in ("success", "failure_reason")
        }
        loaded = record_from_dict(legacy)
        assert loaded == records[0]

    def test_provenance_stamps_fault_model(self):
        assert collect_provenance()["fault_model"] == "none"
        set_default_fault_model("lossy")
        assert (
            collect_provenance()["fault_model"] == FAULT_MODELS["lossy"].describe()
        )


#: A faulty end-to-end scenario executed in subprocesses: a lossy
#: resilient 2-approximation on every engine plus a faulty sweep grid.
#: All fault decisions are CRC hashes, so the JSON must be verbatim-
#: identical across ``PYTHONHASHSEED`` values.
_HASHSEED_SCRIPT = r"""
import json
import sys

from repro.algorithms.resilient import run_resilient_two_approximation
from repro.analysis.sweep import run_sweep_grid
from repro.congest.network import Network
from repro.faults import FaultModel
from repro.graphs import generators
from repro.runner import GraphSpec, resolve_algorithms

model = FaultModel(loss=0.1, delay=0.1, max_delay=2, timeout=256)
graph = generators.family_for_sweep("clique_chain", 20, seed=3)

runs = {}
for engine in ("dense", "sparse", "vector"):
    result = run_resilient_two_approximation(
        Network(graph, seed=7, engine=engine, fault_model=model)
    )
    metrics = result.metrics
    runs[engine] = [
        result.estimate, metrics.rounds, metrics.messages, metrics.total_bits,
        metrics.dropped_messages, metrics.delayed_messages,
    ]

records = run_sweep_grid(
    (GraphSpec(family="clique_chain", num_nodes=24, seed=3),),
    resolve_algorithms(["two_approx", "two_approx_retry"]),
    base_seed=0,
    fault_model=FaultModel(loss=0.1, timeout=256),
)

out = {
    "hash_randomised": sys.flags.hash_randomization,
    "runs": runs,
    "records": [[r.family, r.algorithm, r.num_nodes, r.rounds, r.value,
                 r.success, r.failure_reason, sorted(r.extra.items())]
                for r in records],
}
print(json.dumps(out, sort_keys=True))
"""

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def test_faulty_runs_identical_across_hash_seeds():
    def run(seed: str) -> dict:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        existing = os.environ.get("PYTHONPATH")
        env["PYTHONPATH"] = _SRC + (os.pathsep + existing if existing else "")
        result = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return json.loads(result.stdout)

    first = run("1")
    second = run("4242")
    assert first["hash_randomised"] == second["hash_randomised"] == 1
    # The three engines must agree inside each subprocess as well.
    assert first["runs"]["dense"] == first["runs"]["sparse"] == first["runs"]["vector"]
    for key in first:
        if key == "hash_randomised":
            continue
        assert first[key] == second[key], f"{key} differs across PYTHONHASHSEED"
