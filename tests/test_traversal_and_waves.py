"""Tests for Euler-tour traversals (Definition 1) and the pipelined waves."""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.dfs_traversal import (
    run_full_euler_tour,
    run_windowed_euler_tour,
    sequential_euler_tour,
)
from repro.algorithms.waves import WaveScheduleEntry, run_distance_waves
from repro.congest.network import Network
from repro.graphs import generators


class TestFullEulerTour:
    def test_all_nodes_numbered_distinctly(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        tour = run_full_euler_tour(network, tree)
        assert set(tour.visit_time) == set(small_graph.nodes())
        times = sorted(tour.visit_time.values())
        assert len(set(times)) == len(times)
        assert tour.visit_time[root] == 0

    def test_times_bounded_by_tour_length(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        tour = run_full_euler_tour(network, tree)
        assert max(tour.visit_time.values()) <= 2 * (small_graph.num_nodes - 1)

    def test_walk_property(self, small_graph, network_factory):
        """PRT12 Property 1: tau(v) < tau(w) implies d(v, w) <= tau(w) - tau(v)."""
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        tour = run_full_euler_tour(network, tree)
        nodes = list(tour.visit_time)
        for v in nodes:
            for w in nodes:
                if tour.visit_time[v] < tour.visit_time[w]:
                    assert (
                        small_graph.distance(v, w)
                        <= tour.visit_time[w] - tour.visit_time[v]
                    )

    def test_round_complexity_linear_in_n(self, network_factory):
        graph = generators.random_tree(25, seed=1)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        tour = run_full_euler_tour(network, tree)
        assert tour.metrics.rounds <= 2 * graph.num_nodes + 4

    def test_matches_sequential_reference(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        distributed = run_full_euler_tour(network, tree)
        sequential = sequential_euler_tour(tree, tree.root)
        assert distributed.visit_time == sequential

    def test_single_node(self, network_factory):
        graph = generators.path_graph(1)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        tour = run_full_euler_tour(network, tree)
        assert tour.visit_time == {0: 0}


class TestWindowedEulerTour:
    def test_window_zero_only_start(self, network_factory):
        graph = generators.cycle_graph(8)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        tour = run_windowed_euler_tour(network, tree, start=3, window=0)
        assert tour.visit_time == {3: 0}

    def test_window_covers_relative_numbers(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        full = run_full_euler_tour(network, tree)
        length = 2 * (small_graph.num_nodes - 1)
        for start in list(small_graph.nodes())[:4]:
            window = max(2, small_graph.num_nodes // 2)
            tour = run_windowed_euler_tour(network, tree, start=start, window=window)
            for node, relative in tour.visit_time.items():
                assert 0 <= relative <= window
                if length > 0:
                    expected = (full.visit_time[node] - full.visit_time[start]) % length
                    assert relative == expected

    def test_matches_sequential_reference(self, small_graph, network_factory):
        network = network_factory(small_graph)
        tree = run_bfs_tree(network, small_graph.nodes()[0])
        for start in list(small_graph.nodes())[:3]:
            window = small_graph.num_nodes
            distributed = run_windowed_euler_tour(
                network, tree, start=start, window=window
            )
            sequential = sequential_euler_tour(tree, start, window=window)
            assert distributed.visit_time == sequential

    def test_full_window_covers_everything(self, network_factory):
        graph = generators.random_tree(12, seed=9)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        tour = run_windowed_euler_tour(
            network, tree, start=5, window=2 * (graph.num_nodes - 1)
        )
        assert set(tour.visit_time) == set(graph.nodes())

    def test_subtree_restriction(self, network_factory):
        graph = generators.path_graph(10)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        members = {0, 1, 2, 3}
        tour = run_windowed_euler_tour(
            network, tree, start=1, window=20, members=members
        )
        assert set(tour.visit_time) <= members

    def test_subtree_must_be_parent_closed(self, network_factory):
        graph = generators.path_graph(6)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        with pytest.raises(ValueError):
            run_windowed_euler_tour(network, tree, start=3, window=4, members={3, 4})

    def test_start_must_be_member(self, network_factory):
        graph = generators.path_graph(6)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        with pytest.raises(ValueError):
            run_windowed_euler_tour(network, tree, start=5, window=4, members={0, 1})

    def test_negative_window_raises(self, network_factory):
        graph = generators.path_graph(4)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        with pytest.raises(ValueError):
            run_windowed_euler_tour(network, tree, start=0, window=-1)

    def test_round_complexity_linear_in_window(self, network_factory):
        graph = generators.random_tree(40, seed=4)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        tour = run_windowed_euler_tour(network, tree, start=7, window=10)
        assert tour.metrics.rounds <= 10 + 4


class TestDistanceWaves:
    def _schedule_from_tour(self, network, tree):
        tour = run_full_euler_tour(network, tree)
        return {
            node: WaveScheduleEntry(start_round=2 * time, tag=time)
            for node, time in tour.visit_time.items()
        }

    def test_single_source_gives_eccentricity(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        schedule = {root: WaveScheduleEntry(start_round=0, tag=0)}
        duration = 2 * small_graph.num_nodes + 4
        waves = run_distance_waves(network, schedule, duration)
        distances = small_graph.bfs_distances(root)
        assert waves.max_distance == distances
        assert waves.overall_max == small_graph.eccentricity(root)

    def test_all_sources_give_diameter(self, small_graph, network_factory):
        network = network_factory(small_graph)
        root = small_graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        schedule = self._schedule_from_tour(network, tree)
        max_tag = max(entry.tag for entry in schedule.values())
        duration = 2 * max_tag + 2 * tree.depth + 2
        waves = run_distance_waves(network, schedule, duration)
        assert waves.overall_max == small_graph.diameter()

    def test_per_node_values_are_max_over_sources(self, network_factory):
        graph = generators.cycle_graph(9)
        network = network_factory(graph)
        tree = run_bfs_tree(network, 0)
        schedule = self._schedule_from_tour(network, tree)
        max_tag = max(entry.tag for entry in schedule.values())
        waves = run_distance_waves(network, schedule, 2 * max_tag + 2 * tree.depth + 2)
        for node in graph.nodes():
            expected = max(graph.distance(source, node) for source in schedule)
            assert waves.max_distance[node] == expected

    def test_memory_is_logarithmic(self, network_factory):
        graph = generators.random_connected_gnp(30, 0.12, seed=2)
        network = network_factory(graph)
        tree = run_bfs_tree(network, graph.nodes()[0])
        schedule = self._schedule_from_tour(network, tree)
        max_tag = max(entry.tag for entry in schedule.values())
        waves = run_distance_waves(network, schedule, 2 * max_tag + 2 * tree.depth + 2)
        assert waves.metrics.max_node_memory_bits <= 6 * 8

    def test_duplicate_tags_rejected(self, network_factory):
        network = network_factory(generators.path_graph(4))
        schedule = {
            0: WaveScheduleEntry(start_round=0, tag=1),
            1: WaveScheduleEntry(start_round=2, tag=1),
        }
        with pytest.raises(ValueError):
            run_distance_waves(network, schedule, 10)

    def test_start_after_duration_rejected(self, network_factory):
        network = network_factory(generators.path_graph(4))
        schedule = {0: WaveScheduleEntry(start_round=20, tag=0)}
        with pytest.raises(ValueError):
            run_distance_waves(network, schedule, 10)

    def test_naive_schedule_can_be_wrong(self, network_factory):
        """Ablation: starting every wave at round 0 breaks correctness.

        With the all-at-once schedule the Figure-2 filtering rule drops
        waves, so at least one node ends up with an underestimated maximum
        on a long path (where waves collide head-on).
        """
        graph = generators.path_graph(12)
        network = network_factory(graph)
        naive = {
            node: WaveScheduleEntry(start_round=0, tag=index)
            for index, node in enumerate(graph.nodes())
        }
        waves = run_distance_waves(network, naive, 4 * graph.num_nodes)
        expected = {
            node: max(graph.distance(source, node) for source in graph.nodes())
            for node in graph.nodes()
        }
        assert any(
            waves.max_distance[node] < expected[node] for node in graph.nodes()
        )
