"""Tests for the lower-bound machinery: disjointness, reductions, Theorem 10
and the bound formulas."""

from __future__ import annotations

import math

import pytest

from repro.lowerbounds.bounds import (
    LowerBoundComparison,
    theorem2_lower_bound,
    theorem3_lower_bound,
    theorem5_communication_lower_bound,
    theorem10_lower_bound,
)
from repro.lowerbounds.congest_to_two_party import (
    simulate_congest_algorithm_as_two_party_protocol,
)
from repro.lowerbounds.disjointness import (
    disjointness,
    intersection_witness,
    random_disjoint_instance,
    random_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import (
    achk_reduction,
    hw12_reduction,
    path_subdivided_reduction,
    verify_reduction_on_instance,
)
from repro.lowerbounds.two_party import (
    ALICE_TO_BOB,
    BOB_TO_ALICE,
    TwoPartyTranscript,
)


class TestDisjointness:
    def test_basic_values(self):
        assert disjointness([1, 0, 1], [0, 1, 0]) == 1
        assert disjointness([1, 0, 1], [0, 0, 1]) == 0
        assert disjointness([0, 0], [0, 0]) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            disjointness([1], [1, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            disjointness([2, 0], [0, 0])

    def test_intersection_witness(self):
        assert intersection_witness([0, 1, 1], [0, 0, 1]) == 2
        assert intersection_witness([1, 0], [0, 1]) is None

    def test_random_instance_shapes(self):
        x, y = random_instance(50, seed=1)
        assert len(x) == len(y) == 50
        assert set(x) <= {0, 1} and set(y) <= {0, 1}

    def test_random_disjoint_is_disjoint(self):
        for seed in range(10):
            x, y = random_disjoint_instance(40, seed=seed)
            assert disjointness(x, y) == 1

    def test_random_intersecting_intersects(self):
        for seed in range(10):
            x, y = random_intersecting_instance(40, seed=seed)
            assert disjointness(x, y) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_instance(0)
        with pytest.raises(ValueError):
            random_instance(5, density=2.0)


class TestTranscript:
    def test_counting(self):
        transcript = TwoPartyTranscript()
        transcript.send(ALICE_TO_BOB, 10)
        transcript.send(ALICE_TO_BOB, 20)
        transcript.send(BOB_TO_ALICE, 5)
        assert transcript.num_messages == 3
        assert transcript.total_bits == 35
        assert transcript.max_message_bits == 20
        assert transcript.rounds_of_interaction() == 2

    def test_empty(self):
        transcript = TwoPartyTranscript()
        assert transcript.num_messages == 0
        assert transcript.total_bits == 0
        assert transcript.max_message_bits == 0
        assert transcript.rounds_of_interaction() == 0

    def test_validation(self):
        transcript = TwoPartyTranscript()
        with pytest.raises(ValueError):
            transcript.send("sideways", 1)
        with pytest.raises(ValueError):
            transcript.send(ALICE_TO_BOB, -1)


class TestReductions:
    def test_hw12_parameters(self):
        reduction = hw12_reduction(5)
        assert reduction.cut_edges == 11
        assert reduction.input_length == 25
        assert (reduction.diameter_if_disjoint, reduction.diameter_if_intersecting) == (2, 3)

    def test_achk_parameters(self):
        reduction = achk_reduction(12)
        assert reduction.input_length == 12
        assert reduction.cut_edges == 2 * 4 + 1
        assert (reduction.diameter_if_disjoint, reduction.diameter_if_intersecting) == (4, 5)

    def test_path_reduction_parameters(self):
        reduction = path_subdivided_reduction(6, 4)
        assert reduction.diameter_if_disjoint == 8
        assert reduction.diameter_if_intersecting == 9
        assert reduction.num_nodes > achk_reduction(6).num_nodes

    def test_verify_on_sampled_instances(self):
        for reduction in (hw12_reduction(3), achk_reduction(6), path_subdivided_reduction(4, 3)):
            for seed in range(4):
                x, y = random_disjoint_instance(reduction.input_length, seed=seed)
                assert verify_reduction_on_instance(reduction, x, y).satisfied
                x, y = random_intersecting_instance(reduction.input_length, seed=seed)
                assert verify_reduction_on_instance(reduction, x, y).satisfied

    def test_decide_from_diameter(self):
        reduction = achk_reduction(5)
        assert reduction.decide_disjointness_from_diameter(3) == 1
        assert reduction.decide_disjointness_from_diameter(4) == 1
        assert reduction.decide_disjointness_from_diameter(5) == 0
        assert reduction.decide_disjointness_from_diameter(9) == 0

    def test_decide_from_diameter_rejects_promise_violation(self):
        from repro.lowerbounds.reductions import DisjointnessReduction
        from repro.graphs.gadgets_hw12 import HW12Gadget

        gapped = DisjointnessReduction(
            name="synthetic-gap",
            gadget=HW12Gadget(2),
            cut_edges=5,
            input_length=4,
            diameter_if_disjoint=2,
            diameter_if_intersecting=5,
            num_nodes=10,
        )
        with pytest.raises(ValueError):
            gapped.decide_disjointness_from_diameter(3)
        assert gapped.decide_disjointness_from_diameter(2) == 1
        assert gapped.decide_disjointness_from_diameter(7) == 0


class TestTheorem10Reduction:
    def test_computes_disjointness_correctly(self):
        reduction = hw12_reduction(3)
        for seed in range(3):
            x, y = random_disjoint_instance(reduction.input_length, seed=seed)
            outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
            assert outcome.correct
            x, y = random_intersecting_instance(reduction.input_length, seed=seed)
            outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
            assert outcome.correct

    def test_message_count_is_linear_in_rounds(self):
        reduction = hw12_reduction(3)
        x, y = random_intersecting_instance(reduction.input_length, seed=5)
        outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
        # At most two messages per simulated round plus the final answer.
        assert outcome.transcript.num_messages <= 2 * outcome.rounds + 1
        assert outcome.transcript.num_messages >= 2

    def test_communication_bounded_by_cut_times_rounds(self):
        reduction = hw12_reduction(4)
        x, y = random_disjoint_instance(reduction.input_length, seed=2)
        outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
        bandwidth = 16 * math.ceil(math.log2(reduction.num_nodes + 1))
        upper = outcome.rounds * reduction.cut_edges * bandwidth + outcome.rounds * 2 + 1
        assert outcome.transcript.total_bits <= upper

    def test_works_with_achk_reduction(self):
        reduction = achk_reduction(6)
        x, y = random_intersecting_instance(6, seed=9)
        outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
        assert outcome.correct
        assert outcome.diameter == 5


class TestBoundFormulas:
    def test_theorem5_shape(self):
        assert theorem5_communication_lower_bound(100, 1) == 101
        assert theorem5_communication_lower_bound(100, 10) == 20
        # The bound is minimised around r = sqrt(k).
        best = min(
            theorem5_communication_lower_bound(10 ** 4, r) for r in range(1, 1000)
        )
        assert best == pytest.approx(2 * math.sqrt(10 ** 4), rel=0.05)

    def test_theorem10_shape(self):
        # HW12 parameters: k = Theta(n^2), b = Theta(n) gives Omega(sqrt(n)).
        n = 10 ** 4
        assert theorem10_lower_bound(n * n, n) == pytest.approx(math.sqrt(n))

    def test_theorem2_monotone(self):
        assert theorem2_lower_bound(10 ** 4) == pytest.approx(100.0)
        assert theorem2_lower_bound(10 ** 4, diameter=50) == pytest.approx(150.0)

    def test_theorem3_matches_upper_bound_shape(self):
        n, diameter = 10 ** 6, 100
        lower = theorem3_lower_bound(n, diameter, memory_qubits=1)
        upper = math.sqrt(n * diameter)
        assert lower <= upper * math.log2(n) ** 2
        assert upper <= lower * math.log2(n) ** 2

    def test_theorem3_decreases_with_memory(self):
        weak = theorem3_lower_bound(10 ** 4, 100, memory_qubits=1000)
        strong = theorem3_lower_bound(10 ** 4, 100, memory_qubits=4)
        assert weak < strong

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            theorem5_communication_lower_bound(0, 1)
        with pytest.raises(ValueError):
            theorem10_lower_bound(10, 0)
        with pytest.raises(ValueError):
            theorem3_lower_bound(10, 5, 0)

    def test_comparison_consistency(self):
        comparison = LowerBoundComparison(
            n=10 ** 4, diameter=16,
            lower_bound=theorem2_lower_bound(10 ** 4, 16),
            upper_bound=math.sqrt(10 ** 4 * 16),
            label="exact",
        )
        assert comparison.consistent
        assert comparison.ratio > 1.0
