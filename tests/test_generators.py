"""Unit tests for the workload graph generators."""

from __future__ import annotations

import pytest

from repro.graphs import generators


class TestBasicFamilies:
    def test_path_graph(self):
        graph = generators.path_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.diameter() == 4

    def test_single_node_path(self):
        graph = generators.path_graph(1)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_cycle_graph(self):
        graph = generators.cycle_graph(7)
        assert graph.num_edges == 7
        assert all(graph.degree(node) == 2 for node in graph)

    def test_cycle_too_small_raises(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star_graph(self):
        graph = generators.star_graph(9)
        assert graph.degree(0) == 8
        assert graph.diameter() == 2

    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        assert graph.num_edges == 15
        assert graph.diameter() == 1

    def test_grid_graph(self):
        graph = generators.grid_graph(4, 5)
        assert graph.num_nodes == 20
        assert graph.diameter() == 7

    def test_balanced_tree(self):
        graph = generators.balanced_tree(2, 3)
        assert graph.num_nodes == 15
        assert graph.diameter() == 6

    def test_balanced_tree_depth_zero(self):
        graph = generators.balanced_tree(3, 0)
        assert graph.num_nodes == 1

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            generators.path_graph(0)
        with pytest.raises(ValueError):
            generators.balanced_tree(0, 2)
        with pytest.raises(ValueError):
            generators.balanced_tree(2, -1)


class TestCompositeFamilies:
    def test_clique_chain_size_and_diameter(self):
        graph = generators.clique_chain(4, 5)
        assert graph.num_nodes == 20
        assert graph.is_connected()
        assert graph.diameter() == 2 * 4 - 1

    def test_clique_chain_single_block(self):
        graph = generators.clique_chain(1, 4)
        assert graph.diameter() == 1

    def test_lollipop(self):
        graph = generators.lollipop_graph(5, 4)
        assert graph.num_nodes == 9
        assert graph.diameter() == 5

    def test_lollipop_no_tail(self):
        graph = generators.lollipop_graph(4, 0)
        assert graph.diameter() == 1

    def test_barbell(self):
        graph = generators.barbell_graph(4, 3)
        assert graph.num_nodes == 11
        assert graph.diameter() == 6

    def test_diameter_controlled_graph(self):
        for target in (1, 2, 5, 9):
            graph = generators.diameter_controlled_graph(20, target, seed=1)
            assert graph.num_nodes == 20
            assert graph.is_connected()
            assert graph.diameter() == target

    def test_diameter_controlled_infeasible(self):
        with pytest.raises(ValueError):
            generators.diameter_controlled_graph(5, 10)
        with pytest.raises(ValueError):
            generators.diameter_controlled_graph(1, 3)

    def test_diameter_controlled_single_node(self):
        graph = generators.diameter_controlled_graph(1, 0)
        assert graph.num_nodes == 1


class TestRingOfCliques:
    def test_size_and_diameter_track_block_count(self):
        for num_cliques in (3, 4, 6, 8):
            graph = generators.ring_of_cliques(num_cliques, 4)
            assert graph.num_nodes == num_cliques * 4
            assert graph.is_connected()
            # Documented: 2 * floor(k / 2) + 1 with a single bridge ...
            assert graph.diameter() == 2 * (num_cliques // 2) + 1
            # ... and exactly k once a second bridge exists.
            wide = generators.ring_of_cliques(num_cliques, 4, bridges=2)
            assert wide.diameter() == num_cliques

    def test_extra_bridges_do_not_change_diameter(self):
        baseline = generators.ring_of_cliques(5, 6, bridges=2)
        wide = generators.ring_of_cliques(5, 6, bridges=3)
        assert baseline.diameter() == wide.diameter() == 5
        # ... but they do widen the inter-block cut.
        assert wide.num_edges == baseline.num_edges + 5

    def test_bridges_are_node_disjoint(self):
        graph = generators.ring_of_cliques(4, 6, bridges=3)
        assert graph.num_edges == 4 * 15 + 4 * 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generators.ring_of_cliques(2, 4)
        with pytest.raises(ValueError):
            generators.ring_of_cliques(3, 4, bridges=0)
        with pytest.raises(ValueError):
            generators.ring_of_cliques(3, 4, bridges=3)  # > clique_size // 2


class TestRandomRegular:
    def test_regular_connected_and_deterministic(self):
        for seed in range(4):
            graph = generators.random_regular_graph(20, 3, seed=seed)
            assert graph.num_nodes == 20
            assert graph.is_connected()
            assert all(graph.degree(node) == 3 for node in graph)
        a = generators.random_regular_graph(20, 3, seed=1)
        b = generators.random_regular_graph(20, 3, seed=1)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_expander_diameter_is_logarithmic(self):
        # Degree-3 random regular graphs are expanders w.h.p.: diameter
        # stays tiny while n quadruples (contrast cycle: n // 2).
        small = generators.random_regular_graph(32, 3, seed=2).diameter()
        large = generators.random_regular_graph(128, 3, seed=2).diameter()
        assert large <= 2 * small
        assert large <= 12  # ~log2(128) + slack, nowhere near 128 / 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(9, 3)  # odd n * degree
        with pytest.raises(ValueError):
            generators.random_regular_graph(4, 4)  # degree >= n
        with pytest.raises(ValueError):
            generators.random_regular_graph(4, 0)


class TestPreferentialAttachment:
    def test_connected_with_powerlaw_hubs(self):
        graph = generators.preferential_attachment(100, attach=2, seed=3)
        assert graph.num_nodes == 100
        assert graph.is_connected()
        # Seed clique edges plus `attach` per later node.
        assert graph.num_edges == 3 + 97 * 2
        # Heavy tail: some hub collects far more than the attachment rate.
        assert graph.max_degree() >= 10

    def test_small_world_diameter(self):
        graph = generators.preferential_attachment(200, attach=2, seed=3)
        assert graph.diameter() <= 8

    def test_deterministic_per_seed(self):
        a = generators.preferential_attachment(40, attach=2, seed=9)
        b = generators.preferential_attachment(40, attach=2, seed=9)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment(2, attach=2)  # n < attach + 1
        with pytest.raises(ValueError):
            generators.preferential_attachment(5, attach=0)


class TestRandomFamilies:
    def test_random_connected_gnp_is_connected(self):
        for seed in range(5):
            graph = generators.random_connected_gnp(25, 0.05, seed=seed)
            assert graph.num_nodes == 25
            assert graph.is_connected()

    def test_random_connected_gnp_deterministic_per_seed(self):
        a = generators.random_connected_gnp(15, 0.2, seed=42)
        b = generators.random_connected_gnp(15, 0.2, seed=42)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_random_connected_gnp_invalid_p(self):
        with pytest.raises(ValueError):
            generators.random_connected_gnp(10, 1.5)

    def test_random_tree_is_tree(self):
        graph = generators.random_tree(30, seed=2)
        assert graph.num_edges == 29
        assert graph.is_connected()

    def test_family_dispatch_all_kinds(self):
        for kind in generators.SWEEP_FAMILIES:
            graph = generators.family_for_sweep(kind, 16, seed=1)
            assert graph.is_connected()
            assert graph.num_nodes >= 4

    def test_family_dispatch_unknown(self):
        with pytest.raises(ValueError):
            generators.family_for_sweep("nonexistent", 10)
