"""Unit tests for the workload graph generators."""

from __future__ import annotations

import pytest

from repro.graphs import generators


class TestBasicFamilies:
    def test_path_graph(self):
        graph = generators.path_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.diameter() == 4

    def test_single_node_path(self):
        graph = generators.path_graph(1)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_cycle_graph(self):
        graph = generators.cycle_graph(7)
        assert graph.num_edges == 7
        assert all(graph.degree(node) == 2 for node in graph)

    def test_cycle_too_small_raises(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star_graph(self):
        graph = generators.star_graph(9)
        assert graph.degree(0) == 8
        assert graph.diameter() == 2

    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        assert graph.num_edges == 15
        assert graph.diameter() == 1

    def test_grid_graph(self):
        graph = generators.grid_graph(4, 5)
        assert graph.num_nodes == 20
        assert graph.diameter() == 7

    def test_balanced_tree(self):
        graph = generators.balanced_tree(2, 3)
        assert graph.num_nodes == 15
        assert graph.diameter() == 6

    def test_balanced_tree_depth_zero(self):
        graph = generators.balanced_tree(3, 0)
        assert graph.num_nodes == 1

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            generators.path_graph(0)
        with pytest.raises(ValueError):
            generators.balanced_tree(0, 2)
        with pytest.raises(ValueError):
            generators.balanced_tree(2, -1)


class TestCompositeFamilies:
    def test_clique_chain_size_and_diameter(self):
        graph = generators.clique_chain(4, 5)
        assert graph.num_nodes == 20
        assert graph.is_connected()
        assert graph.diameter() == 2 * 4 - 1

    def test_clique_chain_single_block(self):
        graph = generators.clique_chain(1, 4)
        assert graph.diameter() == 1

    def test_lollipop(self):
        graph = generators.lollipop_graph(5, 4)
        assert graph.num_nodes == 9
        assert graph.diameter() == 5

    def test_lollipop_no_tail(self):
        graph = generators.lollipop_graph(4, 0)
        assert graph.diameter() == 1

    def test_barbell(self):
        graph = generators.barbell_graph(4, 3)
        assert graph.num_nodes == 11
        assert graph.diameter() == 6

    def test_diameter_controlled_graph(self):
        for target in (1, 2, 5, 9):
            graph = generators.diameter_controlled_graph(20, target, seed=1)
            assert graph.num_nodes == 20
            assert graph.is_connected()
            assert graph.diameter() == target

    def test_diameter_controlled_infeasible(self):
        with pytest.raises(ValueError):
            generators.diameter_controlled_graph(5, 10)
        with pytest.raises(ValueError):
            generators.diameter_controlled_graph(1, 3)

    def test_diameter_controlled_single_node(self):
        graph = generators.diameter_controlled_graph(1, 0)
        assert graph.num_nodes == 1


class TestRandomFamilies:
    def test_random_connected_gnp_is_connected(self):
        for seed in range(5):
            graph = generators.random_connected_gnp(25, 0.05, seed=seed)
            assert graph.num_nodes == 25
            assert graph.is_connected()

    def test_random_connected_gnp_deterministic_per_seed(self):
        a = generators.random_connected_gnp(15, 0.2, seed=42)
        b = generators.random_connected_gnp(15, 0.2, seed=42)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_random_connected_gnp_invalid_p(self):
        with pytest.raises(ValueError):
            generators.random_connected_gnp(10, 1.5)

    def test_random_tree_is_tree(self):
        graph = generators.random_tree(30, seed=2)
        assert graph.num_edges == 29
        assert graph.is_connected()

    def test_family_dispatch_all_kinds(self):
        for kind in generators.SWEEP_FAMILIES:
            graph = generators.family_for_sweep(kind, 16, seed=1)
            assert graph.is_connected()
            assert graph.num_nodes >= 4

    def test_family_dispatch_unknown(self):
        with pytest.raises(ValueError):
            generators.family_for_sweep("nonexistent", 10)
