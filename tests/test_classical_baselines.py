"""Tests for the classical baselines: exact diameter, multi-source BFS,
2-approximation and the HPRW14-style 3/2-approximation."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.diameter_approx import (
    run_classical_two_approximation,
    run_hprw_preparation,
    run_hprw_three_halves_approximation,
)
from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.congest.network import Network
from repro.graphs import generators


class TestClassicalExactDiameter:
    def test_correct_on_small_graphs(self, small_graph, network_factory):
        network = network_factory(small_graph)
        result = run_classical_exact_diameter(network)
        assert result.diameter == small_graph.diameter()

    def test_correct_with_given_leader(self, network_factory):
        graph = generators.cycle_graph(11)
        network = network_factory(graph)
        result = run_classical_exact_diameter(network, leader=4)
        assert result.diameter == 5
        assert result.leader == 4

    def test_round_complexity_linear_in_n(self, network_factory):
        """The classical baseline runs in O(n) rounds (Table 1, row 1)."""
        for n in (15, 30, 45):
            graph = generators.cycle_graph(n)
            network = network_factory(graph)
            result = run_classical_exact_diameter(network)
            assert result.rounds <= 8 * n + 40

    def test_rounds_grow_roughly_linearly(self, network_factory):
        small = run_classical_exact_diameter(network_factory(generators.cycle_graph(12)))
        large = run_classical_exact_diameter(network_factory(generators.cycle_graph(48)))
        ratio = large.rounds / small.rounds
        assert 2.0 <= ratio <= 8.0

    def test_single_node(self, network_factory):
        network = network_factory(generators.path_graph(1))
        assert run_classical_exact_diameter(network).diameter == 0

    def test_two_nodes(self, network_factory):
        network = network_factory(generators.path_graph(2))
        assert run_classical_exact_diameter(network).diameter == 1


class TestMultiSourceBFS:
    def test_distances_match_oracle(self, small_graph, network_factory):
        network = network_factory(small_graph)
        sources = list(small_graph.nodes())[:3]
        result = run_multi_source_bfs(network, sources)
        for node in small_graph.nodes():
            for source in sources:
                assert result.distances[node][source] == small_graph.distance(source, node)

    def test_distance_to_set_and_nearest(self, network_factory):
        graph = generators.path_graph(10)
        network = network_factory(graph)
        result = run_multi_source_bfs(network, [0, 9])
        assert result.distance_to_set(4) == 4
        assert result.distance_to_set(7) == 2
        assert result.nearest_source(2) == 0
        assert result.nearest_source(8) == 9

    def test_eccentricity_of_source(self, network_factory):
        graph = generators.cycle_graph(8)
        network = network_factory(graph)
        result = run_multi_source_bfs(network, [0, 3])
        assert result.eccentricity_of_source(0) == 4
        assert result.eccentricity_of_source(3) == 4

    def test_empty_sources_rejected(self, network_factory):
        network = network_factory(generators.path_graph(4))
        with pytest.raises(ValueError):
            run_multi_source_bfs(network, [])

    def test_unknown_source_rejected(self, network_factory):
        network = network_factory(generators.path_graph(4))
        with pytest.raises(ValueError):
            run_multi_source_bfs(network, [17])

    def test_round_complexity_pipelined(self, network_factory):
        """k sources cost O(k + D) rounds, not O(k * D)."""
        graph = generators.path_graph(30)
        network = network_factory(graph)
        sources = list(range(0, 30, 3))
        result = run_multi_source_bfs(network, sources)
        k, diameter = len(sources), graph.diameter()
        assert result.metrics.rounds <= 4 * (k + diameter)
        assert result.metrics.rounds < k * diameter


class TestTwoApproximation:
    def test_estimate_within_factor_two(self, small_graph, network_factory):
        network = network_factory(small_graph)
        result = run_classical_two_approximation(network)
        diameter = small_graph.diameter()
        assert result.estimate <= diameter
        assert 2 * result.estimate >= diameter

    def test_round_complexity(self, network_factory):
        graph = generators.path_graph(40)
        network = network_factory(graph)
        result = run_classical_two_approximation(network)
        assert result.metrics.rounds <= 6 * graph.diameter() + 20


class TestHPRWPreparation:
    def test_ball_is_a_tree_ball_of_requested_size(self, network_factory):
        graph = generators.random_connected_gnp(24, 0.12, seed=3)
        network = network_factory(graph)
        preparation = run_hprw_preparation(network, s=6, seed=1)
        assert len(preparation.ball) >= min(6, graph.num_nodes)
        assert preparation.w in preparation.ball
        for node in preparation.ball:
            assert preparation.w_tree.distance[node] <= preparation.ball_radius

    def test_ball_is_parent_closed(self, network_factory):
        graph = generators.random_connected_gnp(20, 0.15, seed=4)
        network = network_factory(graph)
        preparation = run_hprw_preparation(network, s=5, seed=2)
        for node in preparation.ball:
            parent = preparation.w_tree.parent[node]
            assert parent is None or parent in preparation.ball

    def test_max_ecc_over_samples_is_correct(self, network_factory):
        graph = generators.cycle_graph(12)
        network = network_factory(graph)
        preparation = run_hprw_preparation(network, s=3, seed=7)
        expected = max(graph.eccentricity(v) for v in preparation.sampled_set)
        assert preparation.max_ecc_over_samples == expected

    def test_w_maximises_distance_to_samples(self, network_factory):
        graph = generators.path_graph(16)
        network = network_factory(graph)
        preparation = run_hprw_preparation(network, s=4, seed=5)
        distance_to_set = {
            node: min(graph.distance(node, s) for s in preparation.sampled_set)
            for node in graph.nodes()
        }
        assert distance_to_set[preparation.w] == max(distance_to_set.values())

    def test_invalid_s(self, network_factory):
        network = network_factory(generators.path_graph(6))
        with pytest.raises(ValueError):
            run_hprw_preparation(network, s=0)


class TestThreeHalvesApproximation:
    def test_estimate_bounds(self, small_graph, network_factory):
        network = network_factory(small_graph)
        result = run_hprw_three_halves_approximation(network, seed=11)
        diameter = small_graph.diameter()
        assert result.estimate <= diameter
        assert result.estimate >= math.floor(2 * diameter / 3)

    def test_estimate_bounds_multiple_seeds(self, network_factory):
        graph = generators.random_connected_gnp(26, 0.1, seed=9)
        diameter = graph.diameter()
        for seed in range(4):
            network = network_factory(graph)
            result = run_hprw_three_halves_approximation(network, seed=seed)
            assert math.floor(2 * diameter / 3) <= result.estimate <= diameter

    def test_sublinear_shape_on_star_like_graphs(self, network_factory):
        """On a small-diameter graph the 3/2-approx uses far fewer rounds
        than the exact O(n) baseline once n is moderately large."""
        graph = generators.star_graph(120)
        network = network_factory(graph)
        approx = run_hprw_three_halves_approximation(network, seed=2)
        exact = run_classical_exact_diameter(network_factory(generators.star_graph(120)))
        assert approx.estimate == 2
        assert approx.rounds < exact.rounds
