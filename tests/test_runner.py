"""Tests for the parallel batch-run subsystem (``repro.runner``).

The load-bearing property is determinism: everything that runs through the
:class:`repro.runner.batch.BatchRunner` must produce byte-identical results
serially and in parallel, worker failures must propagate, and the
per-worker caches must never change what is computed.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepRecord, run_sweep, run_sweep_grid, sweep_table
from repro.congest.network import Network
from repro.core.exact_diameter import quantum_exact_diameter
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.runner import (
    BatchRunner,
    BatchTaskError,
    EXACT,
    GraphSpec,
    SWEEP_ALGORITHMS,
    SweepAlgorithmInfo,
    build_graph_cached,
    clear_worker_caches,
    grid,
    resolve_algorithms,
    resolve_jobs,
    task_seed,
)


# Module-level task bodies: pool workers resolve callables by qualified
# name, so everything mapped in parallel must live at module scope.
def _square(task):
    return task * task


def _with_context(context, task):
    return context["offset"] + task


def _fail_on_three(task):
    if task == 3:
        raise ValueError("task three is broken")
    return task


def _oracle_kernel(graph):
    return graph.num_nodes, float(graph.diameter())


#: An exact-checked algorithm whose name does NOT contain "exact": the
#: correctness gate is the metadata flag, not the name.
_oracle = SweepAlgorithmInfo(_oracle_kernel, guarantee=EXACT)


def _estimate(graph):
    return 2, 1.0


class TestBatchRunner:
    def test_serial_map_preserves_order(self):
        runner = BatchRunner(jobs=1)
        assert runner.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_parallel_map_matches_serial(self):
        tasks = list(range(17))
        serial = BatchRunner(jobs=1).map(_square, tasks)
        parallel = BatchRunner(jobs=2).map(_square, tasks)
        assert serial == parallel

    def test_context_is_shipped_to_workers(self):
        context = {"offset": 100}
        serial = BatchRunner(jobs=1).map(_with_context, range(5), context=context)
        parallel = BatchRunner(jobs=2).map(_with_context, range(5), context=context)
        assert serial == parallel == [100, 101, 102, 103, 104]

    def test_worker_exception_propagates(self):
        # Pool failures are wrapped so the message pinpoints the failing
        # task: its repr plus the original exception type and text.
        with pytest.raises(BatchTaskError, match="task three is broken"):
            BatchRunner(jobs=2).map(_fail_on_three, range(8))
        with pytest.raises(BatchTaskError, match=r"task 3 failed: ValueError"):
            BatchRunner(jobs=2).map(_fail_on_three, range(8))

    def test_serial_exception_propagates(self):
        # Serial execution deliberately stays unwrapped: the original
        # exception keeps its full traceback.
        with pytest.raises(ValueError, match="task three is broken"):
            BatchRunner(jobs=1).map(_fail_on_three, range(8))

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=2, chunk_size=0)

    def test_task_seed_deterministic_and_distinct(self):
        a = task_seed(7, GraphSpec("cycle", 12), "classical_exact")
        b = task_seed(7, GraphSpec("cycle", 12), "classical_exact")
        c = task_seed(7, GraphSpec("cycle", 12), "two_approx")
        d = task_seed(8, GraphSpec("cycle", 12), "classical_exact")
        assert a == b
        assert len({a, c, d}) == 3


class TestGraphSpec:
    def test_build_is_deterministic(self):
        spec = GraphSpec("random_sparse", 30, seed=5)
        first, second = spec.build(), spec.build()
        assert first.nodes() == second.nodes()
        assert sorted(map(repr, first.edges())) == sorted(map(repr, second.edges()))

    def test_controlled_family_requires_diameter(self):
        with pytest.raises(ValueError):
            GraphSpec("controlled", 16).build()
        graph = GraphSpec("controlled", 16, diameter=4, seed=1).build()
        assert graph.diameter() == 4

    def test_worker_cache_returns_same_object(self):
        clear_worker_caches()
        spec = GraphSpec("cycle", 10)
        assert build_graph_cached(spec) is build_graph_cached(spec)
        clear_worker_caches()

    def test_grid_is_spec_major(self):
        specs = grid(["cycle", "path"], [8, 12])
        assert [s.family for s in specs] == ["cycle", "cycle", "path", "path"]
        assert [s.num_nodes for s in specs] == [8, 12, 8, 12]

    def test_labels(self):
        assert GraphSpec("cycle", 24).label == "cycle[24]"
        assert GraphSpec("controlled", 24, diameter=6).label == "controlled[24,D=6]"


class TestRunSweep:
    @staticmethod
    def _counting_graph(calls):
        """A graph that counts diameter-oracle calls on both paths: the
        legacy adjacency-map oracle and the compiled CSR view (which the
        sweep's lazy oracle uses)."""

        class CountingView:
            def __init__(self, view):
                self._view = view

            def diameter(self):
                calls.append("csr")
                return self._view.diameter()

            def __getattr__(self, name):
                return getattr(self._view, name)

        class CountingGraph(Graph):
            def diameter(self):
                calls.append("legacy")
                return super().diameter()

            def compile(self):
                return CountingView(super().compile())

        return CountingGraph(edges=generators.cycle_graph(8).edges())

    def test_lazy_oracle_skipped_without_exact_algorithms(self):
        calls = []
        graph = self._counting_graph(calls)
        records = run_sweep([("cycle", graph)], {"estimate": _estimate})
        assert not calls
        assert records[0].diameter is None
        assert records[0].correct is None

    def test_oracle_computed_once_per_graph_with_exact_algorithm(self):
        calls = []
        graph = self._counting_graph(calls)
        records = run_sweep(
            [("cycle", graph)],
            {"oracle": _oracle, "estimate": _estimate},
        )
        # Once by the sweep's lazy oracle (on the compiled view), once
        # inside the oracle kernel (which uses the legacy oracle).
        assert calls == ["csr", "legacy"]
        assert all(record.diameter == 4 for record in records)
        exact = [r for r in records if r.algorithm == "oracle"]
        assert all(r.correct for r in exact)

    def test_serial_and_parallel_records_identical(self):
        graphs = [
            ("cycle", generators.cycle_graph(10)),
            ("path", generators.path_graph(8)),
            ("star", generators.star_graph(9)),
        ]
        algorithms = {"oracle": _oracle, "estimate": _estimate}
        serial = run_sweep(graphs, algorithms, jobs=1)
        parallel = run_sweep(graphs, algorithms, jobs=2)
        assert serial == parallel

    def test_unpicklable_algorithms_degrade_to_serial(self):
        graphs = [("cycle", generators.cycle_graph(8))]
        algorithms = {"estimate": lambda graph: (2, 1.0)}  # not picklable
        records = run_sweep(graphs, algorithms, jobs=2)
        assert len(records) == 1
        assert records[0].rounds == 2

    def test_sweep_table_renders_missing_diameter_as_dash(self):
        records = [SweepRecord("cycle", "estimate", 10, None, 4, 1.0, None)]
        lines = sweep_table(records).splitlines()
        assert lines[-1].split() == ["cycle", "estimate", "10", "-", "4", "1", "-"]


class TestRunSweepGrid:
    def test_grid_serial_equals_parallel(self):
        specs = grid(["cycle", "path"], [10, 14])
        algorithms = resolve_algorithms(["classical_exact", "two_approx"])
        serial = run_sweep_grid(specs, algorithms, jobs=1, base_seed=3)
        parallel = run_sweep_grid(specs, algorithms, jobs=2, base_seed=3)
        assert serial == parallel
        assert len(serial) == len(specs) * len(algorithms)
        # Records come back cell-ordered: spec-major, algorithm-minor.
        assert [r.family for r in serial[:2]] == ["cycle[10]", "cycle[10]"]

    def test_exact_cells_are_checked_against_oracle(self):
        records = run_sweep_grid(
            grid(["cycle"], [12]), resolve_algorithms(["classical_exact"])
        )
        assert records[0].correct is True
        assert records[0].diameter == 6

    def test_mixed_sweep_stamps_diameter_on_every_cell(self):
        # When any algorithm needs the oracle, all records of the spec
        # carry it (same convention as run_sweep) ...
        records = run_sweep_grid(
            grid(["cycle"], [12]),
            resolve_algorithms(["classical_exact", "two_approx"]),
        )
        assert [r.diameter for r in records] == [6, 6]
        # ... and a sweep with no exact algorithm skips the oracle.
        records = run_sweep_grid(
            grid(["cycle"], [12]), resolve_algorithms(["two_approx"])
        )
        assert records[0].diameter is None

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown sweep algorithm"):
            resolve_algorithms(["nope"])
        assert set(resolve_algorithms(SWEEP_ALGORITHMS)) == set(SWEEP_ALGORITHMS)


class TestParallelQuantumEvaluation:
    def test_congest_oracle_parallel_equals_serial(self):
        graph = generators.clique_chain(3, 3)
        serial = quantum_exact_diameter(
            Network(graph, seed=1), oracle_mode="congest", seed=4
        )
        parallel = quantum_exact_diameter(
            Network(graph, seed=1), oracle_mode="congest", seed=4,
            runner=BatchRunner(jobs=2),
        )
        assert serial.diameter == parallel.diameter
        assert serial.counts == parallel.counts
        assert serial.metrics == parallel.metrics
        assert (
            serial.optimization.simulated_runs
            == parallel.optimization.simulated_runs
        )
        assert (
            serial.optimization.distinct_evaluations
            == parallel.optimization.distinct_evaluations
        )

    def test_single_item_search_space_not_double_counted(self):
        # BatchRunner.map runs a single task in-process, where the parent
        # observer already sees the runs; the framework must not replay
        # the deltas on top (would double-count simulated_runs).
        graph = generators.path_graph(1)
        serial = quantum_exact_diameter(
            Network(graph, seed=1), oracle_mode="congest", seed=4
        )
        parallel = quantum_exact_diameter(
            Network(graph, seed=1), oracle_mode="congest", seed=4,
            runner=BatchRunner(jobs=2),
        )
        assert (
            serial.optimization.simulated_runs
            == parallel.optimization.simulated_runs
        )
        assert (
            serial.optimization.simulated_rounds
            == parallel.optimization.simulated_rounds
        )

    def test_reference_oracle_ignores_runner(self):
        graph = generators.clique_chain(3, 3)
        serial = quantum_exact_diameter(
            Network(graph, seed=1), oracle_mode="reference", seed=4
        )
        parallel = quantum_exact_diameter(
            Network(graph, seed=1), oracle_mode="reference", seed=4,
            runner=BatchRunner(jobs=2),
        )
        assert serial.diameter == parallel.diameter
        assert serial.metrics == parallel.metrics
