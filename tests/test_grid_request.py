"""Tests for the shared grid request (``repro.service.gridspec``).

The grid request is the byte-identity keystone of the experiment
service: ``repro sweep`` run locally and a daemon worker executing a
submitted job both construct a :class:`GridRequest` from the same flags
and run it through :func:`execute_grid_request`.  These tests pin the
properties that identity rests on: validation messages match the CLI's
historical ones, the seed streams derive (never store) from the user
seed, the JSON round-trip is lossless, and the three grid commands'
flag inventories cannot drift apart.
"""

from __future__ import annotations

import argparse

import pytest

from repro.analysis.sweep import run_sweep_grid
from repro.cli import build_parser
from repro.faults import FaultModel
from repro.runner import task_seed
from repro.service import GridRequest, execute_grid_request, fault_model_from_flags


def _request(**overrides) -> GridRequest:
    base = dict(
        families=("cycle",), sizes=(10,), algorithms=("classical_exact",)
    )
    base.update(overrides)
    return GridRequest(**base)


class TestValidation:
    def test_valid_request_passes(self):
        _request().validate()

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family 'bogus'"):
            _request(families=("bogus",)).validate()

    def test_controlled_requires_diameter(self):
        with pytest.raises(ValueError, match="requires --diameter"):
            _request(families=("controlled",)).validate()
        _request(families=("controlled",), diameter=4).validate()

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown sweep algorithm"):
            _request(algorithms=("bogus",)).validate()

    def test_unknown_quantum_problem(self):
        with pytest.raises(ValueError, match="unknown quantum problem"):
            _request(kind="quantum", algorithms=("bogus",)).validate()

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown grid kind"):
            _request(kind="banana").validate()

    def test_unknown_selections(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _request(engine="warp").validate()
        with pytest.raises(ValueError, match="unknown schedule backend"):
            _request(backend="warp").validate()
        with pytest.raises(ValueError, match="unknown compute tier"):
            _request(tier="warp").validate()

    def test_empty_grid_axes(self):
        with pytest.raises(ValueError, match="at least one family"):
            _request(families=()).validate()
        with pytest.raises(ValueError, match="at least one size"):
            _request(sizes=()).validate()
        with pytest.raises(ValueError, match="at least one algorithm"):
            _request(algorithms=()).validate()

    def test_nonpositive_size(self):
        with pytest.raises(ValueError, match="sizes must be >= 1"):
            _request(sizes=(0,)).validate()

    def test_unknown_dispatch(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            _request(dispatch="carrier-pigeon").validate()
        for name in ("inprocess", "multiprocessing", "remote"):
            _request(dispatch=name).validate()


class TestSeedStreams:
    def test_streams_derive_from_seed_and_differ(self):
        request = _request(seed=7)
        assert request.graph_seed() == task_seed(7, "sweep-graph-stream")
        assert request.base_seed() == task_seed(7, "sweep-algorithm-stream")
        assert request.graph_seed() != request.base_seed()
        assert request.graph_seed() != 7 and request.base_seed() != 7

    def test_streams_survive_json_round_trip(self):
        request = _request(seed=41)
        clone = GridRequest.from_dict(request.to_dict())
        assert clone.graph_seed() == request.graph_seed()
        assert clone.base_seed() == request.base_seed()


class TestRoundTrip:
    def test_plain_round_trip(self):
        request = _request(
            families=("cycle", "path"), sizes=(10, 12), seed=3, jobs=2,
            engine="sparse", backend="batched", tier="stdlib",
        )
        assert GridRequest.from_dict(request.to_dict()) == request

    def test_fault_model_round_trip(self):
        fault = FaultModel(loss=0.1, crash=0.05, timeout=400, seed=9)
        request = _request(fault=fault)
        clone = GridRequest.from_dict(request.to_dict())
        assert clone.fault == fault
        assert clone == request

    def test_dispatch_round_trip(self):
        request = _request(dispatch="remote")
        clone = GridRequest.from_dict(request.to_dict())
        assert clone.dispatch == "remote"
        assert clone == request
        # absent key (a pre-dispatch payload) defaults to None
        data = _request().to_dict()
        del data["dispatch"]
        assert GridRequest.from_dict(data).dispatch is None

    def test_unknown_field_rejected(self):
        data = _request().to_dict()
        data["tir"] = "numpy"  # a typo must not silently drop a selection
        with pytest.raises(ValueError, match="unknown grid request fields"):
            GridRequest.from_dict(data)

    def test_sequences_normalise_to_tuples(self):
        request = GridRequest(
            families=["cycle"], sizes=[10], algorithms=["classical_exact"]
        )
        assert request == _request()
        assert hash(request) == hash(_request())


class TestFaultModelFromFlags:
    def test_all_defaults_is_none(self):
        assert fault_model_from_flags() is None

    def test_any_probability_builds_model(self):
        model = fault_model_from_flags(loss=0.25, seed=3)
        assert isinstance(model, FaultModel)
        assert model.loss == 0.25 and model.seed == 3

    def test_timeout_alone_builds_model(self):
        model = fault_model_from_flags(timeout=128)
        assert model is not None and model.timeout == 128


class TestExecution:
    def test_execute_matches_direct_run(self):
        request = _request(families=("cycle", "path"), sizes=(10, 12), seed=3)
        records = execute_grid_request(request)
        direct = run_sweep_grid(
            request.specs(),
            request.algorithm_table(),
            base_seed=request.base_seed(),
        )
        assert records == direct

    def test_process_defaults_restored(self):
        from repro.engine import get_default_engine
        from repro.tier import get_default_tier

        engine_before = get_default_engine()
        tier_before = get_default_tier()
        execute_grid_request(_request(engine="sparse", tier="stdlib"))
        assert get_default_engine() == engine_before
        assert get_default_tier() == tier_before


def _grid_subparsers():
    """The sweep / quantum / jobs-submit subparsers of the real CLI."""
    parser = build_parser()
    subs = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    jobs_subs = next(
        action for action in subs.choices["jobs"]._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    return subs.choices["sweep"], subs.choices["quantum"], jobs_subs.choices["submit"]


def _flags(sub: argparse.ArgumentParser) -> set:
    return {
        option
        for action in sub._actions
        for option in action.option_strings
    } - {"-h", "--help"}


class TestFlagInventories:
    """Regression for the historical drift between the grid commands.

    Before the shared builder, ``sweep`` and ``quantum`` each maintained
    a hand-copied flag list (and ``quantum`` had already drifted: no
    ``--engine``, divergent help text).  The three grid commands must
    expose identical flag inventories modulo their documented deltas.
    """

    #: The dispatch *connection* flags live only on the locally-executing
    #: grid commands: a submitted job talks to the daemon's coordinator,
    #: so ``jobs submit`` carries just the shared ``--dispatch`` name.
    DISPATCH_CONNECTION = {
        "--coordinator", "--dispatch-port", "--dispatch-workers",
        "--dispatch-wait", "--shard-policy", "--straggler-deadline",
        "--dispatch-stats",
    }

    SWEEP_ONLY = {"--algorithms", "--out", "--resume"} | DISPATCH_CONNECTION
    QUANTUM_ONLY = (
        {"--problems", "--list", "--out", "--resume"} | DISPATCH_CONNECTION
    )
    SUBMIT_ONLY = {"--algorithms", "--url", "--tenant", "--watch"}

    def test_shared_inventories_identical(self):
        sweep, quantum, submit = map(_flags, _grid_subparsers())
        assert sweep - self.SWEEP_ONLY == quantum - self.QUANTUM_ONLY
        assert sweep - self.SWEEP_ONLY == submit - self.SUBMIT_ONLY

    def test_documented_deltas_exact(self):
        sweep, quantum, submit = map(_flags, _grid_subparsers())
        shared = sweep - self.SWEEP_ONLY
        assert sweep - shared == self.SWEEP_ONLY
        assert quantum - shared == self.QUANTUM_ONLY
        assert submit - shared == self.SUBMIT_ONLY

    def test_shared_flags_cover_grid_request(self):
        # every GridRequest field a flag can set is reachable from the
        # shared inventory (fault flags feed the single `fault` field)
        sweep, _, _ = map(_flags, _grid_subparsers())
        for flag in ("--families", "--sizes", "--diameter", "--seed",
                     "--jobs", "--engine", "--backend", "--tier",
                     "--loss", "--crash", "--fault-seed"):
            assert flag in sweep
