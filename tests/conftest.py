"""Shared fixtures: small graphs with known diameters, and networks."""

from __future__ import annotations

import pytest

from repro.congest.network import Network
from repro.graphs import generators
from repro.graphs.graph import Graph


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: wall-clock-heavy end-to-end scenarios (subprocess kills)"
    )


@pytest.fixture
def path10() -> Graph:
    """A path on 10 nodes (diameter 9)."""
    return generators.path_graph(10)


@pytest.fixture
def cycle9() -> Graph:
    """A cycle on 9 nodes (diameter 4)."""
    return generators.cycle_graph(9)


@pytest.fixture
def star8() -> Graph:
    """A star on 8 nodes (diameter 2)."""
    return generators.star_graph(8)


@pytest.fixture
def clique_chain_12() -> Graph:
    """Three 4-cliques in a chain (12 nodes, diameter 5)."""
    return generators.clique_chain(3, 4)


@pytest.fixture
def random_graph_20() -> Graph:
    """A connected sparse random graph on 20 nodes."""
    return generators.random_connected_gnp(20, p=0.15, seed=7)


@pytest.fixture
def tree15() -> Graph:
    """A random tree on 15 nodes."""
    return generators.random_tree(15, seed=3)


SMALL_GRAPH_BUILDERS = {
    "path7": lambda: generators.path_graph(7),
    "cycle8": lambda: generators.cycle_graph(8),
    "star6": lambda: generators.star_graph(6),
    "complete5": lambda: generators.complete_graph(5),
    "grid3x4": lambda: generators.grid_graph(3, 4),
    "tree_b2_d3": lambda: generators.balanced_tree(2, 3),
    "clique_chain": lambda: generators.clique_chain(3, 3),
    "lollipop": lambda: generators.lollipop_graph(4, 4),
    "barbell": lambda: generators.barbell_graph(3, 2),
    "random_sparse": lambda: generators.random_connected_gnp(14, 0.15, seed=11),
    "random_tree": lambda: generators.random_tree(12, seed=5),
}


@pytest.fixture(params=sorted(SMALL_GRAPH_BUILDERS))
def small_graph(request) -> Graph:
    """Parametrised fixture running a test over a zoo of small graphs."""
    return SMALL_GRAPH_BUILDERS[request.param]()


@pytest.fixture
def network_factory():
    """Factory building a CONGEST network with a deterministic seed."""

    def build(graph: Graph, **kwargs) -> Network:
        kwargs.setdefault("seed", 0)
        return Network(graph, **kwargs)

    return build
