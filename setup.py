"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs work in offline environments whose tooling lacks
the ``wheel`` package (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
