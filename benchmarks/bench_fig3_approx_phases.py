"""Figure 3: the two phases of the quantum 3/2-approximation (Theorem 4).

The algorithm's cost is O~(n/s + D) for the classical preparation plus
O~(sqrt(s D) + D) for the quantum optimization over the ball R; the paper
balances the two with s = Theta(n^{2/3} D^{-1/3}).  The harness sweeps s on
a fixed graph, measures both phases, and reports (a) that the preparation
cost falls with s while the quantum-phase cost grows with s, and (b) that
the balancing choice sits near the measured optimum (within the coarse grid
sampled).
"""

from __future__ import annotations

from bench_workloads import network_for, record

from repro.core.approx_diameter import (
    default_s_parameter,
    quantum_three_halves_diameter,
)
from repro.graphs import generators


def _sweep(graph, s_values):
    rows = []
    for s in s_values:
        result = quantum_three_halves_diameter(
            graph, s=s, oracle_mode="reference", seed=6
        )
        quantum_phase = result.optimization.metrics.rounds
        preparation = result.metrics.rounds - quantum_phase
        rows.append(
            {
                "s": s,
                "ball": result.ball_size,
                "preparation_rounds": preparation,
                "quantum_rounds": quantum_phase,
                "total_rounds": result.metrics.rounds,
                "estimate_ok": result.estimate <= graph.compile().diameter(),
            }
        )
    return rows


def test_phase_tradeoff_and_balancing_choice(run_once, benchmark):
    graph = generators.diameter_controlled_graph(120, 6, seed=3)
    s_values = (2, 4, 8, 16, 32, 64)
    rows = run_once(_sweep, graph, s_values)
    balanced_s = default_s_parameter(graph.num_nodes, graph.compile().diameter())
    totals = {row["s"]: row["total_rounds"] for row in rows}
    best_s = min(totals, key=totals.get)
    record(
        benchmark,
        preparation_rounds=[row["preparation_rounds"] for row in rows],
        quantum_rounds=[row["quantum_rounds"] for row in rows],
        total_rounds=[row["total_rounds"] for row in rows],
        s_values=list(s_values),
        balanced_s=balanced_s,
        empirically_best_s=best_s,
        estimates_valid=all(row["estimate_ok"] for row in rows),
    )
    assert all(row["estimate_ok"] for row in rows)
    # The trade-off of Figure 3: the quantum phase cost grows with s (larger
    # ball to amplify over), while the preparation phase does not -- its
    # sampling density (log n)/s, and hence |S|, shrinks.
    assert rows[-1]["quantum_rounds"] >= rows[0]["quantum_rounds"]
    assert rows[-1]["preparation_rounds"] <= rows[0]["preparation_rounds"]
    # At simulable sizes the constants of the quantum phase dominate, so the
    # empirical optimum sits at a smaller s than the asymptotic balancing
    # point; both are reported above.  The asymptotic choice must still be
    # within the sampled range.
    assert min(s_values) <= balanced_s <= max(s_values)
