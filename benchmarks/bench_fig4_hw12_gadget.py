"""Figure 4 / Theorem 8: the HW12 gadget G_n(x, y).

Claims to reproduce: the construction is a (Theta(n), Theta(n^2), 2, 3)-
reduction -- the number of nodes and cut edges grow linearly in the size
parameter while the encodable input length grows quadratically, and the
diameter of G_n(x, y) is 2 exactly when the inputs are disjoint and 3 when
they intersect.  The harness verifies the promise on sampled instances
across sizes and reports the parameter scaling.
"""

from __future__ import annotations

from bench_workloads import record

from repro.analysis.fitting import fit_power_law
from repro.lowerbounds.disjointness import (
    random_disjoint_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import hw12_reduction, verify_reduction_on_instance


def _measure(sizes, instances_per_size=3):
    rows = []
    for s in sizes:
        reduction = hw12_reduction(s)
        all_ok = True
        for seed in range(instances_per_size):
            x, y = random_disjoint_instance(reduction.input_length, seed=seed)
            check = verify_reduction_on_instance(reduction, x, y)
            all_ok &= check.satisfied and check.diameter == 2
            x, y = random_intersecting_instance(reduction.input_length, seed=seed)
            check = verify_reduction_on_instance(reduction, x, y)
            all_ok &= check.satisfied and check.diameter == 3
        rows.append(
            {
                "s": s,
                "n": reduction.num_nodes,
                "k": reduction.input_length,
                "b": reduction.cut_edges,
                "promise_ok": all_ok,
            }
        )
    return rows


def test_hw12_gadget_promise_and_parameter_scaling(run_once, benchmark):
    rows = run_once(_measure, (2, 3, 4, 6, 8))
    k_fit = fit_power_law([row["n"] for row in rows], [row["k"] for row in rows])
    b_fit = fit_power_law([row["n"] for row in rows], [row["b"] for row in rows])
    record(
        benchmark,
        promise_holds=all(row["promise_ok"] for row in rows),
        input_length_exponent_vs_n=round(k_fit.exponent, 3),
        expected_input_length_exponent=2.0,
        cut_exponent_vs_n=round(b_fit.exponent, 3),
        expected_cut_exponent=1.0,
    )
    assert all(row["promise_ok"] for row in rows)
    assert 1.7 <= k_fit.exponent <= 2.3
    assert 0.8 <= b_fit.exponent <= 1.2
