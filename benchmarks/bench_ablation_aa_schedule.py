"""Ablation 3 (DESIGN.md): the amplitude-amplification budget constant.

Corollary 1's query budget is O(sqrt(log(1/delta) / eps)) with a hidden
constant; the simulation exposes it (``budget_constant``).  The ablation
sweeps the constant and measures the trade-off the paper's analysis implies:
a larger budget increases the round count linearly but pushes the success
probability towards 1, while a too-small budget makes the optimization stop
before it has amplified the maximisers.
"""

from __future__ import annotations

from bench_workloads import record

from repro.core.exact_diameter import quantum_exact_diameter
from repro.graphs import generators


def _measure(constants, seeds):
    graph = generators.clique_chain(5, 4)
    truth = graph.compile().diameter()
    rows = []
    for constant in constants:
        hits = 0
        total_rounds = 0
        for seed in seeds:
            result = quantum_exact_diameter(
                graph, oracle_mode="reference", seed=seed,
                budget_constant=constant, delta=0.1,
            )
            hits += result.diameter == truth
            total_rounds += result.rounds
        rows.append(
            {
                "budget_constant": constant,
                "success_rate": hits / len(seeds),
                "mean_rounds": total_rounds / len(seeds),
            }
        )
    return rows


def test_amplification_budget_ablation(run_once, benchmark):
    rows = run_once(_measure, (0.5, 1.0, 2.0, 4.0, 8.0), range(8))
    record(
        benchmark,
        budget_constants=[row["budget_constant"] for row in rows],
        success_rates=[round(row["success_rate"], 2) for row in rows],
        mean_rounds=[round(row["mean_rounds"]) for row in rows],
    )
    # Rounds grow monotonically (within noise) with the budget constant.
    assert rows[-1]["mean_rounds"] > rows[0]["mean_rounds"]
    # The generous budget reaches a high success rate, at least as good as
    # the smallest budget's.
    assert rows[-1]["success_rate"] >= 0.75
    assert rows[-1]["success_rate"] >= rows[0]["success_rate"]
