"""Benchmark: batch-runner scaling and engine hot-path before/after.

Two measurements, written to ``BENCH_runner.json`` next to the repository
root so later PRs can track the perf trajectory (sibling of
``BENCH_engine.json``):

* **Across-run parallelism** -- a Table-1-style grid (several graph
  families and sizes, three algorithms per point) executed through
  :func:`repro.analysis.sweep.run_sweep_grid`, serially and with
  ``--jobs`` workers.  The records must be byte-identical; only the
  wall-clock may differ.  The achievable speedup is bounded by the
  machine: on an N-core box the ideal is ~min(jobs, N), and on a 1-core
  box parallel ~= serial (the report records ``cpu_count`` so the number
  can be interpreted).
* **Hot-path optimization** -- the per-run transport work this PR
  optimised, measured before/after *in the same process*: the legacy
  ``(type, repr(payload))`` memo keying and per-message ``has_edge``
  delivery versus the current hash-first value-tier cache and prebound
  neighbour sets.  The "before" path is replicated faithfully by
  :class:`LegacyTransport` below and injected into the same engine.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py [--jobs 4] [--smoke]

or through pytest (asserts record identity always, and the parallel
speedup only on machines with enough cores to make it physically
possible)::

    PYTHONPATH=src python -m pytest benchmarks/bench_runner_scaling.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.analysis.sweep import run_sweep_grid
from repro.congest.message import message_size_bits
from repro.congest.network import Network
from repro.engine.engine import ExecutionEngine
from repro.engine.scheduler import make_scheduler
from repro.engine.transport import Transport
from repro.graphs import generators
from repro.runner import BatchRunner, GraphSpec, resolve_algorithms

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_runner.json",
)

#: Worker count of the headline parallel measurement.
DEFAULT_JOBS = 4

#: The Table-1-style grid: families x sizes, three algorithms per point.
GRID_FAMILIES = ("controlled", "clique_chain", "cycle")
GRID_SIZES = (48, 72, 96)
SMOKE_SIZES = (24, 32)
GRID_ALGORITHMS = ("classical_exact", "two_approx", "hprw_three_halves")


def _grid_specs(sizes):
    return tuple(
        GraphSpec(
            family=family,
            num_nodes=n,
            diameter=6 if family == "controlled" else None,
            seed=1,
        )
        for family in GRID_FAMILIES
        for n in sizes
    )


def _time_grid(specs, algorithms, jobs):
    runner = BatchRunner(jobs=jobs)
    start = time.perf_counter()
    records = run_sweep_grid(specs, algorithms, runner=runner, base_seed=1)
    return time.perf_counter() - start, records


class LegacyTransport(Transport):
    """The pre-optimization transport, for the before/after measurement.

    Replicates the seed engine's hot path: memo keyed by
    ``(type, repr(payload))`` for every payload, and a ``graph.has_edge``
    call per message instead of a prebound neighbour set.
    """

    def measure(self, payload):
        try:
            key = (payload.__class__, repr(payload))
        except Exception:
            return message_size_bits(payload)
        cache = self._size_cache
        size = cache.get(key)
        if size is None:
            size = message_size_bits(payload)
            if len(cache) < self.size_cache_limit:
                cache[key] = size
        return size

    def deliver(self, round_number, sender, outbox, next_inboxes, pipeline,
                inbox_pool=None):
        from repro.congest.errors import BandwidthExceededError, ProtocolError

        graph = self.graph
        budget = self.bandwidth_bits
        for target, payload in outbox.items():
            if not graph.has_edge(sender, target):
                raise ProtocolError(
                    f"node {sender!r} tried to send to non-neighbour {target!r}"
                )
            size = self.measure(payload)
            violation = size > budget
            pipeline.on_message(round_number, sender, target, payload, size,
                                violation)
            if violation and self.strict_bandwidth:
                raise BandwidthExceededError(
                    f"round {round_number}: node {sender!r} sent {size} bits "
                    f"to {target!r} (budget {budget} bits)"
                )
            inbox = next_inboxes.get(target)
            if inbox is None:
                inbox = next_inboxes[target] = {}
            inbox[sender] = payload


def _network_with_transport(graph, transport_cls):
    network = Network(graph, engine="dense")
    transport = transport_cls(
        network.graph, network.bandwidth_bits, network.strict_bandwidth
    )
    network._engine = ExecutionEngine(
        network, make_scheduler("dense"), transport=transport
    )
    return network


def _time_traffic_workload(scale, transport_cls, repeats=3):
    """Wall-clock of two message-heavy workloads with the given transport.

    The transport's share of the round loop grows with messages per round,
    so the before/after comparison uses dense-traffic workloads: BFS on a
    complete graph (every edge busy every round) and pipelined
    multi-source BFS on a clique chain (wide waves for many rounds).
    """
    complete = generators.complete_graph(scale)
    chain = generators.clique_chain(num_cliques=scale // 3, clique_size=6)
    sources = chain.nodes()[:8]
    best = float("inf")
    results = None
    for _ in range(repeats):
        complete_net = _network_with_transport(complete, transport_cls)
        chain_net = _network_with_transport(chain, transport_cls)
        start = time.perf_counter()
        tree = run_bfs_tree(complete_net, complete.nodes()[0])
        multi = run_multi_source_bfs(chain_net, sources)
        best = min(best, time.perf_counter() - start)
        results = (tree, multi)
    return best, results


def _time_measure_keying(repeats=200_000):
    """Key-path microbenchmark: legacy repr keying vs the value tier."""
    payloads = [("bfs", 5), ("w", 3, 7), ("d-is", 12), 5, "token",
                ("bfs", 6), None, ("w", 2, 9)]
    graph = generators.path_graph(4)
    timings = {}
    for label, transport_cls in (("legacy", LegacyTransport),
                                 ("optimized", Transport)):
        transport = transport_cls(graph, 64, True)
        measure = transport.measure
        for payload in payloads:  # warm the cache: steady-state keying cost
            measure(payload)
        start = time.perf_counter()
        for _ in range(repeats):
            for payload in payloads:
                measure(payload)
        timings[label] = time.perf_counter() - start
    return timings


def run_benchmark(jobs: int = DEFAULT_JOBS, smoke: bool = False) -> dict:
    """Measure grid scaling and the hot path; return the report."""
    report = {
        "cpu_count": os.cpu_count() or 1,
        "jobs": jobs,
        "smoke": smoke,
    }

    # Part 1: the Table-1-style grid, serial vs --jobs.
    specs = _grid_specs(SMOKE_SIZES if smoke else GRID_SIZES)
    algorithms = resolve_algorithms(GRID_ALGORITHMS)
    serial_seconds, serial_records = _time_grid(specs, algorithms, jobs=1)
    parallel_seconds, parallel_records = _time_grid(specs, algorithms, jobs=jobs)
    if serial_records != parallel_records:
        raise AssertionError("parallel sweep records differ from serial records")
    report["grid"] = {
        "families": list(GRID_FAMILIES),
        "sizes": list(SMOKE_SIZES if smoke else GRID_SIZES),
        "algorithms": list(GRID_ALGORITHMS),
        "tasks": len(specs) * len(GRID_ALGORITHMS),
        "records": len(serial_records),
        "records_identical": True,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "ideal_speedup": min(jobs, os.cpu_count() or 1),
    }

    # Part 2: the hot path, before/after on the same workloads.
    scale = 48 if smoke else 120
    legacy_seconds, legacy_results = _time_traffic_workload(scale, LegacyTransport)
    optimized_seconds, optimized_results = _time_traffic_workload(scale, Transport)
    legacy_tree, legacy_multi = legacy_results
    optimized_tree, optimized_multi = optimized_results
    if legacy_tree.distance != optimized_tree.distance:
        raise AssertionError("hot-path optimization changed BFS distances")
    if legacy_tree.metrics != optimized_tree.metrics:
        raise AssertionError("hot-path optimization changed BFS metrics")
    if legacy_multi.distances != optimized_multi.distances:
        raise AssertionError("hot-path optimization changed MS-BFS distances")
    if legacy_multi.metrics != optimized_multi.metrics:
        raise AssertionError("hot-path optimization changed MS-BFS metrics")
    keying = _time_measure_keying(repeats=20_000 if smoke else 200_000)
    report["hot_path"] = {
        "workload_scale": scale,
        "legacy_seconds": round(legacy_seconds, 6),
        "optimized_seconds": round(optimized_seconds, 6),
        "end_to_end_speedup": round(
            legacy_seconds / max(optimized_seconds, 1e-9), 3
        ),
        "keying_legacy_seconds": round(keying["legacy"], 6),
        "keying_optimized_seconds": round(keying["optimized"], 6),
        "keying_speedup": round(
            keying["legacy"] / max(keying["optimized"], 1e-9), 3
        ),
        "results_identical": True,
    }

    # Part 3: cache effectiveness of one representative run.
    metrics = optimized_tree.metrics
    total = metrics.size_cache_hits + metrics.size_cache_misses
    report["size_cache"] = {
        "hits": metrics.size_cache_hits,
        "misses": metrics.size_cache_misses,
        "overflows": metrics.size_cache_overflows,
        "hit_rate": round(metrics.size_cache_hits / max(total, 1), 4),
    }

    report["headline_speedup"] = report["grid"]["speedup"]
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_parallel_records_identical_and_hot_path_faster():
    """Acceptance: byte-identical parallel records; hot path not slower.

    The >= 3x ``--jobs 4`` wall-clock criterion is additionally asserted
    when the machine has >= 4 cores (process parallelism cannot beat the
    core count, so on smaller boxes the report carries the number without
    the assertion).
    """
    report = run_benchmark()
    write_report(report)
    assert report["grid"]["records_identical"], report
    assert report["hot_path"]["results_identical"], report
    assert report["hot_path"]["keying_speedup"] >= 1.2, report
    if report["cpu_count"] >= 4:
        assert report["grid"]["speedup"] >= 3.0, report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help="worker processes for the parallel grid run")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--out", default=OUTPUT_PATH,
                        help="where to write the JSON report")
    arguments = parser.parse_args()
    outcome = run_benchmark(jobs=arguments.jobs, smoke=arguments.smoke)
    destination = write_report(outcome, arguments.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {destination}")
