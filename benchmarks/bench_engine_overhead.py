"""Micro-benchmark: dense vs sparse engine wall-clock on path-gadget BFS.

The sparse (event-driven) scheduler exists because BFS-wave algorithms keep
almost every node idle in almost every round: on a 2,000-node path the
wavefront is O(1) nodes wide while the dense engine wakes all 2,000 nodes
for each of the ~2,000 rounds.  This harness measures the wall-clock of the
same single-source BFS under both engines, checks the outputs and metrics
are identical, and writes a ``BENCH_engine.json`` next to the repository
root so later PRs can track the perf trajectory.

Run it standalone (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_engine_overhead.py

or through pytest (the ``test_`` wrapper asserts the >= 3x speedup the
engine refactor promises)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_overhead.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.congest.network import Network
from repro.graphs import generators

#: Size of the path gadget driving the headline measurement.
PATH_NODES = 2000

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_engine.json",
)


def _metric_snapshot(metrics):
    return {
        "rounds": metrics.rounds,
        "messages": metrics.messages,
        "total_bits": metrics.total_bits,
        "max_edge_bits_per_round": metrics.max_edge_bits_per_round,
        "max_node_memory_bits": metrics.max_node_memory_bits,
    }


def _time_bfs(graph, engine):
    network = Network(graph, engine=engine)
    start = time.perf_counter()
    tree = run_bfs_tree(network, graph.nodes()[0])
    elapsed = time.perf_counter() - start
    return elapsed, tree


def _time_multi_source(graph, sources, engine):
    network = Network(graph, engine=engine)
    start = time.perf_counter()
    result = run_multi_source_bfs(network, sources)
    elapsed = time.perf_counter() - start
    return elapsed, result


def run_benchmark(path_nodes: int = PATH_NODES, smoke: bool = False) -> dict:
    """Measure both engines on the two headline workloads; return the report."""
    if smoke:
        path_nodes = min(path_nodes, 400)
    num_cliques, clique_size = (12, 4) if smoke else (40, 5)
    report = {"smoke": smoke, "workloads": {}}

    # Workload 1: single-source BFS on the path gadget (the acceptance
    # criterion: sparse must be >= 3x faster with identical metrics).
    path = generators.path_graph(path_nodes)
    dense_seconds, dense_tree = _time_bfs(path, "dense")
    sparse_seconds, sparse_tree = _time_bfs(path, "sparse")
    if dense_tree.distance != sparse_tree.distance:
        raise AssertionError("engines disagree on BFS distances")
    if _metric_snapshot(dense_tree.metrics) != _metric_snapshot(sparse_tree.metrics):
        raise AssertionError("engines disagree on BFS metrics")
    report["workloads"]["bfs_path_gadget"] = {
        "nodes": path_nodes,
        "rounds": dense_tree.metrics.rounds,
        "messages": dense_tree.metrics.messages,
        "dense_seconds": round(dense_seconds, 6),
        "sparse_seconds": round(sparse_seconds, 6),
        "speedup": round(dense_seconds / max(sparse_seconds, 1e-9), 2),
    }

    # Workload 2: pipelined multi-source BFS on a clique chain (self-wake
    # driven queue draining; denser activity, smaller but real win).
    chain = generators.clique_chain(num_cliques=num_cliques, clique_size=clique_size)
    sources = chain.nodes()[:8]
    dense_seconds, dense_ms = _time_multi_source(chain, sources, "dense")
    sparse_seconds, sparse_ms = _time_multi_source(chain, sources, "sparse")
    if dense_ms.distances != sparse_ms.distances:
        raise AssertionError("engines disagree on multi-source BFS distances")
    if _metric_snapshot(dense_ms.metrics) != _metric_snapshot(sparse_ms.metrics):
        raise AssertionError("engines disagree on multi-source BFS metrics")
    report["workloads"]["multi_source_bfs_clique_chain"] = {
        "nodes": chain.num_nodes,
        "sources": len(sources),
        "rounds": dense_ms.metrics.rounds,
        "messages": dense_ms.metrics.messages,
        "dense_seconds": round(dense_seconds, 6),
        "sparse_seconds": round(sparse_seconds, 6),
        "speedup": round(dense_seconds / max(sparse_seconds, 1e-9), 2),
    }

    report["headline_speedup"] = report["workloads"]["bfs_path_gadget"]["speedup"]
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_sparse_engine_speedup():
    """The engine refactor's acceptance bar: >= 3x on path-gadget BFS."""
    report = run_benchmark()
    write_report(report)
    assert report["headline_speedup"] >= 3.0, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (no speedup bar enforced here)",
    )
    parser.add_argument(
        "--out",
        default=OUTPUT_PATH,
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    outcome = run_benchmark(smoke=args.smoke)
    destination = write_report(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
