"""Theorem 1 headline: exact quantum diameter in O~(sqrt(n D)) rounds.

End-to-end measurement of the paper's main result: correctness rate over
random seeds (the paper claims success probability 1 - 1/poly(n); the
simulation reproduces the amplitude-amplification failure probability
faithfully), per-node memory (claimed O((log n)^2) qubits) and the round
scaling against sqrt(n D) compared with the classical Theta(n) baseline.
"""

from __future__ import annotations

import math

from bench_workloads import clique_chain_family, network_for, record

from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.analysis.fitting import fit_power_law, geometric_mean_ratio
from repro.core.complexity import classical_exact_upper, quantum_exact_upper
from repro.core.exact_diameter import quantum_exact_diameter


def _correctness_trials(graph, seeds):
    truth = graph.compile().diameter()
    hits = 0
    for seed in seeds:
        result = quantum_exact_diameter(graph, oracle_mode="reference", seed=seed, delta=0.05)
        hits += result.diameter == truth
    return hits, len(seeds)


def test_theorem1_correctness_rate_and_memory(run_once, benchmark):
    def measure():
        graph = clique_chain_family((6,), clique_size=5)[0][1]
        hits, total = _correctness_trials(graph, range(10))
        sample = quantum_exact_diameter(graph, oracle_mode="reference", seed=0)
        log_n = math.ceil(math.log2(graph.num_nodes + 1))
        return {
            "hits": hits,
            "trials": total,
            "memory_bits": sample.memory_bits_per_node,
            "memory_bound_logn_sq": 10 * log_n ** 2,
            "evaluation_calls": sample.counts.evaluation_calls,
        }

    data = run_once(measure)
    record(benchmark, **data)
    assert data["hits"] >= 8
    assert data["memory_bits"] <= data["memory_bound_logn_sq"]


def test_theorem1_round_scaling_vs_classical(run_once, benchmark):
    def measure():
        rows = []
        for name, graph in clique_chain_family((3, 5, 8, 12, 16)):
            truth = graph.compile().diameter()
            quantum = quantum_exact_diameter(graph, oracle_mode="reference", seed=5)
            classical = run_classical_exact_diameter(network_for(graph))
            rows.append(
                {
                    "family": name,
                    "n": graph.num_nodes,
                    "D": truth,
                    "quantum_rounds": quantum.rounds,
                    "classical_rounds": classical.rounds,
                }
            )
        return rows

    rows = run_once(measure)
    nd = [row["n"] * row["D"] for row in rows]
    quantum_fit = fit_power_law(nd, [row["quantum_rounds"] for row in rows])
    classical_fit = fit_power_law(
        [row["n"] for row in rows], [row["classical_rounds"] for row in rows]
    )
    # Constant-normalised comparison: measured rounds divided by the paper's
    # formula should be flat for the *matching* formula and drifting for the
    # mismatched one.
    quantum_normalised = [
        row["quantum_rounds"] / quantum_exact_upper(row["n"], row["D"]) for row in rows
    ]
    quantum_vs_classical_formula = [
        row["quantum_rounds"] / classical_exact_upper(row["n"]) for row in rows
    ]
    record(
        benchmark,
        quantum_exponent_vs_nD=round(quantum_fit.exponent, 3),
        expected=0.5,
        classical_exponent_vs_n=round(classical_fit.exponent, 3),
        quantum_over_sqrt_nD=[round(v, 1) for v in quantum_normalised],
        quantum_over_n=[round(v, 1) for v in quantum_vs_classical_formula],
        typical_constant_factor=round(
            geometric_mean_ratio(
                [row["quantum_rounds"] for row in rows],
                [quantum_exact_upper(row["n"], row["D"]) for row in rows],
            ),
            1,
        ),
    )
    assert 0.3 <= quantum_fit.exponent <= 0.8
    assert classical_fit.exponent >= 0.8
    # The sqrt(nD)-normalised curve is flatter than the n-normalised curve.
    spread_nd = max(quantum_normalised) / min(quantum_normalised)
    spread_n = max(quantum_vs_classical_formula) / min(quantum_vs_classical_formula)
    assert spread_nd <= spread_n * 1.5
