"""Table 1, row "(3/2 - eps)-approximation" (lower bounds).

Paper claim: any classical (3/2 - eps)-approximation needs Omega~(n) rounds
[HW12, ACHK16, BK17], while quantumly the bound drops to Omega~(sqrt(n) + D)
(Theorem 2).  The hard instances behind both statements are the HW12 gadget
graphs, where distinguishing diameter 2 from 3 is exactly set disjointness:
any (3/2 - eps)-approximation must distinguish the two.

The harness verifies the gadget promise on sampled instances across sizes
(the reduction ingredient) and reports the classical-vs-quantum lower-bound
curves at those sizes (the numeric ingredient), together with the measured
cost of actually *solving* those instances with the classical baseline --
which indeed grows linearly, i.e. matches the classical lower bound's shape.
"""

from __future__ import annotations

from repro.runner import BatchRunner

from bench_workloads import network_for, persist_rows, record

from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.analysis.fitting import fit_power_law
from repro.core.complexity import classical_approx_lower
from repro.lowerbounds.bounds import theorem2_lower_bound
from repro.lowerbounds.disjointness import (
    random_disjoint_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import hw12_reduction, verify_reduction_on_instance


def _measure_instance(s):
    """One gadget size: verify the promise and solve the instance (batch task)."""
    reduction = hw12_reduction(s)
    x1, y1 = random_disjoint_instance(reduction.input_length, seed=s)
    x2, y2 = random_intersecting_instance(reduction.input_length, seed=s)
    check_disjoint = verify_reduction_on_instance(reduction, x1, y1)
    check_intersecting = verify_reduction_on_instance(reduction, x2, y2)
    graph = reduction.graph_for_inputs(x2, y2)
    solved = run_classical_exact_diameter(network_for(graph))
    return {
        "s": s,
        "n": reduction.num_nodes,
        "k": reduction.input_length,
        "promise_ok": check_disjoint.satisfied and check_intersecting.satisfied,
        "classical_solve_rounds": solved.rounds,
        "classical_lower": classical_approx_lower(reduction.num_nodes),
        "quantum_lower": theorem2_lower_bound(reduction.num_nodes),
    }


def _measure(sizes, jobs=1, store=None):
    rows = BatchRunner(jobs=jobs).map(_measure_instance, sizes)
    persist_rows(
        store, "table1_approx_lower", [f"s={s}" for s in sizes], rows
    )
    return rows


def test_three_halves_minus_eps_lower_bound_instances(run_once, benchmark, jobs, store):
    rows = run_once(_measure, (2, 4, 6, 8), jobs=jobs, store=store)
    ns = [row["n"] for row in rows]
    solve_fit = fit_power_law(ns, [row["classical_solve_rounds"] for row in rows])
    separation = [row["classical_lower"] / row["quantum_lower"] for row in rows]
    record(
        benchmark,
        promise_holds=all(row["promise_ok"] for row in rows),
        classical_solve_exponent_vs_n=round(solve_fit.exponent, 3),
        expected_exponent=1.0,
        classical_over_quantum_lower_bound=[round(value, 1) for value in separation],
        note="the gap n / sqrt(n) grows: quantum lower bound is genuinely weaker",
    )
    assert all(row["promise_ok"] for row in rows)
    assert solve_fit.exponent > 0.7
    assert separation[-1] > separation[0]
