"""Ablation 1 (DESIGN.md): why the DFS-scheduled pipelining matters.

The Evaluation procedure starts the wave of node v at round 2 tau'(v), which
Lemmas 2-4 show keeps the waves congestion-free with O(log n) memory.  This
ablation compares three variants of the multi-source distance computation:

* the paper's schedule (correct, one O(log n)-bit message per edge/round);
* the naive all-start-at-round-0 schedule with the same keep-one filtering
  rule: still within bandwidth, but the computed maxima become *wrong*;
* the naive schedule with forward-all semantics: correct values would
  require forwarding several wave messages per round, which blows past the
  CONGEST bandwidth budget (counted as violations in non-strict mode).
"""

from __future__ import annotations

from bench_workloads import record

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.dfs_traversal import run_full_euler_tour
from repro.algorithms.waves import WaveScheduleEntry, run_distance_waves
from repro.congest.network import Network
from repro.graphs import generators


def _measure():
    graph = generators.clique_chain(6, 4)
    truth = {
        node: max(graph.distance(u, node) for u in graph.nodes())
        for node in graph.nodes()
    }
    network = Network(graph, seed=0)
    tree = run_bfs_tree(network, 0)
    tour = run_full_euler_tour(network, tree)
    duration = 4 * graph.num_nodes + 2 * tree.depth + 2

    dfs_schedule = {
        node: WaveScheduleEntry(start_round=2 * time, tag=time)
        for node, time in tour.visit_time.items()
    }
    naive_schedule = {
        node: WaveScheduleEntry(start_round=0, tag=time)
        for node, time in tour.visit_time.items()
    }

    paper = run_distance_waves(network, dfs_schedule, duration)
    naive = run_distance_waves(network, naive_schedule, duration)
    loose_network = Network(graph, seed=0, strict_bandwidth=False)
    naive_forward_all = run_distance_waves(
        loose_network, naive_schedule, duration, forward_all=True
    )

    def errors(result):
        return sum(1 for node in graph.nodes() if result.max_distance[node] != truth[node])

    return {
        "paper_schedule_errors": errors(paper),
        "paper_schedule_max_edge_bits": paper.metrics.max_edge_bits_per_round,
        "paper_schedule_violations": paper.metrics.bandwidth_violations,
        "naive_schedule_errors": errors(naive),
        "naive_forward_all_errors": errors(naive_forward_all),
        "naive_forward_all_violations": naive_forward_all.metrics.bandwidth_violations,
        "naive_forward_all_max_edge_bits": naive_forward_all.metrics.max_edge_bits_per_round,
        "bandwidth_budget": network.bandwidth_bits,
    }


def test_dfs_scheduling_ablation(run_once, benchmark):
    data = run_once(_measure)
    record(benchmark, **data)
    # The paper's schedule: correct, within budget.
    assert data["paper_schedule_errors"] == 0
    assert data["paper_schedule_violations"] == 0
    # Naive simultaneous start with keep-one filtering: wrong values.
    assert data["naive_schedule_errors"] > 0
    # Naive start with forward-all: needs more bandwidth than the model allows.
    assert data["naive_forward_all_violations"] > 0
    assert data["naive_forward_all_max_edge_bits"] > data["bandwidth_budget"]
