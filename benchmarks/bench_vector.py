"""Micro-benchmark: the numpy compute tier vs the stdlib reference path.

The numpy tier (:mod:`repro.tier`) exists because the bitset regime of the
all-eccentricities oracle -- the correctness gate of every large sweep --
spends its time OR-ing reachability sets, and a 64-source batched
Takes-Kosters sweep over ``uint64`` words (:mod:`repro.graphs.vector`)
covers the same ground in a handful of vectorized passes.  The vector
execution engine rides along: a dense-semantics round loop that addresses
node inboxes by CSR index and delivers broadcasts in one batch.

This harness measures:

* the headline ``all_eccentricities`` oracle on an n>=4000 clique chain,
  numpy tier vs the stdlib dispatch (the acceptance bar: >= 5x), results
  asserted identical;
* the vector engine vs the dense engine on the clique-chain classical
  exact-diameter workload (every node active every round, so the sparse
  scheduler cannot help; the win is pure loop overhead);
* multi-source BFS across all three engines for context.

Results land in ``BENCH_vector.json`` next to the repository root.

Run it standalone (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_vector.py
    PYTHONPATH=src python benchmarks/bench_vector.py --smoke

or through pytest (the ``test_`` wrappers assert the speedup bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_vector.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.algorithms import run_classical_exact_diameter
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.congest.network import Network
from repro.graphs import generators
from repro.tier import set_default_tier

#: Node count of the headline all-eccentricities workload (>= 4000 so the
#: batched sweep amortises its block setup).
ORACLE_NODES = 4096

#: Acceptance bar for the headline oracle (full mode).
TARGET_SPEEDUP = 5.0

#: Relaxed bar asserted in ``--smoke`` mode (n=1500; smaller graphs
#: amortise the per-block numpy overhead less, and CI boxes are noisy).
SMOKE_TARGET_SPEEDUP = 1.5

#: Acceptance bar for the vector engine on the all-active workload.
ENGINE_TARGET_SPEEDUP = 1.15

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_vector.json",
)


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _time_tier(nodes: int, tier: str):
    """End-to-end oracle timing (fresh graph + compile) under ``tier``."""
    graph = generators.family_for_sweep("clique_chain", nodes, seed=3)
    previous = set_default_tier(tier)
    try:
        return _time(lambda: graph.compile().all_eccentricities())
    finally:
        set_default_tier(previous)


def _bench_all_eccentricities(nodes: int) -> dict:
    """Headline workload: the full eccentricity oracle, stdlib vs numpy.

    Both timings go through the public dispatch (``--tier`` flips exactly
    this switch), include ``compile()`` and run on freshly built graphs,
    so the reported speedup is what a sweep's correctness gate sees.
    """
    stdlib_seconds, stdlib_result = _time_tier(nodes, "stdlib")
    numpy_seconds, numpy_result = _time_tier(nodes, "numpy")
    if numpy_result != stdlib_result or list(numpy_result) != list(stdlib_result):
        raise AssertionError("numpy and stdlib eccentricity oracles disagree")
    graph = generators.family_for_sweep("clique_chain", nodes, seed=3)
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "family": "clique_chain",
        "diameter": max(stdlib_result.values()),
        "stdlib_seconds": round(stdlib_seconds, 6),
        "numpy_seconds": round(numpy_seconds, 6),
        "speedup": round(stdlib_seconds / max(numpy_seconds, 1e-9), 2),
    }


def _metric_snapshot(metrics):
    return {
        "rounds": metrics.rounds,
        "messages": metrics.messages,
        "total_bits": metrics.total_bits,
        "max_edge_bits_per_round": metrics.max_edge_bits_per_round,
        "max_node_memory_bits": metrics.max_node_memory_bits,
    }


def _bench_engine_exact_diameter(num_cliques: int, clique_size: int) -> dict:
    """Vector vs dense engine on the all-active exact-diameter workload.

    Classical exact diameter keeps every node broadcasting its distance
    table every round, so the sparse scheduler's idle-skip cannot help;
    the vector loop's index-addressed slots and batched broadcast delivery
    attack the per-node and per-message constant factors instead.
    """
    chain = generators.clique_chain(
        num_cliques=num_cliques, clique_size=clique_size
    )
    results = {}
    runs = {}
    for engine in ("dense", "sparse", "vector"):
        network = Network(chain, engine=engine)
        seconds, run = _time(lambda: run_classical_exact_diameter(network))
        runs[engine] = run
        results[f"{engine}_seconds"] = round(seconds, 6)
    if not (
        runs["dense"].diameter == runs["sparse"].diameter == runs["vector"].diameter
    ):
        raise AssertionError("engines disagree on the exact diameter")
    snapshots = {
        engine: _metric_snapshot(run.metrics) for engine, run in runs.items()
    }
    if not (snapshots["dense"] == snapshots["sparse"] == snapshots["vector"]):
        raise AssertionError("engines disagree on exact-diameter metrics")
    results.update(
        {
            "nodes": chain.num_nodes,
            "rounds": runs["dense"].metrics.rounds,
            "messages": runs["dense"].metrics.messages,
            "speedup": round(
                results["dense_seconds"]
                / max(results["vector_seconds"], 1e-9),
                2,
            ),
        }
    )
    return results


def _bench_engine_multi_source(
    num_cliques: int, clique_size: int, sources: int
) -> dict:
    """Pipelined multi-source BFS across all three engines (context row)."""
    chain = generators.clique_chain(
        num_cliques=num_cliques, clique_size=clique_size
    )
    roots = chain.nodes()[:sources]
    results = {}
    runs = {}
    for engine in ("dense", "sparse", "vector"):
        network = Network(chain, engine=engine)
        seconds, run = _time(lambda: run_multi_source_bfs(network, roots))
        runs[engine] = run
        results[f"{engine}_seconds"] = round(seconds, 6)
    if not (
        runs["dense"].distances == runs["sparse"].distances == runs["vector"].distances
    ):
        raise AssertionError("engines disagree on multi-source BFS distances")
    results.update(
        {
            "nodes": chain.num_nodes,
            "sources": sources,
            "rounds": runs["dense"].metrics.rounds,
            "messages": runs["dense"].metrics.messages,
            "speedup": round(
                results["dense_seconds"]
                / max(results["vector_seconds"], 1e-9),
                2,
            ),
        }
    )
    return results


def run_benchmark(smoke: bool = False) -> dict:
    """Measure all workloads; return the report."""
    oracle_nodes = 1500 if smoke else ORACLE_NODES
    num_cliques, clique_size = (25, 4) if smoke else (40, 5)
    ms_sources = 8 if smoke else 16
    report = {
        "smoke": smoke,
        "workloads": {
            "all_eccentricities_clique_chain": _bench_all_eccentricities(
                oracle_nodes
            ),
            "engine_exact_diameter": _bench_engine_exact_diameter(
                num_cliques, clique_size
            ),
            "engine_multi_source_bfs": _bench_engine_multi_source(
                num_cliques, clique_size, ms_sources
            ),
        },
    }
    report["headline_speedup"] = report["workloads"][
        "all_eccentricities_clique_chain"
    ]["speedup"]
    report["engine_speedup"] = report["workloads"]["engine_exact_diameter"][
        "speedup"
    ]
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_vector_oracle_speedup():
    """The numpy tier's acceptance bar: >= 5x on the n>=4000 clique-chain
    all-eccentricities oracle, byte-identical results (the identity is
    asserted inside the workload)."""
    report = run_benchmark()
    write_report(report)
    assert report["headline_speedup"] >= TARGET_SPEEDUP, report
    assert report["engine_speedup"] >= ENGINE_TARGET_SPEEDUP, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (relaxed speedup bar)",
    )
    parser.add_argument(
        "--out",
        default=OUTPUT_PATH,
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    destination = write_report(report, args.out)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {destination}")
    bar = SMOKE_TARGET_SPEEDUP if args.smoke else TARGET_SPEEDUP
    if report["headline_speedup"] < bar:
        print(
            f"FAIL: headline speedup {report['headline_speedup']}x "
            f"is below the {bar}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
