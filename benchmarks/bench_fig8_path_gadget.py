"""Figure 8 / Theorem 3: the path-subdivided gadget G'_n(x, y).

Claims to reproduce: subdividing each of the b = Theta(log n) cut edges of
the ACHK-style gadget into a path of d dummy nodes yields a graph on
n' = n + b d nodes whose diameter is d + 4 when the inputs are disjoint and
d + 5 when they intersect; combining the d-round information delay with the
bounded-round disjointness bound yields the Omega~(sqrt(n D)/s + D) lower
bound of Theorem 3, which matches the Theorem-1 upper bound for
polylogarithmic memory.  The harness verifies the diameter thresholds across
d and reports the lower-bound curve next to the Theorem-1 formula.
"""

from __future__ import annotations

import math

from bench_workloads import record

from repro.core.complexity import quantum_exact_upper
from repro.lowerbounds.bounds import theorem3_lower_bound
from repro.lowerbounds.disjointness import (
    random_disjoint_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import path_subdivided_reduction, verify_reduction_on_instance


def _measure(k, path_lengths):
    rows = []
    for d in path_lengths:
        reduction = path_subdivided_reduction(k, d)
        x1, y1 = random_disjoint_instance(k, seed=d)
        x2, y2 = random_intersecting_instance(k, seed=d)
        disjoint_check = verify_reduction_on_instance(reduction, x1, y1)
        intersecting_check = verify_reduction_on_instance(reduction, x2, y2)
        n_prime = reduction.num_nodes
        diameter = reduction.diameter_if_intersecting
        polylog_memory = max(1, math.ceil(math.log2(n_prime + 1)) ** 2)
        rows.append(
            {
                "d": d,
                "n_prime": n_prime,
                "b": reduction.cut_edges,
                "promise_ok": disjoint_check.satisfied and intersecting_check.satisfied,
                "diameter_disjoint": disjoint_check.diameter,
                "diameter_intersecting": intersecting_check.diameter,
                "theorem3_lower": theorem3_lower_bound(
                    n_prime, diameter, polylog_memory, cut_edges=reduction.cut_edges
                ),
                "theorem1_upper": quantum_exact_upper(n_prime, diameter),
            }
        )
    return rows


def test_path_gadget_diameters_and_theorem3_curve(run_once, benchmark):
    rows = run_once(_measure, k=8, path_lengths=(3, 5, 8, 12))
    tightness = [row["theorem1_upper"] / row["theorem3_lower"] for row in rows]
    record(
        benchmark,
        promise_holds=all(row["promise_ok"] for row in rows),
        diameters_disjoint=[row["diameter_disjoint"] for row in rows],
        diameters_intersecting=[row["diameter_intersecting"] for row in rows],
        expected_gap="always exactly one (d+4 vs d+5)",
        theorem1_over_theorem3=[round(value, 2) for value in tightness],
        note="the ratio stays polylogarithmic: Theorems 1 and 3 are tight together",
    )
    assert all(row["promise_ok"] for row in rows)
    for row in rows:
        assert row["diameter_intersecting"] == row["diameter_disjoint"] + 1 or (
            row["diameter_intersecting"] == row["d"] + 5
        )
    for row, ratio in zip(rows, tightness):
        slack = math.log2(row["n_prime"] + 1) ** 2
        assert 1.0 / slack <= ratio <= slack
