"""Micro-benchmark: sampling vs batched quantum schedule backends.

The quantum schedule engine (:mod:`repro.quantum.backend`) exists because
the amplitude-amplification / maximum-finding schedule is the hot loop of
every Theorem-7 run: the reference ``"sampling"`` backend rescans the
whole search space once per amplification round, while the ``"batched"``
backend precomputes the exact Grover rotation statistics (marked masses,
success probabilities, conditioned sampling lists) and serves every round
from per-threshold tables -- with **byte-identical** results for a fixed
seed (the identity is asserted inside every workload here, and proven
more broadly by ``tests/test_quantum_backends.py``).

This harness measures:

* the headline **exact-diameter schedule** (Theorem 1, windowed variant)
  on an ``n >= 500`` random sparse graph: the real Setup amplitudes,
  window values and ``P_opt >= d/2n`` promise of the paper's final
  algorithm, with the branch values pre-resolved so the timing isolates
  the schedule simulation itself (the acceptance bar: batched must be
  >= 5x sampling in full mode);
* the same schedule under the simple variant's ``P_opt >= 1/n`` promise
  (longer schedules, tracked over time);
* an **end-to-end** `quantum_exact_diameter` run per backend (reference
  oracle mode), asserting field-for-field result identity;
* a **registered-problem sweep**: every problem in
  :data:`repro.core.problems.QUANTUM_PROBLEMS` runs on the batched
  backend and must reproduce its sequential ground-truth oracle.

Results land in ``BENCH_quantum.json`` next to the repository root.

Run it standalone (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_quantum.py
    PYTHONPATH=src python benchmarks/bench_quantum.py --smoke

or through pytest (the ``test_`` wrapper asserts the speedup bar)::

    PYTHONPATH=src python -m pytest benchmarks/bench_quantum.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time

from repro.congest.network import Network
from repro.core.exact_diameter import (
    ORACLE_REFERENCE,
    VARIANT_SIMPLE,
    VARIANT_WINDOWED,
    ExactDiameterProblem,
    quantum_exact_diameter,
)
from repro.core.problems import QUANTUM_PROBLEMS
from repro.graphs import generators
from repro.quantum.backend import SCHEDULE_BACKENDS

#: Node count of the headline schedule workload (the issue bar: n >= 500).
SCHEDULE_NODES = 3000

#: Acceptance bar for the headline schedule speedup (full mode).
TARGET_SPEEDUP = 5.0

#: Relaxed bar asserted in ``--smoke`` mode (small search spaces amortise
#: the batched precomputation less, and CI boxes are noisy).
SMOKE_TARGET_SPEEDUP = 1.5

#: Measurement passes per workload; the reported speedup uses the
#: fastest pass per backend (standard min-time benchmarking).
REPEATS = 3

#: Schedule seeds simulated per measurement pass.
SCHEDULE_SEEDS = 15

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_quantum.json",
)


def _prepare_schedule(nodes: int, variant: str):
    """The real Theorem-1 schedule inputs on a random sparse graph.

    Runs the problem's Initialization once (sparse engine, fixed leader)
    and resolves every branch value through the reference oracle, so the
    backend timings below measure the schedule simulation alone -- the
    evaluation work is identical across backends by construction (both
    touch every branch exactly once).
    """
    graph = generators.family_for_sweep("random_sparse", nodes, seed=17)
    network = Network(graph, engine="sparse")
    problem = ExactDiameterProblem(
        network,
        variant=variant,
        oracle_mode=ORACLE_REFERENCE,
        leader=graph.nodes()[0],
    )
    problem.initialization()
    amplitudes = problem.setup_amplitudes()
    values = {item: problem.evaluate(item)[0] for item in amplitudes}
    return amplitudes, values, problem.optimum_mass_lower_bound(), problem


def _bench_schedule(nodes: int, variant: str, seeds: int) -> dict:
    """Time the maximum-finding schedule per backend; assert identity."""
    amplitudes, values, eps, problem = _prepare_schedule(nodes, variant)
    timings = {"sampling": [], "batched": []}
    for _ in range(REPEATS):
        results = {}
        for name in ("sampling", "batched"):
            backend = SCHEDULE_BACKENDS[name]
            start = time.perf_counter()
            results[name] = [
                backend.run_maximum_finding(
                    amplitudes,
                    values.__getitem__,
                    eps=eps,
                    delta=0.1,
                    rng=random.Random(seed),
                )
                for seed in range(seeds)
            ]
            timings[name].append(time.perf_counter() - start)
        if results["sampling"] != results["batched"]:
            raise AssertionError(
                "sampling and batched backends disagree on the "
                f"{variant} schedule (n={nodes})"
            )
    sampling = min(timings["sampling"])
    batched = min(timings["batched"])
    evaluation_calls = sum(
        result.evaluation_calls for result in results["sampling"]
    )
    return {
        "nodes": nodes,
        "variant": variant,
        "window_parameter": problem.window_parameter,
        "eps": eps,
        "seeds": seeds,
        "evaluation_calls_total": evaluation_calls,
        "sampling_seconds": round(sampling, 6),
        "batched_seconds": round(batched, 6),
        "speedup": round(sampling / max(batched, 1e-9), 2),
    }


def _bench_end_to_end(nodes: int) -> dict:
    """Full Theorem-1 runs per backend (reference oracle), identical output."""
    graph = generators.family_for_sweep("clique_chain", nodes, seed=5)
    timings = {}
    results = {}
    for name in ("sampling", "batched"):
        start = time.perf_counter()
        results[name] = quantum_exact_diameter(
            Network(graph), oracle_mode=ORACLE_REFERENCE, seed=11, backend=name
        )
        timings[name] = time.perf_counter() - start
    sampling, batched = results["sampling"], results["batched"]
    if (
        sampling.diameter != batched.diameter
        or sampling.rounds != batched.rounds
        or sampling.counts != batched.counts
        or sampling.optimization.simulated_runs
        != batched.optimization.simulated_runs
    ):
        raise AssertionError("end-to-end backend results diverge")
    return {
        "nodes": graph.num_nodes,
        "family": "clique_chain",
        "diameter": sampling.diameter,
        "rounds": sampling.rounds,
        "evaluation_calls": sampling.counts.evaluation_calls,
        "sampling_seconds": round(timings["sampling"], 6),
        "batched_seconds": round(timings["batched"], 6),
        "speedup": round(
            timings["sampling"] / max(timings["batched"], 1e-9), 2
        ),
    }


def _bench_problems(nodes: int) -> dict:
    """Every registered problem on the batched backend vs its oracle."""
    graph = generators.family_for_sweep("clique_chain", nodes, seed=9)
    rows = {}
    for name, info in sorted(QUANTUM_PROBLEMS.items()):
        start = time.perf_counter()
        run = info.solve(
            Network(graph, seed=1),
            oracle_mode=ORACLE_REFERENCE,
            seed=3,
            backend="batched",
        )
        seconds = time.perf_counter() - start
        truth = info.oracle(graph)
        if info.guarantee == "exact" and run.value != truth:
            raise AssertionError(
                f"problem {name!r} returned {run.value}, oracle says {truth}"
            )
        rows[name] = {
            "theorem": info.theorem,
            "value": run.value,
            "oracle": truth,
            "rounds": run.rounds,
            "evaluation_calls": run.counts.evaluation_calls,
            "seconds": round(seconds, 6),
        }
    return {"nodes": graph.num_nodes, "family": "clique_chain", "problems": rows}


def run_benchmark(smoke: bool = False) -> dict:
    """Measure all workloads; return the report."""
    schedule_nodes = 500 if smoke else SCHEDULE_NODES
    seeds = 5 if smoke else SCHEDULE_SEEDS
    e2e_nodes = 48 if smoke else 120
    problem_nodes = 24 if smoke else 36
    report = {
        "smoke": smoke,
        "workloads": {
            "schedule_windowed": _bench_schedule(
                schedule_nodes, VARIANT_WINDOWED, seeds
            ),
            "schedule_simple": _bench_schedule(
                max(200, schedule_nodes // 4), VARIANT_SIMPLE, max(2, seeds // 3)
            ),
            "exact_diameter_end_to_end": _bench_end_to_end(e2e_nodes),
            "registered_problems_batched": _bench_problems(problem_nodes),
        },
    }
    report["headline_speedup"] = report["workloads"]["schedule_windowed"]["speedup"]
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_quantum_schedule_speedup():
    """The schedule-engine acceptance bar: >= 5x batched-vs-sampling on
    the n=3000 exact-diameter (windowed) schedule, with byte-identical
    results (the identity is asserted inside every workload)."""
    report = run_benchmark()
    write_report(report)
    assert report["headline_speedup"] >= TARGET_SPEEDUP, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (relaxed speedup bar)",
    )
    parser.add_argument(
        "--out",
        default=OUTPUT_PATH,
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    destination = write_report(report, args.out)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {destination}")
    bar = SMOKE_TARGET_SPEEDUP if args.smoke else TARGET_SPEEDUP
    if report["headline_speedup"] < bar:
        print(
            f"FAIL: headline speedup {report['headline_speedup']}x "
            f"is below the {bar}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
