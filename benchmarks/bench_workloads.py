"""Shared workload builders and reporting helpers for the benchmarks.

Every benchmark regenerates one experiment of the paper (a Table-1 row, a
figure, or an ablation called out in DESIGN.md).  Measured quantities --
round counts, fitted exponents, ratios, crossovers -- are attached to the
pytest-benchmark ``extra_info`` so they appear in the benchmark report
(``pytest benchmarks/ --benchmark-only``); EXPERIMENTS.md mirrors them.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.congest.network import Network
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.runner import BatchRunner


def clique_chain_family(
    block_counts: Iterable[int], clique_size: int = 4
) -> List[Tuple[str, Graph]]:
    """Graphs with n growing and D growing slowly (D = 2 * blocks - 1)."""
    return [
        (
            f"clique_chain[{blocks}x{clique_size}]",
            generators.clique_chain(blocks, clique_size),
        )
        for blocks in block_counts
    ]


def fixed_diameter_family(
    sizes: Iterable[int], diameter: int, seed: int = 1
) -> List[Tuple[str, Graph]]:
    """Graphs with n growing and the diameter held fixed."""
    return [
        (
            f"fixedD[{n},D={diameter}]",
            generators.diameter_controlled_graph(n, diameter, seed=seed),
        )
        for n in sizes
    ]


def cycle_family(sizes: Iterable[int]) -> List[Tuple[str, Graph]]:
    """Graphs where the diameter grows linearly with n."""
    return [(f"cycle[{n}]", generators.cycle_graph(n)) for n in sizes]


def network_for(graph: Graph, seed: int = 0) -> Network:
    """A CONGEST network with the default O(log n) bandwidth."""
    return Network(graph, seed=seed)


def measure_grid(
    graphs: List[Tuple[str, Graph]],
    row: Callable[[Tuple[str, Graph]], dict],
    jobs: int = 1,
    store=None,
    label: Optional[str] = None,
) -> List[dict]:
    """Submit one ``row`` task per grid point through the batch runner.

    ``row`` must be a module-level (picklable) callable taking one
    ``(name, graph)`` pair and returning that point's measurement dict.
    Results are ordered by grid position, so ``--jobs N`` changes only the
    wall-clock, never the report.

    ``store`` (see the ``--store`` benchmark option) persists every
    measured row to the experiment store, keyed by ``label`` and the grid
    point's name, so harness output survives the process.
    """
    rows = BatchRunner(jobs=jobs).map(row, graphs)
    if store is not None:
        label = label or getattr(row, "__name__", "measure_grid")
        persist_rows(store, label, [name for name, _ in graphs], rows)
    return rows


def persist_rows(store, label: str, keys: List[str], rows: List[dict]) -> None:
    """Append measured benchmark rows to an experiment store (if any)."""
    if store is None:
        return
    for key, row in zip(keys, rows):
        store.append_row(f"{label}|{key}", row)


def record(benchmark, **info) -> None:
    """Attach measured values to the benchmark report and print them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
    summary = ", ".join(f"{key}={value}" for key, value in info.items())
    print(f"\n[{benchmark.name}] {summary}")
