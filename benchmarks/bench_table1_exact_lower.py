"""Table 1, row "Exact computation" (lower bounds).

Paper claims: classically Omega~(n) [FHW12]; quantumly Omega~(sqrt(n) + D)
(Theorem 2) and Omega~(sqrt(n D)/s + D) for s qubits of memory per node
(Theorem 3).  The lower bounds cannot be "measured" (they are impossibility
results), so this harness regenerates the two ingredients the proofs are
made of and places the implied curves next to the measured upper bounds:

* the reduction ingredient: running a real CONGEST diameter computation on
  HW12 gadget graphs and converting it into a two-party DISJ protocol
  (Theorem 10), verifying correctness and the message/qubit accounting;
* the numeric ingredient: evaluating the Theorem-2/Theorem-3 curves at the
  same (n, D) points as the measured Theorem-1 upper bound and checking the
  ordering (lower <= upper up to polylog) plus the Theorem 1 / Theorem 3
  tightness for polylogarithmic memory.
"""

from __future__ import annotations

import math

from bench_workloads import clique_chain_family, measure_grid, record

from repro.core.complexity import quantum_exact_upper
from repro.core.exact_diameter import quantum_exact_diameter
from repro.lowerbounds.bounds import theorem2_lower_bound, theorem3_lower_bound
from repro.lowerbounds.congest_to_two_party import (
    simulate_congest_algorithm_as_two_party_protocol,
)
from repro.lowerbounds.disjointness import (
    random_disjoint_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import hw12_reduction


def _reduction_measurements():
    rows = []
    for s in (2, 3, 4):
        reduction = hw12_reduction(s)
        for seed, maker in ((1, random_disjoint_instance), (2, random_intersecting_instance)):
            x, y = maker(reduction.input_length, seed=seed)
            outcome = simulate_congest_algorithm_as_two_party_protocol(reduction, x, y)
            rows.append(
                {
                    "s": s,
                    "k": reduction.input_length,
                    "b": reduction.cut_edges,
                    "correct": outcome.correct,
                    "rounds": outcome.rounds,
                    "messages": outcome.transcript.num_messages,
                    "qubits": outcome.transcript.total_bits,
                }
            )
    return rows


def test_theorem10_reduction_accounting(run_once, benchmark):
    rows = run_once(_reduction_measurements)
    record(
        benchmark,
        all_correct=all(row["correct"] for row in rows),
        max_messages_over_rounds=round(
            max(row["messages"] / row["rounds"] for row in rows), 2
        ),
        expected_messages_over_rounds="<= 2 (+1 final message)",
        max_qubits_per_round_per_cut_edge=round(
            max(row["qubits"] / (row["rounds"] * row["b"]) for row in rows), 2
        ),
    )
    assert all(row["correct"] for row in rows)
    assert all(row["messages"] <= 2 * row["rounds"] + 1 for row in rows)


def _bound_comparison_point(task):
    """One grid point of the bound comparison (batch task)."""
    name, graph = task
    result = quantum_exact_diameter(graph, oracle_mode="reference", seed=3)
    n, diameter = graph.num_nodes, graph.compile().diameter()
    polylog_memory = max(1, math.ceil(math.log2(n + 1)) ** 2)
    return {
        "family": name,
        "n": n,
        "D": diameter,
        "measured_upper": result.rounds,
        "theorem2_lower": theorem2_lower_bound(n, diameter),
        "theorem3_lower": theorem3_lower_bound(n, diameter, polylog_memory),
        "theorem1_formula": quantum_exact_upper(n, diameter),
    }


def _bound_comparison(jobs=1, store=None):
    return measure_grid(
        clique_chain_family((3, 6, 10)), _bound_comparison_point, jobs=jobs,
        store=store, label="table1_exact_lower_bounds",
    )


def test_lower_bounds_sit_below_measured_upper_bounds(run_once, benchmark, jobs, store):
    rows = run_once(_bound_comparison, jobs=jobs, store=store)
    worst_gap = max(row["theorem3_lower"] / row["measured_upper"] for row in rows)
    tightness = max(
        row["theorem1_formula"]
        / theorem3_lower_bound(row["n"], row["D"], max(1, math.ceil(math.log2(row["n"])) ** 2))
        for row in rows
    )
    record(
        benchmark,
        worst_lower_over_measured_upper=round(worst_gap, 3),
        theorem1_over_theorem3_max=round(tightness, 2),
        note="both ratios are O(polylog), i.e. the bounds are consistent and tight",
    )
    assert worst_gap <= 1.0  # measured upper bounds respect the lower bounds
    for row in rows:
        slack = math.log2(row["n"] + 1) ** 2
        assert row["theorem1_formula"] * slack >= row["theorem3_lower"]
        assert row["theorem3_lower"] * slack >= row["theorem1_formula"] - row["D"] * slack
