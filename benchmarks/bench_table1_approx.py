"""Table 1, row "3/2-approximation" (upper bounds).

Paper claim: classically O~(sqrt(n) + D) rounds [LP13, HPRW14]; quantumly
O~((n D)^(1/3) + D) rounds (Theorem 4).  This harness measures both
algorithms end-to-end, checks the 3/2 guarantee (floor(2D/3) <= estimate
<= D), and reports the scaling of the measured round counts against the
paper's formulas in the small-diameter regime where the cube-root term
dominates.
"""

from __future__ import annotations

import math

from bench_workloads import fixed_diameter_family, measure_grid, network_for, record

from repro.algorithms.diameter_approx import run_hprw_three_halves_approximation
from repro.analysis.fitting import fit_power_law
from repro.core.approx_diameter import quantum_three_halves_diameter
from repro.core.complexity import classical_approx_upper, quantum_approx_upper


def _measure_point(task):
    """One grid point: both 3/2-approximations on one graph (batch task)."""
    name, graph = task
    truth = graph.compile().diameter()
    classical = run_hprw_three_halves_approximation(network_for(graph), seed=3)
    quantum = quantum_three_halves_diameter(graph, oracle_mode="reference", seed=3)
    return {
        "family": name,
        "n": graph.num_nodes,
        "D": truth,
        "classical_rounds": classical.rounds,
        "quantum_rounds": quantum.rounds,
        "classical_ok": math.floor(2 * truth / 3) <= classical.estimate <= truth,
        "quantum_ok": math.floor(2 * truth / 3) <= quantum.estimate <= truth,
    }


def _measure(graphs, jobs=1, store=None, label="table1_approx"):
    return measure_grid(graphs, _measure_point, jobs=jobs, store=store, label=label)


def test_approximation_upper_bounds(run_once, benchmark, jobs, store):
    rows = run_once(
        _measure, fixed_diameter_family((32, 64, 128), diameter=6, seed=2), jobs=jobs,
        store=store, label="table1_approx_upper",
    )
    ns = [row["n"] for row in rows]
    classical_fit = fit_power_law(ns, [row["classical_rounds"] for row in rows])
    quantum_fit = fit_power_law(ns, [row["quantum_rounds"] for row in rows])
    normalised_quantum = [
        row["quantum_rounds"] / quantum_approx_upper(row["n"], row["D"]) for row in rows
    ]
    normalised_classical = [
        row["classical_rounds"] / classical_approx_upper(row["n"], row["D"])
        for row in rows
    ]
    record(
        benchmark,
        classical_exponent_vs_n=round(classical_fit.exponent, 3),
        expected_classical_exponent=0.5,
        quantum_exponent_vs_n=round(quantum_fit.exponent, 3),
        expected_quantum_exponent=round(1 / 3, 3),
        guarantee_holds=all(row["classical_ok"] and row["quantum_ok"] for row in rows),
        normalised_quantum_spread=round(
            max(normalised_quantum) / min(normalised_quantum), 2
        ),
        normalised_classical_spread=round(
            max(normalised_classical) / min(normalised_classical), 2
        ),
    )
    assert all(row["classical_ok"] and row["quantum_ok"] for row in rows)
    # Both approximation algorithms are sublinear in n (the separation from
    # the Omega~(n) exact lower bound); their relative ordering at these
    # sizes is dominated by constants, which EXPERIMENTS.md discusses.
    assert classical_fit.exponent <= 0.9
    assert quantum_fit.exponent <= 1.2
    largest = rows[-1]
    assert largest["classical_rounds"] <= 12 * largest["n"]
    assert largest["quantum_rounds"] <= 60 * largest["n"]


def test_approximation_cheaper_than_exact_classically(run_once, benchmark):
    """The motivation for the approximation row: on small-diameter graphs the
    3/2-approximation is far cheaper than exact computation."""
    from repro.algorithms.diameter_exact import run_classical_exact_diameter

    def measure():
        graph = fixed_diameter_family((160,), diameter=5, seed=4)[0][1]
        exact = run_classical_exact_diameter(network_for(graph))
        approx = run_hprw_three_halves_approximation(network_for(graph), seed=5)
        return exact.rounds, approx.rounds

    exact_rounds, approx_rounds = run_once(measure)
    record(
        benchmark,
        exact_rounds=exact_rounds,
        approx_rounds=approx_rounds,
        speedup=round(exact_rounds / approx_rounds, 2),
    )
    assert approx_rounds < exact_rounds
