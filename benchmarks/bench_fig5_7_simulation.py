"""Figures 5-7 / Theorem 11: the path network G_d and its two-party simulation.

Claims to reproduce: an r-round protocol over the path A - P_1 - ... - P_d - B
(bandwidth bw, at most s qubits of memory per intermediate node) can be
simulated by a two-party protocol with O(r / d) messages and O(r (bw + s))
bits of communication, producing the same output.  The harness runs a
concrete DISJ protocol over G_d for a range of d, converts it with the
block-staircase simulation, and reports how the message count and the total
communication scale.
"""

from __future__ import annotations

from bench_workloads import record

from repro.lowerbounds.disjointness import disjointness, random_instance
from repro.lowerbounds.simulation import (
    make_disjointness_path_protocol,
    run_path_protocol_directly,
    simulate_path_protocol_as_two_party,
)


def _measure(k, path_lengths):
    x, y = random_instance(k, seed=11)
    expected = disjointness(x, y)
    rows = []
    for d in path_lengths:
        protocol = make_disjointness_path_protocol(x, y, path_length=d)
        direct = run_path_protocol_directly(protocol)
        simulated = simulate_path_protocol_as_two_party(protocol)
        rows.append(
            {
                "d": d,
                "rounds": simulated.distributed_rounds,
                "messages": simulated.num_messages,
                "messages_times_d_over_r": simulated.num_messages
                * d
                / simulated.distributed_rounds,
                "communication_bits": simulated.total_communication_bits,
                "communication_over_r_bw_s": simulated.total_communication_bits
                / (
                    simulated.distributed_rounds
                    * (protocol.bandwidth_bits + simulated.max_relay_memory_bits)
                ),
                "outputs_match": (simulated.alice_output, simulated.bob_output)
                == direct
                and simulated.bob_output == expected,
            }
        )
    return rows


def test_staircase_simulation_scaling(run_once, benchmark):
    rows = run_once(_measure, 64, (2, 4, 8, 16))
    record(
        benchmark,
        outputs_match=all(row["outputs_match"] for row in rows),
        messages=[row["messages"] for row in rows],
        messages_times_d_over_r=[
            round(row["messages_times_d_over_r"], 2) for row in rows
        ],
        expected_messages_times_d_over_r="O(1) (Theorem 11)",
        communication_over_r_bw_s=[
            round(row["communication_over_r_bw_s"], 3) for row in rows
        ],
        expected_communication_ratio="O(1) (Theorem 11)",
    )
    assert all(row["outputs_match"] for row in rows)
    # Message count * d / r stays bounded by a small constant.
    assert all(row["messages_times_d_over_r"] <= 4.0 for row in rows)
    # Total communication stays within a constant factor of r * (bw + s).
    assert all(row["communication_over_r_bw_s"] <= 4.0 for row in rows)
    # More relays => fewer messages for the same instance.
    assert rows[-1]["messages"] < rows[0]["messages"]
