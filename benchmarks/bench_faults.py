"""Fault-injection benchmark: success probability vs message-loss rate.

The deterministic fault layer (:mod:`repro.faults`) exists to ask a
question the clean simulator cannot: *how do the paper's building blocks
degrade on an unreliable network, and how much does a retry layer buy
back?*  This harness answers it for the 2-approximation workload:

* the **plain** 2-approximation (leader election + single BFS
  eccentricity) sends each message exactly once -- one lost activation
  silences a subtree and the run times out;
* the **retrying** 2-approximation
  (:func:`repro.algorithms.resilient.run_resilient_two_approximation`)
  rebroadcasts on an exponential-backoff schedule built on the self-wake
  API, trading a constant-factor message overhead for loss tolerance.

For each loss rate both variants run over a panel of seeds; a run
*succeeds* when it converges within the fault timeout **and** its
estimate satisfies the 2-approximation bound ``ceil(D/2) <= value <= D``.
The report carries the success-probability curve, the headline is the
smoothed success-odds ratio ``(retry_successes + 1) / (plain_successes +
1)`` at the headline loss rate, and two differential checks run inside
the workloads:

* at ``loss=0.0`` the faulty path must reproduce the clean (no fault
  model) run exactly -- estimate and full metrics;
* a delay-only model (``delay=0.3, max_delay=3``) loses no information,
  so the retrying variant must stay correct on every seed.

Everything is deterministic (stateless hashed fault decisions), so the
report is byte-stable for fixed sizes -- the ``repro bench`` regression
gate diffs the headline against ``BENCH_baselines.json``.  Results land
in ``BENCH_faults.json`` next to the repository root.

Run it standalone (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_faults.py
    PYTHONPATH=src python benchmarks/bench_faults.py --smoke

or through pytest (the ``test_`` wrapper asserts the success gap)::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.algorithms.diameter_approx import run_classical_two_approximation
from repro.algorithms.resilient import run_resilient_two_approximation
from repro.congest.errors import CongestSimulationError
from repro.congest.network import Network
from repro.faults import FaultModel
from repro.graphs import generators

#: The loss-rate curve of the full report.
LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.15)

#: The loss rate the headline odds ratio is evaluated at.
HEADLINE_LOSS = 0.1

#: Per-run round budget under faults: failures abort here instead of at
#: the generic 64*(n+2) cap, keeping the failure rows cheap.
FAULT_TIMEOUT = 256

#: Acceptance bar (both modes): at the headline loss rate the retrying
#: variant must succeed at strictly better smoothed odds than the plain
#: one.
TARGET_ODDS_RATIO = 1.5

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_faults.json",
)


def _run_variant(variant: str, graph, seed: int, fault_model):
    """One run of one variant; returns ``(converged, estimate, metrics)``."""
    network = Network(graph, seed=seed, fault_model=fault_model)
    runner = (
        run_resilient_two_approximation
        if variant == "retry"
        else run_classical_two_approximation
    )
    try:
        result = runner(network)
    except (CongestSimulationError, RuntimeError):
        return False, None, None
    return True, result.estimate, result.metrics


def _succeeds(converged: bool, estimate, true_diameter: int) -> bool:
    """The success predicate: converged and 2-approximation-correct."""
    if not converged:
        return False
    return estimate <= true_diameter and 2 * estimate >= true_diameter


def _bench_loss_curve(nodes: int, seeds) -> dict:
    """Success probability of both variants across :data:`LOSS_RATES`."""
    graph = generators.family_for_sweep("clique_chain", nodes, seed=3)
    true_diameter = graph.compile().diameter()
    rows = []
    for loss in LOSS_RATES:
        fault_model = (
            FaultModel(loss=loss, timeout=FAULT_TIMEOUT) if loss else None
        )
        row = {"loss": loss}
        for variant in ("plain", "retry"):
            successes = 0
            dropped = 0
            started = time.perf_counter()
            for seed in seeds:
                converged, estimate, metrics = _run_variant(
                    variant, graph, seed, fault_model
                )
                if _succeeds(converged, estimate, true_diameter):
                    successes += 1
                if metrics is not None:
                    dropped += metrics.dropped_messages
                if loss == 0.0:
                    # Differential gate: with nothing to inject the
                    # (null-model) faulty path must reproduce the clean
                    # simulator exactly.
                    clean_converged, clean_estimate, clean_metrics = (
                        _run_variant(variant, graph, seed, None)
                    )
                    if (converged, estimate) != (clean_converged, clean_estimate):
                        raise AssertionError(
                            f"loss=0.0 {variant} run diverged from the "
                            f"clean run at seed {seed}"
                        )
                    if metrics != clean_metrics:
                        raise AssertionError(
                            f"loss=0.0 {variant} metrics diverged from the "
                            f"clean run at seed {seed}"
                        )
            row[f"{variant}_successes"] = successes
            row[f"{variant}_success_prob"] = round(successes / len(seeds), 4)
            row[f"{variant}_dropped_messages"] = dropped
            row[f"{variant}_seconds"] = round(time.perf_counter() - started, 6)
        rows.append(row)
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "family": "clique_chain",
        "true_diameter": true_diameter,
        "seeds": len(seeds),
        "fault_timeout": FAULT_TIMEOUT,
        "rows": rows,
    }


def _bench_delay_tolerance(nodes: int, seeds) -> dict:
    """Delay-only faults lose no information: retry must stay correct."""
    graph = generators.family_for_sweep("clique_chain", nodes, seed=3)
    true_diameter = graph.compile().diameter()
    fault_model = FaultModel(delay=0.3, max_delay=3, timeout=FAULT_TIMEOUT)
    successes = {"plain": 0, "retry": 0}
    delayed = 0
    for seed in seeds:
        for variant in ("plain", "retry"):
            converged, estimate, metrics = _run_variant(
                variant, graph, seed, fault_model
            )
            if _succeeds(converged, estimate, true_diameter):
                successes[variant] += 1
            elif variant == "retry":
                raise AssertionError(
                    f"retry variant failed under delay-only faults at seed "
                    f"{seed} (estimate {estimate!r}, D={true_diameter})"
                )
            if metrics is not None:
                delayed += metrics.delayed_messages
    return {
        "nodes": graph.num_nodes,
        "delay": 0.3,
        "max_delay": 3,
        "seeds": len(seeds),
        "delayed_messages": delayed,
        "plain_successes": successes["plain"],
        "retry_successes": successes["retry"],
    }


def run_benchmark(smoke: bool = False) -> dict:
    """Measure all workloads; return the report."""
    nodes = 24 if smoke else 32
    seeds = tuple(range(3)) if smoke else tuple(range(8))
    curve = _bench_loss_curve(nodes, seeds)
    headline_row = next(
        row for row in curve["rows"] if row["loss"] == HEADLINE_LOSS
    )
    # Smoothed success-odds ratio: deterministic, finite even when the
    # plain variant never succeeds, and > 1 exactly when retry wins.
    odds_ratio = round(
        (headline_row["retry_successes"] + 1)
        / (headline_row["plain_successes"] + 1),
        2,
    )
    report = {
        "smoke": smoke,
        "workloads": {
            "loss_curve_clique_chain": curve,
            "delay_tolerance": _bench_delay_tolerance(nodes, seeds),
        },
        "headline_loss": HEADLINE_LOSS,
        "headline_speedup": odds_ratio,
    }
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_fault_success_gap():
    """The fault layer's acceptance bar: at the headline loss rate the
    retrying 2-approximation succeeds at better smoothed odds than the
    plain one (the loss=0 differential identity and the delay-tolerance
    gate are asserted inside the workloads)."""
    report = run_benchmark()
    write_report(report)
    assert report["headline_speedup"] >= TARGET_ODDS_RATIO, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (fewer seeds, smaller graph)",
    )
    parser.add_argument(
        "--out",
        default=OUTPUT_PATH,
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    destination = write_report(report, args.out)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {destination}")
    if report["headline_speedup"] < TARGET_ODDS_RATIO:
        print(
            f"FAIL: headline success-odds ratio {report['headline_speedup']} "
            f"is below the {TARGET_ODDS_RATIO} bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
