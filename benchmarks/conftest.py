"""Pytest fixtures for the benchmark harnesses."""

from __future__ import annotations

import pytest

from repro.engine import ENGINE_NAMES, set_default_engine
from repro.quantum.backend import BACKEND_NAMES, set_default_schedule_backend
from repro.tier import TIER_NAMES, set_default_tier


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        default=None,
        choices=ENGINE_NAMES,
        help=(
            "execution engine for all CONGEST networks built by the "
            "benchmarks: 'dense' (seed behaviour) or 'sparse' (event-driven; "
            "identical metrics, idle nodes skipped)"
        ),
    )
    parser.addoption(
        "--backend",
        default=None,
        choices=BACKEND_NAMES,
        help=(
            "quantum schedule backend for all quantum workloads: "
            "'sampling' (seed behaviour) or 'batched' (precomputed "
            "rotation statistics; identical results, faster schedules)"
        ),
    )
    parser.addoption(
        "--tier",
        default=None,
        choices=TIER_NAMES,
        help=(
            "compute tier for the graph oracles: 'stdlib' (seed behaviour) "
            "or 'numpy' (vectorized bitset kernels; byte-identical results)"
        ),
    )
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for batch-submitted benchmark grids "
            "(1 = serial, 0 = one per CPU).  Parallel results are "
            "byte-identical to serial; only wall-clock changes."
        ),
    )
    parser.addoption(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "persist measured benchmark rows to this JSONL experiment "
            "store (appended across tests; see repro.store)"
        ),
    )


@pytest.fixture(autouse=True)
def _engine_selection(request):
    """Honour ``--engine`` by switching the process-wide default engine.

    The benchmarks build their networks deep inside workload helpers, so the
    selection rides on the engine default rather than threading a parameter
    through every call; the previous default is restored after each test.
    """
    name = request.config.getoption("--engine")
    if name is None:
        yield
        return
    previous = set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(previous)


@pytest.fixture(autouse=True)
def _backend_selection(request):
    """Honour ``--backend`` by switching the process-wide schedule backend.

    Mirrors ``--engine``: the quantum workloads resolve the backend deep
    inside the framework, so the selection rides on the process default
    (which the batch runner also re-applies in pool workers); the
    previous default is restored after each test.
    """
    name = request.config.getoption("--backend")
    if name is None:
        yield
        return
    previous = set_default_schedule_backend(name)
    try:
        yield
    finally:
        set_default_schedule_backend(previous)


@pytest.fixture(autouse=True)
def _tier_selection(request):
    """Honour ``--tier`` by switching the process-wide compute tier.

    Mirrors ``--engine``/``--backend``: the oracles resolve the tier deep
    inside the graph core (which the batch runner also re-applies in pool
    workers); the previous default is restored after each test.
    """
    name = request.config.getoption("--tier")
    if name is None:
        yield
        return
    previous = set_default_tier(name)
    try:
        yield
    finally:
        set_default_tier(previous)


@pytest.fixture
def jobs(request):
    """The ``--jobs`` worker count for batch-submitted grids."""
    return request.config.getoption("--jobs")


@pytest.fixture
def store(request):
    """The ``--store`` experiment store for persisted rows, or ``None``."""
    path = request.config.getoption("--store")
    if path is None:
        return None
    from repro.store import ExperimentStore

    return ExperimentStore(path)


@pytest.fixture
def run_once(benchmark):
    """Run the measured callable exactly once.

    The workloads are heavy, deterministic sweeps; statistical repetition
    would only multiply the wall-clock time without changing the measured
    round counts, which are the quantities of interest.
    """

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
