"""Pytest fixtures for the benchmark harnesses."""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the measured callable exactly once.

    The workloads are heavy, deterministic sweeps; statistical repetition
    would only multiply the wall-clock time without changing the measured
    round counts, which are the quantities of interest.
    """

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
