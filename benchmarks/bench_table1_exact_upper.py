"""Table 1, row "Exact computation" (upper bounds).

Paper claim: classically the exact diameter needs Theta(n) rounds, while the
quantum algorithm of Theorem 1 needs O~(sqrt(n D)) rounds.  This harness
measures both on the same graph families and reports

* the fitted scaling exponent of the classical baseline against ``n``
  (expected ~1),
* the fitted scaling exponent of the quantum algorithm against ``n * D``
  (expected ~0.5),
* the ratio trend: quantum rounds divided by ``sqrt(n D)`` stays flat while
  classical rounds divided by ``sqrt(n D)`` grows, i.e. the quantum
  algorithm wins asymptotically whenever ``D = o(n)``.
"""

from __future__ import annotations

from bench_workloads import (
    clique_chain_family,
    fixed_diameter_family,
    measure_grid,
    network_for,
    record,
)

from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.analysis.fitting import fit_power_law
from repro.core.complexity import quantum_exact_upper
from repro.core.exact_diameter import quantum_exact_diameter


def _measure_point(task):
    """One grid point: both exact algorithms on one graph (batch task)."""
    name, graph = task
    truth = graph.compile().diameter()
    classical = run_classical_exact_diameter(network_for(graph))
    quantum = quantum_exact_diameter(graph, oracle_mode="reference", seed=7)
    assert classical.diameter == truth
    return {
        "family": name,
        "n": graph.num_nodes,
        "D": truth,
        "classical_rounds": classical.rounds,
        "quantum_rounds": quantum.rounds,
        "quantum_correct": quantum.diameter == truth,
    }


def _measure(graphs, jobs=1, store=None, label="table1_exact_upper"):
    return measure_grid(graphs, _measure_point, jobs=jobs, store=store, label=label)


def test_exact_upper_bounds_small_diameter(run_once, benchmark, jobs, store):
    """n grows, D fixed: the regime where the quantum advantage is largest."""
    rows = run_once(
        _measure, fixed_diameter_family((24, 48, 96, 160), diameter=6), jobs=jobs,
        store=store, label="table1_exact_upper_smallD",
    )
    ns = [row["n"] for row in rows]
    classical_fit = fit_power_law(ns, [row["classical_rounds"] for row in rows])
    quantum_fit = fit_power_law(ns, [row["quantum_rounds"] for row in rows])
    record(
        benchmark,
        classical_exponent_vs_n=round(classical_fit.exponent, 3),
        quantum_exponent_vs_n=round(quantum_fit.exponent, 3),
        expected_classical_exponent=1.0,
        expected_quantum_exponent=0.5,
        correctness=all(row["quantum_correct"] for row in rows),
    )
    assert classical_fit.exponent > 0.75
    assert quantum_fit.exponent < classical_fit.exponent


def test_exact_upper_bounds_growing_diameter(run_once, benchmark, jobs, store):
    """n and D both grow (clique chains): rounds should track sqrt(n D)."""
    rows = run_once(
        _measure, clique_chain_family((3, 5, 8, 12)), jobs=jobs,
        store=store, label="table1_exact_upper_growingD",
    )
    nd = [row["n"] * row["D"] for row in rows]
    quantum_fit = fit_power_law(nd, [row["quantum_rounds"] for row in rows])
    classical_fit = fit_power_law(
        [row["n"] for row in rows], [row["classical_rounds"] for row in rows]
    )
    normalised = [
        row["quantum_rounds"] / quantum_exact_upper(row["n"], row["D"]) for row in rows
    ]
    record(
        benchmark,
        quantum_exponent_vs_nD=round(quantum_fit.exponent, 3),
        expected_quantum_exponent=0.5,
        classical_exponent_vs_n=round(classical_fit.exponent, 3),
        normalised_quantum_spread=round(max(normalised) / min(normalised), 2),
        correctness=all(row["quantum_correct"] for row in rows),
    )
    assert 0.25 <= quantum_fit.exponent <= 0.85
    assert max(normalised) / min(normalised) <= 8.0
