"""Ablation 2 (DESIGN.md): the windowed objective f (Eq. 2) vs plain ecc (Eq. 1).

Section 3.1's simple algorithm optimizes f(u) = ecc(u) with P_opt >= 1/n and
pays O~(sqrt(n) * D) rounds; Section 3.2's final algorithm optimizes
f(u) = max_{v in S(u)} ecc(v) with P_opt >= d/(2n) and pays O~(sqrt(n D)).
The window makes each Evaluation slightly more expensive (a constant factor)
but cuts the number of amplitude-amplification iterations by ~sqrt(d),
which is what wins asymptotically when the diameter is large.  The ablation
measures both variants on a high-diameter family and reports iteration
counts and total rounds.
"""

from __future__ import annotations

import math

from bench_workloads import record

from repro.analysis.fitting import fit_power_law
from repro.core.exact_diameter import quantum_exact_diameter
from repro.graphs import generators


def _measure(sizes):
    rows = []
    for n in sizes:
        graph = generators.cycle_graph(n)
        truth = graph.compile().diameter()
        windowed = quantum_exact_diameter(graph, variant="windowed", oracle_mode="reference", seed=1)
        simple = quantum_exact_diameter(graph, variant="simple", oracle_mode="reference", seed=1)
        rows.append(
            {
                "n": n,
                "D": truth,
                "windowed_rounds": windowed.rounds,
                "simple_rounds": simple.rounds,
                "windowed_evaluations": windowed.counts.evaluation_calls,
                "simple_evaluations": simple.counts.evaluation_calls,
                "both_correct": windowed.diameter == truth and simple.diameter == truth,
            }
        )
    return rows


def test_windowed_objective_ablation(run_once, benchmark):
    rows = run_once(_measure, (12, 24, 48, 96))
    windowed_fit = fit_power_law([r["n"] for r in rows], [r["windowed_rounds"] for r in rows])
    simple_fit = fit_power_law([r["n"] for r in rows], [r["simple_rounds"] for r in rows])
    record(
        benchmark,
        all_correct=all(r["both_correct"] for r in rows),
        windowed_rounds_exponent_vs_n=round(windowed_fit.exponent, 3),
        simple_rounds_exponent_vs_n=round(simple_fit.exponent, 3),
        expected_windowed_exponent=1.0,   # sqrt(n D) with D ~ n/2 gives ~n
        expected_simple_exponent=1.5,     # sqrt(n) * D with D ~ n/2 gives ~n^1.5
        evaluation_calls_windowed=[r["windowed_evaluations"] for r in rows],
        evaluation_calls_simple=[r["simple_evaluations"] for r in rows],
    )
    assert all(r["both_correct"] for r in rows)
    # On cycles (D = n/2) the simple variant's rounds grow with a strictly
    # larger exponent than the windowed variant's.
    assert simple_fit.exponent >= windowed_fit.exponent + 0.2
    # The windowed objective needs fewer amplification iterations on the
    # largest instance (P_opt is d/2n instead of 1/n).
    assert rows[-1]["windowed_evaluations"] <= rows[-1]["simple_evaluations"]
