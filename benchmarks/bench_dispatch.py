"""Benchmark: remote dispatch overhead, scaling, stragglers, merge fidelity.

Measures the ``repro.dispatch`` remote backend against the serial
baseline on a Table-1-style grid, written to ``BENCH_dispatch.json``
next to the repository root (sibling of ``BENCH_runner.json``):

* **Scaling / overhead** -- the same grid through
  :func:`repro.analysis.sweep.run_sweep_grid` serially and via a local
  coordinator with two subprocess workers.  Worker startup and
  registration happen *before* the timed window, so the measurement is
  the steady-state dispatch cost (framing, shard leasing, result
  streaming), not Python import time.  On a >= 4-core box two workers
  must deliver >= 1.8x; on smaller boxes (CI smoke runners are often
  1-2 cores) the gate is instead an overhead cap -- remote may not cost
  more than ``OVERHEAD_CAP``x serial, because the cells dominate and the
  per-cell frames are tiny.
* **Straggler scenario** -- the adaptive scheduler's reason to exist:
  the same grid with one worker artificially slowed via the
  ``REPRO_DISPATCH_THROTTLE`` env hook (an *unexpected* straggler -- its
  advertised capabilities look normal), run once under
  ``shard_policy="static"`` and once under ``"adaptive"``.  Adaptive
  work stealing trims the straggler's lease down to its in-flight cell,
  so the tail shrinks from a whole static shard to one cell; the gate is
  adaptive >= ``STRAGGLER_GATE``x over static on >= 4-core boxes, and at
  least one steal/speculative lease everywhere.
* **Merge fidelity** -- asserted everywhere, *including* under stealing:
  the streamed remote records, and the offline
  :func:`repro.store.merge.merge_shards` of the workers' shard stores,
  must both render the *byte-identical* canonical export of the serial
  run.

The recorded ``headline_speedup`` (the ``repro bench`` regression gate)
is the two-worker scaling speedup on boxes with >= 4 cores; on smaller
boxes, where a sub-1.0 speedup is physically expected and meaningless to
gate on, it is the *overhead headroom* ``OVERHEAD_CAP /
overhead_ratio`` instead (>= 1.0 means the cap holds, and a growing
dispatch overhead shows up as a shrinking headline for the baseline
diff to catch).  The ``gate`` field names which meaning applies.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dispatch.py [--smoke]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_dispatch.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import repro
from repro.analysis.sweep import run_sweep_grid
from repro.dispatch import DispatchCoordinator, RemoteDispatch
from repro.runner import GraphSpec, resolve_algorithms
from repro.store import ExperimentStore, merge_shards, render_records

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dispatch.json",
)

#: Remote wall-clock may not exceed this multiple of serial when the
#: machine is too small for real scaling (see module docstring).
OVERHEAD_CAP = 3.0

#: Two workers: the smallest fleet that exercises shard partitioning,
#: concurrent appends to distinct shard stores, and the merge.
WORKERS = 2

#: Adaptive must beat static by at least this factor on the straggler
#: grid (gated on >= 4 cores, recorded everywhere).
STRAGGLER_GATE = 1.4

# Cell weight matters: the dispatch setup cost (connect, describe,
# shard-store opens) is fixed per grid, so the overhead gate only
# measures the steady state when the cells are heavy enough to dominate.
GRID_FAMILIES = ("cycle", "clique_chain")
GRID_SIZES = (64, 96)
SMOKE_SIZES = (32, 48)
GRID_ALGORITHMS = ("classical_exact", "two_approx")
BASE_SEED = 11

# The straggler grid: many cheap cells, so one throttled worker's
# per-cell sleep dominates and the scheduling policy is what decides
# the tail.  (Cheap compute keeps the scenario fast on tiny CI boxes.)
# The straggler deadline is deliberately *shorter than one throttled
# cell*: whenever the fast worker idles while the straggler computes,
# either a steal (>= 2 cells remaining in the straggler's lease) or a
# speculative re-lease (1 remaining) must fire, so the scenario cannot
# complete without at least one scheduler intervention.
STRAGGLER_FAMILIES = ("cycle",)
STRAGGLER_SIZES = (24, 26, 28, 30, 32, 34, 36, 38, 40, 42, 44, 46)
STRAGGLER_ALGORITHMS = ("two_approx",)
STRAGGLER_THROTTLE = 0.3
STRAGGLER_DEADLINE = 0.2


def _grid_specs(sizes, families=GRID_FAMILIES):
    return tuple(
        GraphSpec(family=family, num_nodes=n, seed=1)
        for family in families
        for n in sizes
    )


def _worker_env(throttle=None):
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_root, env.get("PYTHONPATH")) if part
    )
    if throttle is not None:
        env["REPRO_DISPATCH_THROTTLE"] = str(throttle)
    else:
        env.pop("REPRO_DISPATCH_THROTTLE", None)
    return env


def _spawn_workers(address, shard_dir, count=WORKERS, throttles=None):
    host, port = address
    procs = []
    for index in range(count):
        throttle = throttles[index] if throttles else None
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro.dispatch.worker",
             f"{host}:{port}", "--shard-dir", shard_dir,
             "--name", f"bench{index + 1}", "--once", "--heartbeat", "0.5"],
            env=_worker_env(throttle),
            stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        ))
    return procs


def _reap(procs):
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def _remote_run(specs, algorithms, shard_dir, throttles=None, **coordinator_kw):
    """One timed remote run on a fresh coordinator + subprocess fleet.

    Returns ``(records, seconds, coordinator stats)``.  Worker startup
    and registration stay outside the timed window.
    """
    coordinator = DispatchCoordinator(worker_timeout=15.0, **coordinator_kw)
    coordinator.start()
    procs = []
    try:
        procs = _spawn_workers(
            coordinator.address, shard_dir, throttles=throttles
        )
        coordinator.wait_for_workers(WORKERS, timeout=60.0)
        dispatch = RemoteDispatch(coordinator=coordinator, workers=WORKERS)
        start = time.perf_counter()
        records = run_sweep_grid(
            specs, algorithms, base_seed=BASE_SEED, dispatch=dispatch,
        )
        seconds = time.perf_counter() - start
        stats = coordinator.stats()
    finally:
        coordinator.stop()
        _reap(procs)
    return records, seconds, stats


def _merged_canon(shard_dir, work_dir, tag):
    shard_paths = sorted(
        os.path.join(shard_dir, name)
        for name in os.listdir(shard_dir)
        if name.endswith(".jsonl")
    )
    merged_path = os.path.join(work_dir, f"merged-{tag}.jsonl")
    merged_records = merge_shards(shard_paths, out_path=merged_path)
    return (
        render_records(merged_records, "jsonl"),
        render_records(ExperimentStore(merged_path).load_records(), "jsonl"),
        len(shard_paths),
    )


def _straggler_scenario(work_dir: dict, smoke: bool) -> dict:
    """Static vs adaptive policy with one throttled worker."""
    sizes = STRAGGLER_SIZES[: 8 if smoke else len(STRAGGLER_SIZES)]
    specs = _grid_specs(sizes, families=STRAGGLER_FAMILIES)
    algorithms = resolve_algorithms(list(STRAGGLER_ALGORITHMS))
    serial_records = run_sweep_grid(specs, algorithms, base_seed=BASE_SEED)
    serial_canon = render_records(serial_records, "jsonl")
    throttles = [STRAGGLER_THROTTLE, None]

    # True one-shot partitioning: each worker receives an equal slice up
    # front (explicit shard_size forces it), so the straggler's whole
    # slice waits on its throttle -- the baseline the adaptive scheduler
    # is built to beat.
    cells = len(specs) * len(algorithms)
    static_dir = os.path.join(work_dir, "straggler-static")
    static_records, static_seconds, _ = _remote_run(
        specs, algorithms, static_dir, throttles=throttles,
        shard_policy="static", shard_size=-(-cells // WORKERS),
    )
    adaptive_dir = os.path.join(work_dir, "straggler-adaptive")
    adaptive_records, adaptive_seconds, stats = _remote_run(
        specs, algorithms, adaptive_dir, throttles=throttles,
        shard_policy="adaptive", straggler_deadline=STRAGGLER_DEADLINE,
    )
    merged_canon, _, shards = _merged_canon(
        adaptive_dir, work_dir, "straggler"
    )
    return {
        "cells": cells,
        "throttle": STRAGGLER_THROTTLE,
        "straggler_deadline": STRAGGLER_DEADLINE,
        "static_seconds": round(static_seconds, 4),
        "adaptive_seconds": round(adaptive_seconds, 4),
        "speedup": round(static_seconds / max(adaptive_seconds, 1e-9), 3),
        "gate": STRAGGLER_GATE,
        "steals": stats["steals"],
        "speculative_leases": stats["speculative_leases"],
        "trims_sent": stats["trims_sent"],
        "duplicate_cells": stats["duplicate_cells"],
        "shards": shards,
        "static_identical":
            render_records(static_records, "jsonl") == serial_canon,
        "adaptive_identical":
            render_records(adaptive_records, "jsonl") == serial_canon,
        "merge_identical": merged_canon == serial_canon,
    }


def run_benchmark(smoke: bool = False) -> dict:
    """Serial vs remote runs of the scaling and straggler grids."""
    sizes = SMOKE_SIZES if smoke else GRID_SIZES
    specs = _grid_specs(sizes)
    algorithms = resolve_algorithms(list(GRID_ALGORITHMS))
    cells = len(specs) * len(algorithms)

    start = time.perf_counter()
    serial_records = run_sweep_grid(specs, algorithms, base_seed=BASE_SEED)
    serial_seconds = time.perf_counter() - start
    serial_canon = render_records(serial_records, "jsonl")

    work_dir = tempfile.mkdtemp(prefix="bench-dispatch-")
    try:
        shard_dir = os.path.join(work_dir, "shards")
        remote_records, remote_seconds, _ = _remote_run(
            specs, algorithms, shard_dir
        )
        remote_canon = render_records(remote_records, "jsonl")
        merged_canon, reloaded_canon, shards = _merged_canon(
            shard_dir, work_dir, "scaling"
        )
        straggler = _straggler_scenario(work_dir, smoke)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    cpu_count = os.cpu_count() or 1
    speedup = serial_seconds / max(remote_seconds, 1e-9)
    overhead_ratio = remote_seconds / max(serial_seconds, 1e-9)
    if cpu_count >= 4:
        gate = "speedup"
        headline = round(speedup, 3)
    else:
        # Too few cores for scaling to be physically possible: gate on
        # the overhead *headroom* instead (cap / measured ratio, >= 1.0
        # while the cap holds), so a growing dispatch overhead still
        # regresses the headline on small CI boxes.
        gate = "overhead"
        headline = round(OVERHEAD_CAP / max(overhead_ratio, 1e-9), 3)
    report = {
        "cpu_count": cpu_count,
        "smoke": smoke,
        "workers": WORKERS,
        "grid": {
            "families": list(GRID_FAMILIES),
            "sizes": list(sizes),
            "algorithms": list(GRID_ALGORITHMS),
            "cells": cells,
        },
        "serial_seconds": round(serial_seconds, 4),
        "remote_seconds": round(remote_seconds, 4),
        "speedup": round(speedup, 3),
        "overhead_ratio": round(overhead_ratio, 3),
        "overhead_cap": OVERHEAD_CAP,
        "shards": shards,
        "remote_identical": remote_canon == serial_canon,
        "merge_identical": merged_canon == serial_canon,
        "merged_store_identical": reloaded_canon == serial_canon,
        "straggler": straggler,
        "gate": gate,
        "headline_speedup": headline,
    }
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_dispatch_identical_and_bounded():
    """Acceptance gates for the remote dispatch backend.

    Byte-identical streaming and merge are asserted everywhere --
    including the straggler scenario, whose adaptive run must survive
    forced work stealing with identical output.  The >= 1.8x two-worker
    scaling gate and the >= ``STRAGGLER_GATE`` adaptive-over-static gate
    apply only where scaling is physically possible (>= 4 cores: two
    busy workers plus coordinator and client); smaller boxes get the
    overhead cap instead.  The adaptive scheduler must intervene (steal
    or speculate) on every box -- the throttled worker sleeps most of
    its wall time, so an idle second worker always appears.
    """
    report = run_benchmark(smoke=True)
    write_report(report)
    assert report["remote_identical"], report
    assert report["merge_identical"], report
    assert report["merged_store_identical"], report
    assert report["shards"] >= 1, report
    straggler = report["straggler"]
    assert straggler["static_identical"], report
    assert straggler["adaptive_identical"], report
    assert straggler["merge_identical"], report
    assert straggler["steals"] + straggler["speculative_leases"] >= 1, report
    if report["cpu_count"] >= 4:
        assert report["speedup"] >= 1.8, report
        assert straggler["speedup"] >= STRAGGLER_GATE, report
    else:
        assert report["overhead_ratio"] <= OVERHEAD_CAP, report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--out", default=OUTPUT_PATH,
                        help="where to write the JSON report")
    arguments = parser.parse_args()
    outcome = run_benchmark(smoke=arguments.smoke)
    destination = write_report(outcome, arguments.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {destination}")
