"""Benchmark: remote dispatch overhead, scaling, and merge fidelity.

Measures the ``repro.dispatch`` remote backend against the serial
baseline on a Table-1-style grid, written to ``BENCH_dispatch.json``
next to the repository root (sibling of ``BENCH_runner.json``):

* **Scaling / overhead** -- the same grid through
  :func:`repro.analysis.sweep.run_sweep_grid` serially and via a local
  coordinator with two subprocess workers.  Worker startup and
  registration happen *before* the timed window, so the measurement is
  the steady-state dispatch cost (framing, shard leasing, result
  streaming), not Python import time.  On a >= 4-core box two workers
  must deliver >= 1.8x; on smaller boxes (CI smoke runners are often
  1-2 cores) the gate is instead an overhead cap -- remote may not cost
  more than ``OVERHEAD_CAP``x serial, because the cells dominate and the
  per-cell frames are tiny.
* **Merge fidelity** -- asserted everywhere: the streamed remote
  records, and the offline :func:`repro.store.merge.merge_shards` of the
  workers' shard stores, must both render the *byte-identical* canonical
  export of the serial run.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dispatch.py [--smoke]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_dispatch.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import repro
from repro.analysis.sweep import run_sweep_grid
from repro.dispatch import DispatchCoordinator, RemoteDispatch
from repro.runner import GraphSpec, resolve_algorithms
from repro.store import ExperimentStore, merge_shards, render_records

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dispatch.json",
)

#: Remote wall-clock may not exceed this multiple of serial when the
#: machine is too small for real scaling (see module docstring).
OVERHEAD_CAP = 3.0

#: Two workers: the smallest fleet that exercises shard partitioning,
#: concurrent appends to distinct shard stores, and the merge.
WORKERS = 2

# Cell weight matters: the dispatch setup cost (connect, describe,
# shard-store opens) is fixed per grid, so the overhead gate only
# measures the steady state when the cells are heavy enough to dominate.
GRID_FAMILIES = ("cycle", "clique_chain")
GRID_SIZES = (64, 96)
SMOKE_SIZES = (32, 48)
GRID_ALGORITHMS = ("classical_exact", "two_approx")
BASE_SEED = 11


def _grid_specs(sizes):
    return tuple(
        GraphSpec(family=family, num_nodes=n, seed=1)
        for family in GRID_FAMILIES
        for n in sizes
    )


def _worker_env():
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_root, env.get("PYTHONPATH")) if part
    )
    return env


def _spawn_workers(address, shard_dir, count=WORKERS):
    host, port = address
    env = _worker_env()
    procs = []
    for index in range(count):
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro.dispatch.worker",
             f"{host}:{port}", "--shard-dir", shard_dir,
             "--name", f"bench{index + 1}", "--once", "--heartbeat", "0.5"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        ))
    return procs


def run_benchmark(smoke: bool = False) -> dict:
    """Serial vs two-worker remote run of one grid; returns the report."""
    sizes = SMOKE_SIZES if smoke else GRID_SIZES
    specs = _grid_specs(sizes)
    algorithms = resolve_algorithms(list(GRID_ALGORITHMS))
    cells = len(specs) * len(algorithms)

    start = time.perf_counter()
    serial_records = run_sweep_grid(specs, algorithms, base_seed=BASE_SEED)
    serial_seconds = time.perf_counter() - start
    serial_canon = render_records(serial_records, "jsonl")

    work_dir = tempfile.mkdtemp(prefix="bench-dispatch-")
    shard_dir = os.path.join(work_dir, "shards")
    coordinator = DispatchCoordinator(worker_timeout=15.0)
    coordinator.start()
    procs = []
    try:
        procs = _spawn_workers(coordinator.address, shard_dir)
        coordinator.wait_for_workers(WORKERS, timeout=60.0)
        dispatch = RemoteDispatch(coordinator=coordinator, workers=WORKERS)
        start = time.perf_counter()
        remote_records = run_sweep_grid(
            specs, algorithms, base_seed=BASE_SEED, dispatch=dispatch,
        )
        remote_seconds = time.perf_counter() - start
    finally:
        coordinator.stop()
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    remote_canon = render_records(remote_records, "jsonl")

    shard_paths = sorted(
        os.path.join(shard_dir, name)
        for name in os.listdir(shard_dir)
        if name.endswith(".jsonl")
    )
    merged_path = os.path.join(work_dir, "merged.jsonl")
    merged_records = merge_shards(shard_paths, out_path=merged_path)
    merged_canon = render_records(merged_records, "jsonl")
    reloaded_canon = render_records(
        ExperimentStore(merged_path).load_records(), "jsonl"
    )
    shutil.rmtree(work_dir, ignore_errors=True)

    speedup = serial_seconds / max(remote_seconds, 1e-9)
    report = {
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "workers": WORKERS,
        "grid": {
            "families": list(GRID_FAMILIES),
            "sizes": list(sizes),
            "algorithms": list(GRID_ALGORITHMS),
            "cells": cells,
        },
        "serial_seconds": round(serial_seconds, 4),
        "remote_seconds": round(remote_seconds, 4),
        "speedup": round(speedup, 3),
        "overhead_ratio": round(remote_seconds / max(serial_seconds, 1e-9), 3),
        "overhead_cap": OVERHEAD_CAP,
        "shards": len(shard_paths),
        "remote_identical": remote_canon == serial_canon,
        "merge_identical": merged_canon == serial_canon,
        "merged_store_identical": reloaded_canon == serial_canon,
        "headline_speedup": round(speedup, 3),
    }
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_dispatch_identical_and_bounded():
    """Acceptance gates for the remote dispatch backend.

    Byte-identical streaming and merge are asserted everywhere.  The
    >= 1.8x two-worker scaling gate applies only where it is physically
    possible (>= 4 cores: two busy workers plus coordinator and client);
    smaller boxes get the overhead cap instead.
    """
    report = run_benchmark(smoke=True)
    write_report(report)
    assert report["remote_identical"], report
    assert report["merge_identical"], report
    assert report["merged_store_identical"], report
    assert report["shards"] >= 1, report
    if report["cpu_count"] >= 4:
        assert report["speedup"] >= 1.8, report
    else:
        assert report["overhead_ratio"] <= OVERHEAD_CAP, report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--out", default=OUTPUT_PATH,
                        help="where to write the JSON report")
    arguments = parser.parse_args()
    outcome = run_benchmark(smoke=arguments.smoke)
    destination = write_report(outcome, arguments.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    print(f"written to {destination}")
