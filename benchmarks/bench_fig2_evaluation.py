"""Figure 2: the Evaluation procedure (Proposition 4).

Claims to reproduce: for any u0, the procedure lets the leader compute
``f(u0) = max_{v in S(u0)} ecc(v)`` in O(D) rounds (a fixed schedule of
~2d + 6d + O(d) rounds plus the Step-5 revert) with O(log n) bits of memory
per node, and maximising f over u0 yields the diameter (the value the
quantum optimization will amplify towards).
"""

from __future__ import annotations

import math

from bench_workloads import clique_chain_family, network_for, record

from repro.algorithms.bfs import run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max
from repro.algorithms.evaluation import run_evaluation_procedure
from repro.analysis.fitting import fit_power_law
from repro.core.coverage import empirical_optimum_mass, popt_lower_bound


def _measure(graphs):
    rows = []
    for name, graph in graphs:
        network = network_for(graph)
        root = graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        d = max(1, run_tree_aggregate_max(network, tree, tree.distance).value)
        eccentricities = graph.compile().all_eccentricities()
        values = []
        sample_rounds = None
        sample_memory = None
        for u0 in graph.nodes():
            result = run_evaluation_procedure(network, tree, d, u0)
            values.append(result.value)
            expected = max(eccentricities[v] for v in result.window_nodes)
            assert result.value == expected
            sample_rounds = result.metrics.rounds
            sample_memory = result.metrics.max_node_memory_bits
        rows.append(
            {
                "family": name,
                "n": graph.num_nodes,
                "d": d,
                "rounds_per_evaluation": sample_rounds,
                "memory_bits": sample_memory,
                "max_f_equals_diameter": max(values) == graph.compile().diameter(),
                "popt_empirical": empirical_optimum_mass(graph, tree, 2 * d),
                "popt_bound": popt_lower_bound(graph.num_nodes, d),
            }
        )
    return rows


def test_evaluation_rounds_linear_in_d_and_memory_logarithmic(run_once, benchmark):
    rows = run_once(_measure, clique_chain_family((2, 4, 6, 8), clique_size=3))
    fit = fit_power_law([row["d"] for row in rows], [row["rounds_per_evaluation"] for row in rows])
    record(
        benchmark,
        rounds_exponent_vs_d=round(fit.exponent, 3),
        expected_exponent=1.0,
        rounds_over_d=[round(r["rounds_per_evaluation"] / r["d"], 1) for r in rows],
        memory_bits=[row["memory_bits"] for row in rows],
        memory_bound=[8 * math.ceil(math.log2(row["n"] + 1)) for row in rows],
        max_f_equals_diameter=all(row["max_f_equals_diameter"] for row in rows),
        popt_empirical_vs_bound=[
            (round(row["popt_empirical"], 3), round(row["popt_bound"], 3)) for row in rows
        ],
    )
    assert all(row["max_f_equals_diameter"] for row in rows)
    assert 0.75 <= fit.exponent <= 1.25
    for row in rows:
        assert row["memory_bits"] <= 8 * math.ceil(math.log2(row["n"] + 1))
        assert row["popt_empirical"] >= row["popt_bound"] - 1e-12
