"""Theorem 4 headline: quantum 3/2-approximation in O~((n D)^(1/3) + D) rounds.

End-to-end measurement of the second upper bound: the approximation
guarantee holds across seeds, the quantum-optimization phase searches a ball
of ~ s = Theta(n^{2/3} D^{-1/3}) nodes with polylogarithmic memory, and the
round count normalised by the paper's formula stays flat as n grows.
"""

from __future__ import annotations

import math

from bench_workloads import fixed_diameter_family, record

from repro.analysis.fitting import fit_power_law
from repro.core.approx_diameter import quantum_three_halves_diameter
from repro.core.complexity import quantum_approx_upper


def test_theorem4_guarantee_and_scaling(run_once, benchmark):
    def measure():
        rows = []
        for name, graph in fixed_diameter_family((36, 72, 144), diameter=6, seed=8):
            truth = graph.compile().diameter()
            result = quantum_three_halves_diameter(graph, oracle_mode="reference", seed=2)
            rows.append(
                {
                    "family": name,
                    "n": graph.num_nodes,
                    "D": truth,
                    "estimate": result.estimate,
                    "valid": math.floor(2 * truth / 3) <= result.estimate <= truth,
                    "rounds": result.rounds,
                    "ball": result.ball_size,
                    "s": result.s_parameter,
                }
            )
        return rows

    rows = run_once(measure)
    fit = fit_power_law([row["n"] for row in rows], [row["rounds"] for row in rows])
    normalised = [
        row["rounds"] / quantum_approx_upper(row["n"], row["D"]) for row in rows
    ]
    record(
        benchmark,
        guarantee_holds=all(row["valid"] for row in rows),
        rounds=[row["rounds"] for row in rows],
        rounds_exponent_vs_n=round(fit.exponent, 3),
        expected_exponent=round(1 / 3, 3),
        normalised_spread=round(max(normalised) / min(normalised), 2),
        ball_sizes=[row["ball"] for row in rows],
        s_parameters=[row["s"] for row in rows],
    )
    assert all(row["valid"] for row in rows)
    # Sublinear growth in n; the cube-root shape itself only emerges beyond
    # simulable sizes because the preparation constants dominate here (see
    # EXPERIMENTS.md), so the assertion is deliberately coarse.
    assert fit.exponent <= 1.0
    assert max(normalised) / min(normalised) <= 8.0


def test_theorem4_correctness_rate(run_once, benchmark):
    def measure():
        graph = fixed_diameter_family((80,), diameter=7, seed=5)[0][1]
        truth = graph.compile().diameter()
        valid = 0
        for seed in range(8):
            result = quantum_three_halves_diameter(graph, oracle_mode="reference", seed=seed)
            valid += math.floor(2 * truth / 3) <= result.estimate <= truth
        return {"valid": valid, "trials": 8}

    data = run_once(measure)
    record(benchmark, **data)
    assert data["valid"] >= 7
