"""Micro-benchmark: legacy adjacency-map oracles vs the compiled CSR view.

The indexed graph core (``Graph.compile() -> IndexedGraph``) exists because
the sequential oracles are the hot path of every sweep's correctness gate:
the diameter oracle is one all-pairs BFS per graph, and the legacy
implementation runs it over label-keyed dicts and hash probes.  The
compiled view stores the topology in CSR arrays and dispatches between
three exact all-eccentricities strategies (plain stamped BFS, bit-parallel
level-synchronous BFS, Takes-Kosters bound pruning), all byte-identical to
the legacy oracle.

This harness measures:

* the headline ``all_eccentricities`` oracle on an n=2000 sparse random
  graph (the acceptance bar: CSR must be >= 5x the legacy path);
* the ``diameter`` oracle on a structured clique chain (the sweep
  families' correctness-gate workload);
* dense- and sparse-engine BFS wall-clock on the compiled topology
  bindings (prebound neighbour tuples + frozensets), tracked over time.

Results land in ``BENCH_graphcore.json`` next to the repository root.

Run it standalone (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_graphcore.py
    PYTHONPATH=src python benchmarks/bench_graphcore.py --smoke

or through pytest (the ``test_`` wrappers assert the speedup bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_graphcore.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.algorithms.bfs import run_bfs_tree
from repro.congest.network import Network
from repro.graphs import generators

#: Node count of the headline all-eccentricities workload.
ORACLE_NODES = 2000

#: Acceptance bar for the headline oracle (full mode).
TARGET_SPEEDUP = 5.0

#: Relaxed bar asserted in ``--smoke`` mode (small graphs amortise the
#: CSR compilation less, and CI boxes are noisy).
SMOKE_TARGET_SPEEDUP = 3.0

#: Where the results land (repository root, next to ROADMAP.md).
OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_graphcore.json",
)


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _bench_all_eccentricities(nodes: int) -> dict:
    """Headline workload: full eccentricity oracle, legacy vs CSR.

    The CSR timing includes ``compile()`` itself (measured on a freshly
    built graph), so the reported speedup is end-to-end.
    """
    legacy_graph = generators.family_for_sweep("random_sparse", nodes, seed=11)
    csr_graph = generators.family_for_sweep("random_sparse", nodes, seed=11)
    legacy_seconds, legacy_result = _time(legacy_graph.all_eccentricities)
    csr_seconds, csr_result = _time(
        lambda: csr_graph.compile().all_eccentricities()
    )
    if csr_result != legacy_result or list(csr_result) != list(legacy_result):
        raise AssertionError("CSR and legacy eccentricity oracles disagree")
    return {
        "nodes": nodes,
        "edges": legacy_graph.num_edges,
        "family": "random_sparse",
        "diameter": max(legacy_result.values()),
        "legacy_seconds": round(legacy_seconds, 6),
        "csr_seconds": round(csr_seconds, 6),
        "speedup": round(legacy_seconds / max(csr_seconds, 1e-9), 2),
    }


def _bench_diameter(nodes: int) -> dict:
    """Diameter oracle on a structured family (the sweep gate workload)."""
    legacy_graph = generators.family_for_sweep("clique_chain", nodes, seed=7)
    csr_graph = generators.family_for_sweep("clique_chain", nodes, seed=7)
    legacy_seconds, legacy_diameter = _time(legacy_graph.diameter)
    csr_seconds, csr_diameter = _time(lambda: csr_graph.compile().diameter())
    if csr_diameter != legacy_diameter:
        raise AssertionError("CSR and legacy diameter oracles disagree")
    return {
        "nodes": legacy_graph.num_nodes,
        "edges": legacy_graph.num_edges,
        "family": "clique_chain",
        "diameter": legacy_diameter,
        "legacy_seconds": round(legacy_seconds, 6),
        "csr_seconds": round(csr_seconds, 6),
        "speedup": round(legacy_seconds / max(csr_seconds, 1e-9), 2),
    }


def _bench_engine_rounds(nodes: int) -> dict:
    """Dense and sparse engine BFS on the prebound CSR topology.

    The engine binds the compiled view per run (scheduler node order,
    transport neighbour frozensets, factory neighbour tuples); this
    workload tracks the absolute round-loop cost of both engines so the
    perf trajectory of the dense hot loop stays visible across PRs.
    """
    graph = generators.path_graph(nodes)
    results = {}
    trees = {}
    for engine in ("dense", "sparse"):
        network = Network(graph, engine=engine)
        seconds, tree = _time(lambda: run_bfs_tree(network, graph.nodes()[0]))
        trees[engine] = tree
        results[f"{engine}_seconds"] = round(seconds, 6)
        results[f"{engine}_rounds_per_second"] = round(
            tree.metrics.rounds / max(seconds, 1e-9), 1
        )
    if trees["dense"].distance != trees["sparse"].distance:
        raise AssertionError("engines disagree on BFS distances")
    results.update(
        {
            "nodes": nodes,
            "rounds": trees["dense"].metrics.rounds,
            "messages": trees["dense"].metrics.messages,
            "sparse_speedup": round(
                results["dense_seconds"]
                / max(results["sparse_seconds"], 1e-9),
                2,
            ),
        }
    )
    return results


def run_benchmark(smoke: bool = False) -> dict:
    """Measure all workloads; return the report."""
    oracle_nodes = 300 if smoke else ORACLE_NODES
    diameter_nodes = 200 if smoke else 1000
    engine_nodes = 200 if smoke else 1000
    report = {
        "smoke": smoke,
        "workloads": {
            "all_eccentricities": _bench_all_eccentricities(oracle_nodes),
            "diameter_clique_chain": _bench_diameter(diameter_nodes),
            "engine_bfs_path": _bench_engine_rounds(engine_nodes),
        },
    }
    report["headline_speedup"] = report["workloads"]["all_eccentricities"][
        "speedup"
    ]
    return report


def write_report(report: dict, path: str = OUTPUT_PATH) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_graphcore_oracle_speedup():
    """The graph-core refactor's acceptance bar: >= 5x on the n=2000
    all-eccentricities oracle, with byte-identical results (the identity
    is asserted inside the workload)."""
    report = run_benchmark()
    write_report(report)
    assert report["headline_speedup"] >= TARGET_SPEEDUP, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (relaxed speedup bar)",
    )
    parser.add_argument(
        "--out",
        default=OUTPUT_PATH,
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    destination = write_report(report, args.out)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"written to {destination}")
    bar = SMOKE_TARGET_SPEEDUP if args.smoke else TARGET_SPEEDUP
    if report["headline_speedup"] < bar:
        print(
            f"FAIL: headline speedup {report['headline_speedup']}x "
            f"is below the {bar}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
