"""Figure 1: construction of BFS(leader) in ecc(leader) = O(D) rounds.

Proposition 1 states the procedure of Figure 1 takes O(D) rounds and
O(log n) memory per node.  The harness measures the construction on graph
families with increasing diameter and on families with increasing size but
fixed diameter, showing that the round count tracks the depth (not n), and
that the per-node memory stays logarithmic.
"""

from __future__ import annotations

import math

from bench_workloads import cycle_family, fixed_diameter_family, network_for, record

from repro.algorithms.bfs import run_bfs_tree
from repro.analysis.fitting import fit_power_law


def _measure(graphs):
    rows = []
    for name, graph in graphs:
        network = network_for(graph)
        root = graph.nodes()[0]
        tree = run_bfs_tree(network, root)
        rows.append(
            {
                "family": name,
                "n": graph.num_nodes,
                "depth": tree.depth,
                "rounds": tree.metrics.rounds,
                "memory_bits": tree.metrics.max_node_memory_bits,
                "correct": tree.distance == graph.compile().bfs_distances(root),
            }
        )
    return rows


def test_bfs_rounds_track_diameter_not_n(run_once, benchmark):
    growing_d = run_once(_measure, cycle_family((16, 32, 64, 128)))
    fit_vs_depth = fit_power_law(
        [row["depth"] for row in growing_d], [row["rounds"] for row in growing_d]
    )
    record(
        benchmark,
        rounds_exponent_vs_depth=round(fit_vs_depth.exponent, 3),
        expected_exponent=1.0,
        rounds_over_depth=[round(r["rounds"] / r["depth"], 2) for r in growing_d],
        all_correct=all(row["correct"] for row in growing_d),
    )
    assert all(row["correct"] for row in growing_d)
    assert 0.85 <= fit_vs_depth.exponent <= 1.15
    assert all(row["rounds"] <= row["depth"] + 5 for row in growing_d)


def test_bfs_rounds_flat_when_diameter_fixed(run_once, benchmark):
    fixed_d = run_once(_measure, fixed_diameter_family((40, 80, 160), diameter=8))
    rounds = [row["rounds"] for row in fixed_d]
    memory = [row["memory_bits"] for row in fixed_d]
    log_bound = [3 * math.ceil(math.log2(row["n"] + 1)) for row in fixed_d]
    record(
        benchmark,
        rounds_at_fixed_diameter=rounds,
        memory_bits=memory,
        memory_bound_3logn=log_bound,
    )
    assert max(rounds) - min(rounds) <= 4
    assert all(m <= bound for m, bound in zip(memory, log_bound))
