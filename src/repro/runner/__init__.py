"""Parallel batch execution of independent CONGEST runs.

The paper's evaluation -- Table-1 grids, figure sweeps, reduction batteries
-- is a bag of independent, deterministic simulator runs, so wall-clock
should scale with ``total_work / cores`` rather than ``total_work``.  This
package provides the machinery:

* :class:`BatchRunner` (:mod:`repro.runner.batch`) -- a process-pool mapper
  with chunked dispatch, once-per-worker context shipping, worker exception
  propagation and **ordered** result aggregation, so parallel output is
  byte-identical to serial output;
* :class:`GraphSpec` (:mod:`repro.runner.spec`) -- a picklable recipe for a
  benchmark graph, with per-worker construction and diameter-oracle caches
  so a grid builds each ``(family, n, D)`` graph once per worker, not once
  per algorithm;
* :data:`SWEEP_ALGORITHMS` (:mod:`repro.runner.algorithms`) -- module-level
  (hence picklable) measurement kernels referenced by name from grid tasks.

Consumers: :func:`repro.analysis.sweep.run_sweep` /
:func:`repro.analysis.sweep.run_sweep_grid`, the CLI ``sweep --jobs``
command, the benchmark harnesses (``--jobs``) and the qcongest framework's
parallel branch evaluation.
"""

from repro.runner.algorithms import (
    EXACT,
    GUARANTEES,
    QUANTUM_SWEEP_NAMES,
    SWEEP_ALGORITHMS,
    THREE_HALVES,
    TWO_APPROX,
    SweepAlgorithmInfo,
    quantum_problem_kernel,
    resolve_algorithms,
    sweep_algorithm_for_problem,
)
from repro.runner.batch import (
    BatchRunner,
    BatchTaskError,
    resolve_jobs,
    task_seed,
)
from repro.runner.spec import (
    GraphSpec,
    build_graph_cached,
    clear_worker_caches,
    graph_diameter_cached,
    grid,
)

__all__ = [
    "BatchRunner",
    "BatchTaskError",
    "resolve_jobs",
    "task_seed",
    "GraphSpec",
    "grid",
    "build_graph_cached",
    "graph_diameter_cached",
    "clear_worker_caches",
    "SWEEP_ALGORITHMS",
    "SweepAlgorithmInfo",
    "quantum_problem_kernel",
    "QUANTUM_SWEEP_NAMES",
    "sweep_algorithm_for_problem",
    "EXACT",
    "TWO_APPROX",
    "THREE_HALVES",
    "GUARANTEES",
    "resolve_algorithms",
]
