"""The parallel batch runner: fan independent runs out over a process pool.

The paper's evaluation is a *batch* workload: hundreds of independent
CONGEST runs over ``(family, n, D)`` grids (Table 1, Figures 1-8, the
Theorem-10/11 reductions).  Every run is deterministic and shares nothing
with its siblings, so across-run parallelism is embarrassing -- the only
engineering is in keeping parallel output **byte-identical** to serial
output.  :class:`BatchRunner` guarantees that by construction:

* tasks are dispatched in chunks through :meth:`multiprocessing.pool.Pool.map`,
  whose result list is ordered by task index regardless of which worker
  finished first;
* per-task randomness is derived with :func:`task_seed` from the task's
  *identity* (not from its execution order or wall-clock), so a task
  computes the same answer no matter which worker runs it;
* the shared callable and context object are shipped to each worker **once**
  (via the pool initializer), not once per task, and workers inherit the
  parent's process-wide default engine, quantum schedule-backend and
  compute-tier selections;
* worker exceptions propagate to the caller (the pool is torn down and the
  failure re-raised as :class:`BatchTaskError` naming the failing task and
  chaining the original exception), so a failing task cannot be silently
  dropped from the aggregate -- and a 400-cell sweep that dies tells you
  *which* cell died, not just that one did.

Serial execution (``jobs=1``, the default) runs the exact same per-task
code in-process -- there is one code path for the task body, so the
serial/parallel equality is structural rather than coincidental.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Sentinel distinguishing "no context" from a ``None`` context.
_NO_CONTEXT = object()

#: Per-worker state installed by the pool initializer: the task callable,
#: the shared context and the per-worker caches (see :mod:`repro.runner.spec`).
_WORKER_STATE: dict = {}


class BatchTaskError(RuntimeError):
    """A pool worker's task raised; identifies *which* task failed.

    ``multiprocessing`` pickles worker exceptions back to the caller but
    strips them of any hint of which task was running -- fatal ergonomics
    for grid sweeps, where one bad ``(spec, algorithm)`` cell among
    hundreds needs to be findable from the failure alone.  The message
    carries the task's ``repr`` (a :class:`SweepTask` names its spec,
    algorithm and seed) plus the original exception type and text.
    Serial execution (``jobs=1``) is left unwrapped on purpose: there the
    original exception surfaces with its full traceback intact, which is
    strictly more diagnostic than any wrapper.

    Built as a single pre-formatted message string so the instance
    pickles across the pool boundary unchanged (multi-arg exceptions
    round-trip ``pickle`` badly).
    """


def _task_error(task, error: BaseException) -> BatchTaskError:
    """Wrap a task's exception with the task identity, for re-raising."""
    return BatchTaskError(
        f"task {task!r} failed: {type(error).__name__}: {error}"
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value to a worker count.

    ``None`` and ``1`` mean serial execution; ``0`` and negative values mean
    "one worker per available CPU"; anything else is taken literally.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def task_seed(base_seed: int, *components: Any) -> int:
    """A deterministic per-task seed derived from the task's identity.

    Uses a CRC of the stringified components (like
    :meth:`repro.congest.network.Network.node_rng`) so that the seed is
    stable across processes and Python's per-process string-hash
    randomisation, and independent of the order in which tasks execute.
    """
    text = "|".join([str(base_seed)] + [repr(component) for component in components])
    return zlib.crc32(text.encode("utf-8"))


def _worker_initializer(
    function, context, engine_name: str, backend_name: str, tier_name: str,
    fault_model=None,
) -> None:
    """Install the shared task callable and context in a pool worker.

    Runs once per worker process, so the (potentially large) context --
    an algorithm table, a pickled search problem -- is transferred and
    deserialised once per worker instead of once per task.  The parent's
    default-engine, default-schedule-backend, default-compute-tier and
    default-fault-model selections are re-applied because ``spawn``-style
    workers do not inherit process-wide globals (and quantum sweep
    kernels read the backend default; see
    :func:`repro.runner.algorithms.quantum_problem_kernel`).  The fault
    model travels as the (picklable, frozen) :class:`repro.faults.FaultModel`
    instance itself rather than a registry name, so models built from CLI
    flags reach workers too.
    """
    from repro.engine import set_default_engine
    from repro.faults import set_default_fault_model
    from repro.quantum.backend import set_default_schedule_backend
    from repro.tier import set_default_tier

    _WORKER_STATE["function"] = function
    _WORKER_STATE["context"] = context
    set_default_engine(engine_name)
    set_default_schedule_backend(backend_name)
    set_default_tier(tier_name)
    if fault_model is not None:
        set_default_fault_model(fault_model)


def _invoke_task(task):
    """Run one task in a pool worker using the installed state.

    Failures are wrapped in :class:`BatchTaskError` *inside the worker*,
    where the task is still in hand -- by the time the pool re-raises in
    the parent, the task identity would be gone.
    """
    function = _WORKER_STATE["function"]
    context = _WORKER_STATE["context"]
    try:
        if context is _NO_CONTEXT:
            return function(task)
        return function(context, task)
    except BatchTaskError:
        raise
    except Exception as error:
        raise _task_error(task, error) from error


def _invoke_chunk(chunk):
    """Run one planner-sized chunk of tasks in a pool worker, in order.

    The variable-size chunk plan (see :meth:`BatchRunner._chunks`) cannot
    use the pool's own fixed ``chunksize``, so chunks travel as explicit
    task lists; results come back as one ordered list per chunk and the
    caller flattens them, preserving task order exactly.
    """
    return [_invoke_task(task) for task in chunk]


class BatchRunner:
    """Run independent tasks over a process pool with ordered aggregation.

    Parameters
    ----------
    jobs:
        Number of worker processes (see :func:`resolve_jobs`; ``None``/``1``
        run serially in-process, ``0`` means one worker per CPU).
    chunk_size:
        Number of tasks handed to a worker per dispatch.  The default
        (``None``) uses the factoring planner shared with the dispatch
        coordinator (:func:`repro.dispatch.cost.plan_chunks`): chunk
        *cost* shrinks as the work drains, so chunks are large at the
        head (amortising IPC) and small at the tail (a straggler holds
        at most a few cells), capped at 32 cells.  An explicit integer
        restores fixed-size chunking.  Chunks preserve task order, so
        tasks sharing a per-worker cache key (e.g. the same
        :class:`repro.runner.spec.GraphSpec`) should be submitted
        consecutively.
    start_method:
        ``multiprocessing`` start method (``None`` uses the platform
        default, ``fork`` on Linux).
    cost_of:
        Optional per-task cost estimator feeding the default chunk plan
        (uniform costs otherwise).  Called in the *parent* process only,
        so it need not be picklable; sweep grids pass the dispatch cost
        model's static per-cell prior here.

    Notes
    -----
    The mapped callable, the context and every task must be picklable when
    ``jobs > 1`` (module-level functions and plain dataclasses are; lambdas
    are not).  Results are returned in task order; a worker exception
    aborts the batch and re-raises in the caller as
    :class:`BatchTaskError` naming the failing task.
    """

    #: Cap on one planned chunk's task count (the historical fixed cap).
    MAX_CHUNK_CELLS = 32

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        cost_of: Optional[Callable[[Any], float]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.cost_of = cost_of

    def _chunks(self, tasks: Sequence, workers: int) -> List[List]:
        """The variable-size chunk plan for one batch (default chunking).

        Deterministic in the task list and cost estimates -- no wall
        clocks, no dict iteration -- so the plan (and therefore the
        batch's execution structure) is identical across processes and
        ``PYTHONHASHSEED`` values.
        """
        # Local import: repro.dispatch pulls in this module through its
        # backend registry, so the dependency must stay one-way at
        # import time.
        from repro.dispatch.cost import plan_chunks

        if self.cost_of is None:
            costs: List[float] = [1.0] * len(tasks)
        else:
            costs = [float(self.cost_of(task)) for task in tasks]
        plan = plan_chunks(costs, workers, max_cells=self.MAX_CHUNK_CELLS)
        chunks: List[List] = []
        position = 0
        for length in plan:
            chunks.append(list(tasks[position:position + length]))
            position += length
        return chunks

    # ------------------------------------------------------------------
    def map(
        self,
        function: Callable[..., Result],
        tasks: Iterable[Task],
        context: Any = _NO_CONTEXT,
    ) -> List[Result]:
        """Apply ``function`` to every task; results ordered by task index.

        Without ``context`` the callable is invoked as ``function(task)``;
        with it, as ``function(context, task)`` -- the context is shipped
        to each worker once, so per-task payloads stay small.
        """
        tasks = list(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            if context is _NO_CONTEXT:
                return [function(task) for task in tasks]
            return [function(context, task) for task in tasks]
        return self._map_parallel(function, tasks, context)

    def imap(
        self,
        function: Callable[..., Result],
        tasks: Iterable[Task],
        context: Any = _NO_CONTEXT,
    ) -> Iterator[Result]:
        """Like :meth:`map`, but yield results incrementally in task order.

        The checkpointing consumers (:func:`repro.analysis.sweep.run_sweep_grid`
        with a store) persist each result as it arrives, so an interrupted
        batch keeps its completed prefix.  Ordering is identical to
        :meth:`map` -- :meth:`multiprocessing.pool.Pool.imap` yields by task
        index regardless of which worker finishes first -- so consuming the
        iterator fully produces exactly ``map``'s result list.
        """
        tasks = list(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            if context is _NO_CONTEXT:
                return (function(task) for task in tasks)
            return (function(context, task) for task in tasks)
        return self._imap_parallel(function, tasks, context)

    def _map_parallel(self, function, tasks: Sequence, context) -> List:
        from repro.engine import get_default_engine
        from repro.faults import get_default_fault_model
        from repro.quantum.backend import get_default_schedule_backend
        from repro.tier import get_default_tier

        workers = min(self.jobs, len(tasks))
        mp_context = multiprocessing.get_context(self.start_method)
        pool = mp_context.Pool(
            processes=workers,
            initializer=_worker_initializer,
            initargs=(
                function,
                context,
                get_default_engine(),
                get_default_schedule_backend(),
                get_default_tier(),
                get_default_fault_model(),
            ),
        )
        try:
            if self.chunk_size is not None:
                results = pool.map(
                    _invoke_task, tasks, chunksize=self.chunk_size
                )
            else:
                per_chunk = pool.map(
                    _invoke_chunk, self._chunks(tasks, workers), chunksize=1
                )
                results = [
                    result for chunk in per_chunk for result in chunk
                ]
            pool.close()
            return results
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()

    def _imap_parallel(self, function, tasks: Sequence, context) -> Iterator:
        from repro.engine import get_default_engine
        from repro.faults import get_default_fault_model
        from repro.quantum.backend import get_default_schedule_backend
        from repro.tier import get_default_tier

        workers = min(self.jobs, len(tasks))
        mp_context = multiprocessing.get_context(self.start_method)
        pool = mp_context.Pool(
            processes=workers,
            initializer=_worker_initializer,
            initargs=(
                function,
                context,
                get_default_engine(),
                get_default_schedule_backend(),
                get_default_tier(),
                get_default_fault_model(),
            ),
        )
        try:
            if self.chunk_size is not None:
                for result in pool.imap(
                    _invoke_task, tasks, chunksize=self.chunk_size
                ):
                    yield result
            else:
                for chunk in pool.imap(
                    _invoke_chunk, self._chunks(tasks, workers), chunksize=1
                ):
                    for result in chunk:
                        yield result
            pool.close()
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()
