"""Task descriptions for batched runs: graph specs and per-worker caches.

A batch task must be cheap to ship to a worker process, so instead of
pickling built graphs the batch APIs describe them with a
:class:`GraphSpec` -- ``(family, n, D, seed)`` -- and let each worker
construct the graph itself.  Construction is memoised **per worker** in
:func:`build_graph_cached`: a Table-1 grid runs several algorithms per
``(family, n, D)`` point, and consecutive tasks of a chunk share the spec,
so each worker builds every graph it touches once rather than once per
algorithm.  The sequential diameter oracle (the most expensive part of a
sweep record's provenance) is memoised alongside, and runs on the graph's
compiled CSR view (:func:`build_indexed_cached`): the view is cached on
the graph instance, so every oracle call and approximation-bound check a
worker performs against one spec shares a single compilation.

Construction is deterministic given the spec, so per-worker caching cannot
change results -- it only removes repeated work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph

#: Per-process construction caches, keyed by spec.  Bounded so that a
#: long-lived process sweeping many grids cannot grow without limit; the
#: bound is generous relative to any single grid, so within one batch the
#: cache behaves as a plain memo.
_GRAPH_CACHE: Dict["GraphSpec", Graph] = {}
_DIAMETER_CACHE: Dict["GraphSpec", int] = {}
_CACHE_LIMIT = 128


@dataclass(frozen=True)
class GraphSpec:
    """A deterministic recipe for one benchmark graph.

    ``family`` is one of :data:`repro.graphs.generators.SWEEP_FAMILIES` or
    ``"controlled"`` (which honours ``diameter`` via
    :func:`repro.graphs.generators.diameter_controlled_graph`, like the
    CLI's ``--family controlled``).
    """

    family: str
    num_nodes: int
    diameter: Optional[int] = None
    seed: int = 0

    @property
    def label(self) -> str:
        """Human-readable family label used in sweep records and tables."""
        if self.family == "controlled":
            return f"controlled[{self.num_nodes},D={self.diameter}]"
        return f"{self.family}[{self.num_nodes}]"

    def build(self) -> Graph:
        """Construct the graph (deterministic; no caching)."""
        if self.family == "controlled":
            if self.diameter is None:
                raise ValueError("family 'controlled' requires a target diameter")
            return generators.diameter_controlled_graph(
                self.num_nodes, self.diameter, seed=self.seed
            )
        return generators.family_for_sweep(
            self.family, self.num_nodes, seed=self.seed
        )


def build_graph_cached(spec: GraphSpec) -> Graph:
    """The graph for ``spec``, memoised in this process."""
    graph = _GRAPH_CACHE.get(spec)
    if graph is None:
        if len(_GRAPH_CACHE) >= _CACHE_LIMIT:
            _GRAPH_CACHE.clear()
        graph = _GRAPH_CACHE[spec] = spec.build()
    return graph


def build_indexed_cached(spec: GraphSpec) -> IndexedGraph:
    """The compiled CSR view of ``spec``'s graph, memoised in this process.

    Piggybacks on :func:`build_graph_cached`: the view is cached *on the
    graph instance* (see :meth:`repro.graphs.graph.Graph.compile`), so as
    long as the graph stays in the per-worker cache its compilation is
    shared by every consumer -- the diameter oracle below, the sweep's
    approximation-bound checks, and any algorithm kernel that compiles.
    """
    return build_graph_cached(spec).compile()


def graph_diameter_cached(spec: GraphSpec) -> int:
    """The true diameter of ``spec``'s graph, memoised in this process.

    Computed on the compiled view (CSR fast path), not the adjacency-map
    reference oracle.
    """
    diameter = _DIAMETER_CACHE.get(spec)
    if diameter is None:
        if len(_DIAMETER_CACHE) >= _CACHE_LIMIT:
            _DIAMETER_CACHE.clear()
        diameter = _DIAMETER_CACHE[spec] = build_indexed_cached(spec).diameter()
    return diameter


def clear_worker_caches() -> None:
    """Drop the per-process construction caches (used by tests)."""
    _GRAPH_CACHE.clear()
    _DIAMETER_CACHE.clear()


def grid(
    families, sizes, diameter: Optional[int] = None, seed: int = 0
) -> Tuple[GraphSpec, ...]:
    """The cross product ``families x sizes`` as a tuple of specs.

    The Table-1 harnesses sweep exactly such grids; keeping the product
    spec-major (all sizes of one family, then the next) lines up with the
    chunked dispatch of :class:`repro.runner.batch.BatchRunner`, so chunk
    neighbours share a worker-side graph cache entry.
    """
    return tuple(
        GraphSpec(family=family, num_nodes=n, diameter=diameter, seed=seed)
        for family in families
        for n in sizes
    )
