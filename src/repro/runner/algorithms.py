"""Picklable sweep algorithms for batched grids, with correctness metadata.

The legacy :func:`repro.analysis.sweep.run_sweep` accepts arbitrary
callables, which is convenient in tests but incompatible with shipping
work to pool workers (lambdas and closures do not pickle).  This module
hosts the standard Table-1 measurement kernels as module-level functions
so that grid tasks can reference them by **name**; every kernel has the
uniform signature ``(graph, seed) -> (rounds, value)`` and receives a
deterministic per-task seed from the batch layer.

Each registry entry is a :class:`SweepAlgorithmInfo` carrying an explicit
correctness contract -- the sweep layer reads that metadata instead of
sniffing algorithm *names* (the seed behaviour keyed correctness checks
off the substring ``"exact"``, which silently skipped any exact algorithm
whose name did not contain it and could never validate approximation
guarantees).  Three contracts exist:

* :data:`EXACT` -- the returned value must equal the true diameter.  Exact
  algorithms force the sequential diameter oracle to run.
* :data:`TWO_APPROX` -- the single-BFS eccentricity bound
  ``ceil(D / 2) <= value <= D``.
* :data:`THREE_HALVES` -- the [HPRW14] / Theorem-4 bound
  ``floor(2 D / 3) <= value <= D`` (this repository's 3/2-approximations
  return *underestimates*; the bound is the one proved for ``D_hat`` in
  :mod:`repro.algorithms.diameter_approx`).

Approximation contracts do **not** force the oracle (sweeps of pure
approximation algorithms stay cheap, see
:mod:`repro.analysis.sweep`); they are validated opportunistically
whenever the oracle is available because some exact algorithm in the same
sweep already paid for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.graphs.graph import Graph

SweepAlgorithm = Callable[..., Tuple[int, float]]

#: Correctness contracts understood by the sweep layer.
EXACT = "exact"
TWO_APPROX = "two_approx"
THREE_HALVES = "three_halves"

GUARANTEES = (EXACT, TWO_APPROX, THREE_HALVES)


@dataclass(frozen=True)
class SweepAlgorithmInfo:
    """A measurement kernel plus its explicit correctness contract.

    ``guarantee`` is one of :data:`GUARANTEES` or ``None`` (no check).
    ``force_oracle`` overrides whether this algorithm *requires* the
    sequential diameter oracle; by default only :data:`EXACT` algorithms
    do, and approximation guarantees are checked opportunistically when
    the oracle is available anyway.

    ``oracle`` optionally replaces the correctness *target*: by default a
    guarantee is validated against the graph's true diameter, but an
    algorithm computing a different quantity (the quantum radius and
    source-eccentricity problems of :mod:`repro.core.problems`) supplies
    its own module-level ground-truth callable ``(graph) -> float`` here.
    Custom-oracle algorithms never force the shared diameter oracle (it
    would be checked against the wrong quantity); their target is
    computed per record on the compiled CSR view.

    Instances are callable and delegate to the kernel, so existing code
    that treats registry values as plain callables keeps working.
    """

    kernel: SweepAlgorithm
    guarantee: Optional[str] = None
    force_oracle: Optional[bool] = None
    oracle: Optional[Callable[[Graph], float]] = None

    def __post_init__(self) -> None:
        if self.guarantee is not None and self.guarantee not in GUARANTEES:
            known = ", ".join(GUARANTEES)
            raise ValueError(
                f"unknown guarantee {self.guarantee!r} (available: {known})"
            )

    @property
    def needs_oracle(self) -> bool:
        """Whether this algorithm forces the *diameter* oracle to run."""
        if self.force_oracle is not None:
            return self.force_oracle
        return self.guarantee == EXACT and self.oracle is None

    def check_target(self, graph: Graph) -> Optional[float]:
        """The ground-truth value this algorithm's guarantee is checked
        against, when it differs from the shared diameter oracle."""
        if self.oracle is None:
            return None
        return float(self.oracle(graph))

    def __call__(self, *args, **kwargs) -> Tuple[int, float]:
        return self.kernel(*args, **kwargs)


def classical_exact(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical exact diameter (the PRT12/HW12-style baseline)."""
    from repro.algorithms.diameter_exact import run_classical_exact_diameter
    from repro.congest.network import Network

    result = run_classical_exact_diameter(Network(graph, seed=seed))
    return result.rounds, float(result.diameter)


def two_approx(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical 2-approximation (BFS from one node)."""
    from repro.algorithms.diameter_approx import run_classical_two_approximation
    from repro.congest.network import Network

    result = run_classical_two_approximation(Network(graph, seed=seed))
    return result.rounds, float(result.estimate)


def two_approx_retry(graph: Graph, seed: int) -> Tuple[int, float]:
    """Fault-tolerant 2-approximation (retrying BFS flood with backoff).

    The robustness counterpart of :func:`two_approx`: on a fault-free
    network both certify the same eccentricity bound, but this variant
    keeps converging under the message loss / churn / crash models of
    :mod:`repro.faults` (``benchmarks/bench_faults.py`` measures the
    success-probability gap).  The network picks up the process-default
    fault model, exactly like every other kernel.
    """
    from repro.algorithms.resilient import run_resilient_two_approximation
    from repro.congest.network import Network

    result = run_resilient_two_approximation(Network(graph, seed=seed))
    return result.rounds, float(result.estimate)


def hprw_three_halves(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical 3/2-approximation of [HPRW14]."""
    from repro.algorithms.diameter_approx import run_hprw_three_halves_approximation
    from repro.congest.network import Network

    result = run_hprw_three_halves_approximation(Network(graph, seed=seed), seed=seed)
    return result.rounds, float(result.estimate)


def quantum_problem_kernel(
    graph: Graph, seed: int, problem: str = "exact_diameter"
) -> Tuple[int, float]:
    """Run a registered quantum problem (reference oracle mode) as a sweep cell.

    The per-cell ``seed`` feeds two *independent* streams -- the CONGEST
    network's node randomness and the quantum schedule's measurement
    randomness -- derived with :func:`repro.runner.batch.task_seed`.
    Earlier revisions passed the raw seed to both, correlating leader
    election tie-breaks with the schedule's measurement draws (the same
    aliasing PR 3 fixed for the sweep's graph-vs-algorithm seed split).
    The schedule backend is the process default
    (:func:`repro.quantum.backend.get_default_schedule_backend`), which
    the batch runner re-applies in its pool workers, so ``--backend``
    selections reach parallel sweeps too.
    """
    from repro.congest.network import Network
    from repro.core.problems import resolve_quantum_problem
    from repro.runner.batch import task_seed

    info = resolve_quantum_problem(problem)
    network_seed = task_seed(seed, "quantum-network-stream")
    schedule_seed = task_seed(seed, "quantum-schedule-stream")
    run = info.solve(
        Network(graph, seed=network_seed),
        oracle_mode="reference",
        seed=schedule_seed,
    )
    return run.rounds, run.value


def quantum_exact(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum exact diameter (Theorem 1), reference oracle mode."""
    return quantum_problem_kernel(graph, seed, problem="exact_diameter")


def quantum_three_halves(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum 3/2-approximation (Theorem 4), reference oracle mode."""
    return quantum_problem_kernel(graph, seed, problem="three_halves")


def quantum_radius(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum exact radius (Theorem-7 instantiation), reference oracle mode."""
    return quantum_problem_kernel(graph, seed, problem="radius")


def quantum_source_ecc(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum single-source eccentricity, reference oracle mode."""
    return quantum_problem_kernel(graph, seed, problem="source_ecc")


def _radius_oracle(graph: Graph) -> float:
    """Ground truth for ``quantum_radius`` (compiled CSR view)."""
    from repro.core.problems import radius_oracle

    return radius_oracle(graph)


def _source_ecc_oracle(graph: Graph) -> float:
    """Ground truth for ``quantum_source_ecc`` (compiled CSR view)."""
    from repro.core.problems import source_eccentricity_oracle

    return source_eccentricity_oracle(graph)


#: The registry the CLI ``sweep`` command and the batched grids draw from.
#: Values carry the correctness metadata the sweep layer keys off.  The
#: ``quantum_*`` entries are shims over the problem registry of
#: :mod:`repro.core.problems` (``repro quantum`` enumerates the same
#: problems directly).
SWEEP_ALGORITHMS: Dict[str, SweepAlgorithmInfo] = {
    "classical_exact": SweepAlgorithmInfo(classical_exact, guarantee=EXACT),
    "two_approx": SweepAlgorithmInfo(two_approx, guarantee=TWO_APPROX),
    "two_approx_retry": SweepAlgorithmInfo(two_approx_retry, guarantee=TWO_APPROX),
    "hprw_three_halves": SweepAlgorithmInfo(
        hprw_three_halves, guarantee=THREE_HALVES
    ),
    "quantum_exact": SweepAlgorithmInfo(quantum_exact, guarantee=EXACT),
    "quantum_three_halves": SweepAlgorithmInfo(
        quantum_three_halves, guarantee=THREE_HALVES
    ),
    "quantum_radius": SweepAlgorithmInfo(
        quantum_radius, guarantee=EXACT, oracle=_radius_oracle
    ),
    "quantum_source_ecc": SweepAlgorithmInfo(
        quantum_source_ecc, guarantee=EXACT, oracle=_source_ecc_oracle
    ),
}

#: Problem-registry name -> sweep-registry name.  ``repro quantum`` uses
#: this to run registered problems through ``run_sweep_grid`` under the
#: same algorithm names as ``repro sweep``, so stores, exports and resume
#: are interoperable between the two commands.
QUANTUM_SWEEP_NAMES: Dict[str, str] = {
    "exact_diameter": "quantum_exact",
    "three_halves": "quantum_three_halves",
    "radius": "quantum_radius",
    "source_ecc": "quantum_source_ecc",
}


def sweep_algorithm_for_problem(problem: str) -> Tuple[str, SweepAlgorithmInfo]:
    """The sweep-registry ``(name, entry)`` for a registered quantum problem.

    The four built-in problems map to their fixed
    :data:`SWEEP_ALGORITHMS` entries (:data:`QUANTUM_SWEEP_NAMES`).
    Problems registered at runtime via
    :func:`repro.core.problems.register_quantum_problem` get an
    on-the-fly entry named ``quantum_<problem>`` whose kernel is a
    picklable :func:`functools.partial` of
    :func:`quantum_problem_kernel`, carrying the problem's own guarantee
    and ground-truth oracle.  A runtime problem whose derived name would
    shadow an existing sweep algorithm is rejected: silently returning
    the unrelated built-in entry would run the wrong kernel and validate
    against the wrong oracle.
    """
    import functools

    from repro.core.problems import resolve_quantum_problem

    problem_info = resolve_quantum_problem(problem)
    canonical = QUANTUM_SWEEP_NAMES.get(problem)
    if canonical is not None:
        return canonical, SWEEP_ALGORITHMS[canonical]
    sweep_name = f"quantum_{problem}"
    if sweep_name in SWEEP_ALGORITHMS:
        raise ValueError(
            f"quantum problem {problem!r} derives sweep name {sweep_name!r}, "
            "which already names a different sweep algorithm; register the "
            "problem under a non-colliding name"
        )
    return sweep_name, SweepAlgorithmInfo(
        functools.partial(quantum_problem_kernel, problem=problem),
        guarantee=problem_info.guarantee,
        oracle=problem_info.oracle,
    )


def resolve_algorithms(names) -> Dict[str, SweepAlgorithmInfo]:
    """Map algorithm names to registry entries, raising on unknown names."""
    table: Dict[str, SweepAlgorithmInfo] = {}
    for name in names:
        info = SWEEP_ALGORITHMS.get(name)
        if info is None:
            known = ", ".join(sorted(SWEEP_ALGORITHMS))
            raise ValueError(f"unknown sweep algorithm {name!r} (available: {known})")
        table[name] = info
    return table
