"""Picklable sweep algorithms for batched grids.

The legacy :func:`repro.analysis.sweep.run_sweep` accepts arbitrary
callables, which is convenient in tests but incompatible with shipping
work to pool workers (lambdas and closures do not pickle).  This module
hosts the standard Table-1 measurement kernels as module-level functions
so that grid tasks can reference them by **name**; every kernel has the
uniform signature ``(graph, seed) -> (rounds, value)`` and receives a
deterministic per-task seed from the batch layer.

Names containing ``"exact"`` are checked against the sequential diameter
oracle by the sweep layer, mirroring :func:`repro.analysis.sweep.run_sweep`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.graphs.graph import Graph

SweepAlgorithm = Callable[[Graph, int], Tuple[int, float]]


def classical_exact(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical exact diameter (the PRT12/HW12-style baseline)."""
    from repro.algorithms.diameter_exact import run_classical_exact_diameter
    from repro.congest.network import Network

    result = run_classical_exact_diameter(Network(graph, seed=seed))
    return result.rounds, float(result.diameter)


def two_approx(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical 2-approximation (BFS from one node)."""
    from repro.algorithms.diameter_approx import run_classical_two_approximation
    from repro.congest.network import Network

    result = run_classical_two_approximation(Network(graph, seed=seed))
    return result.rounds, float(result.estimate)


def hprw_three_halves(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical 3/2-approximation of [HPRW14]."""
    from repro.algorithms.diameter_approx import run_hprw_three_halves_approximation
    from repro.congest.network import Network

    result = run_hprw_three_halves_approximation(Network(graph, seed=seed), seed=seed)
    return result.rounds, float(result.estimate)


def quantum_exact(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum exact diameter (Theorem 1), reference oracle mode."""
    from repro.congest.network import Network
    from repro.core.exact_diameter import quantum_exact_diameter

    result = quantum_exact_diameter(
        Network(graph, seed=seed), oracle_mode="reference", seed=seed
    )
    return result.rounds, float(result.diameter)


def quantum_three_halves(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum 3/2-approximation (Theorem 4), reference oracle mode."""
    from repro.congest.network import Network
    from repro.core.approx_diameter import quantum_three_halves_diameter

    result = quantum_three_halves_diameter(
        Network(graph, seed=seed), oracle_mode="reference", seed=seed
    )
    return result.rounds, float(result.estimate)


#: The registry the CLI ``sweep`` command and the batched grids draw from.
SWEEP_ALGORITHMS: Dict[str, SweepAlgorithm] = {
    "classical_exact": classical_exact,
    "two_approx": two_approx,
    "hprw_three_halves": hprw_three_halves,
    "quantum_exact": quantum_exact,
    "quantum_three_halves": quantum_three_halves,
}


def resolve_algorithms(names) -> Dict[str, SweepAlgorithm]:
    """Map algorithm names to kernels, raising on unknown names."""
    table: Dict[str, SweepAlgorithm] = {}
    for name in names:
        kernel = SWEEP_ALGORITHMS.get(name)
        if kernel is None:
            known = ", ".join(sorted(SWEEP_ALGORITHMS))
            raise ValueError(f"unknown sweep algorithm {name!r} (available: {known})")
        table[name] = kernel
    return table
