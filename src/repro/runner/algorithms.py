"""Picklable sweep algorithms for batched grids, with correctness metadata.

The legacy :func:`repro.analysis.sweep.run_sweep` accepts arbitrary
callables, which is convenient in tests but incompatible with shipping
work to pool workers (lambdas and closures do not pickle).  This module
hosts the standard Table-1 measurement kernels as module-level functions
so that grid tasks can reference them by **name**; every kernel has the
uniform signature ``(graph, seed) -> (rounds, value)`` and receives a
deterministic per-task seed from the batch layer.

Each registry entry is a :class:`SweepAlgorithmInfo` carrying an explicit
correctness contract -- the sweep layer reads that metadata instead of
sniffing algorithm *names* (the seed behaviour keyed correctness checks
off the substring ``"exact"``, which silently skipped any exact algorithm
whose name did not contain it and could never validate approximation
guarantees).  Three contracts exist:

* :data:`EXACT` -- the returned value must equal the true diameter.  Exact
  algorithms force the sequential diameter oracle to run.
* :data:`TWO_APPROX` -- the single-BFS eccentricity bound
  ``ceil(D / 2) <= value <= D``.
* :data:`THREE_HALVES` -- the [HPRW14] / Theorem-4 bound
  ``floor(2 D / 3) <= value <= D`` (this repository's 3/2-approximations
  return *underestimates*; the bound is the one proved for ``D_hat`` in
  :mod:`repro.algorithms.diameter_approx`).

Approximation contracts do **not** force the oracle (sweeps of pure
approximation algorithms stay cheap, see
:mod:`repro.analysis.sweep`); they are validated opportunistically
whenever the oracle is available because some exact algorithm in the same
sweep already paid for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.graphs.graph import Graph

SweepAlgorithm = Callable[..., Tuple[int, float]]

#: Correctness contracts understood by the sweep layer.
EXACT = "exact"
TWO_APPROX = "two_approx"
THREE_HALVES = "three_halves"

GUARANTEES = (EXACT, TWO_APPROX, THREE_HALVES)


@dataclass(frozen=True)
class SweepAlgorithmInfo:
    """A measurement kernel plus its explicit correctness contract.

    ``guarantee`` is one of :data:`GUARANTEES` or ``None`` (no check).
    ``force_oracle`` overrides whether this algorithm *requires* the
    sequential diameter oracle; by default only :data:`EXACT` algorithms
    do, and approximation guarantees are checked opportunistically when
    the oracle is available anyway.

    Instances are callable and delegate to the kernel, so existing code
    that treats registry values as plain callables keeps working.
    """

    kernel: SweepAlgorithm
    guarantee: Optional[str] = None
    force_oracle: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.guarantee is not None and self.guarantee not in GUARANTEES:
            known = ", ".join(GUARANTEES)
            raise ValueError(
                f"unknown guarantee {self.guarantee!r} (available: {known})"
            )

    @property
    def needs_oracle(self) -> bool:
        """Whether this algorithm forces the diameter oracle to run."""
        if self.force_oracle is not None:
            return self.force_oracle
        return self.guarantee == EXACT

    def __call__(self, *args, **kwargs) -> Tuple[int, float]:
        return self.kernel(*args, **kwargs)


def classical_exact(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical exact diameter (the PRT12/HW12-style baseline)."""
    from repro.algorithms.diameter_exact import run_classical_exact_diameter
    from repro.congest.network import Network

    result = run_classical_exact_diameter(Network(graph, seed=seed))
    return result.rounds, float(result.diameter)


def two_approx(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical 2-approximation (BFS from one node)."""
    from repro.algorithms.diameter_approx import run_classical_two_approximation
    from repro.congest.network import Network

    result = run_classical_two_approximation(Network(graph, seed=seed))
    return result.rounds, float(result.estimate)


def hprw_three_halves(graph: Graph, seed: int) -> Tuple[int, float]:
    """Classical 3/2-approximation of [HPRW14]."""
    from repro.algorithms.diameter_approx import run_hprw_three_halves_approximation
    from repro.congest.network import Network

    result = run_hprw_three_halves_approximation(Network(graph, seed=seed), seed=seed)
    return result.rounds, float(result.estimate)


def quantum_exact(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum exact diameter (Theorem 1), reference oracle mode."""
    from repro.congest.network import Network
    from repro.core.exact_diameter import quantum_exact_diameter

    result = quantum_exact_diameter(
        Network(graph, seed=seed), oracle_mode="reference", seed=seed
    )
    return result.rounds, float(result.diameter)


def quantum_three_halves(graph: Graph, seed: int) -> Tuple[int, float]:
    """Quantum 3/2-approximation (Theorem 4), reference oracle mode."""
    from repro.congest.network import Network
    from repro.core.approx_diameter import quantum_three_halves_diameter

    result = quantum_three_halves_diameter(
        Network(graph, seed=seed), oracle_mode="reference", seed=seed
    )
    return result.rounds, float(result.estimate)


#: The registry the CLI ``sweep`` command and the batched grids draw from.
#: Values carry the correctness metadata the sweep layer keys off.
SWEEP_ALGORITHMS: Dict[str, SweepAlgorithmInfo] = {
    "classical_exact": SweepAlgorithmInfo(classical_exact, guarantee=EXACT),
    "two_approx": SweepAlgorithmInfo(two_approx, guarantee=TWO_APPROX),
    "hprw_three_halves": SweepAlgorithmInfo(
        hprw_three_halves, guarantee=THREE_HALVES
    ),
    "quantum_exact": SweepAlgorithmInfo(quantum_exact, guarantee=EXACT),
    "quantum_three_halves": SweepAlgorithmInfo(
        quantum_three_halves, guarantee=THREE_HALVES
    ),
}


def resolve_algorithms(names) -> Dict[str, SweepAlgorithmInfo]:
    """Map algorithm names to registry entries, raising on unknown names."""
    table: Dict[str, SweepAlgorithmInfo] = {}
    for name in names:
        info = SWEEP_ALGORITHMS.get(name)
        if info is None:
            known = ", ".join(sorted(SWEEP_ALGORITHMS))
            raise ValueError(f"unknown sweep algorithm {name!r} (available: {known})")
        table[name] = info
    return table
