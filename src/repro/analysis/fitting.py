"""Scaling fits: power-law exponents, ratios and crossover points.

The paper's claims are asymptotic (``O~`` / ``Omega~``); the reproduction
checks their *shape* on finite instances.  The primary tools are

* :func:`fit_power_law` -- least-squares fit of ``y ~ C * x^a`` in log-log
  space, returning the exponent ``a`` (e.g. measured quantum rounds against
  ``n * D`` should give an exponent close to 1/2 for Theorem 1);
* :func:`fit_power_law_two_predictors` -- fit ``y ~ C * u^a * v^b`` (e.g.
  rounds against ``n`` and ``D`` separately);
* :func:`crossover_point` -- where one measured series overtakes another
  (e.g. where the quantum algorithm starts beating the classical baseline);
* :func:`geometric_mean_ratio` -- the typical speed-up factor between two
  series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    from repro._numpy import missing_numpy_message

    raise ImportError(missing_numpy_message("the scaling-fit analysis"))


@dataclass
class PowerLawFit:
    """Result of a log-log least-squares fit ``y ~ C * x^exponent``."""

    exponent: float
    constant: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Predicted value at ``x``."""
        return self.constant * (x ** self.exponent)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ~ C * x^a`` by least squares in log-log space."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting requires positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    design = np.vstack([log_x, np.ones_like(log_x)]).T
    coeffs, residuals, _, _ = np.linalg.lstsq(design, log_y, rcond=None)
    exponent, intercept = float(coeffs[0]), float(coeffs[1])
    predictions = design @ coeffs
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    explained = float(np.sum((predictions - log_y.mean()) ** 2))
    r_squared = 1.0 if total == 0 else min(1.0, explained / total)
    return PowerLawFit(
        exponent=exponent, constant=math.exp(intercept), r_squared=r_squared
    )


@dataclass
class TwoPredictorFit:
    """Result of fitting ``y ~ C * u^a * v^b``."""

    exponent_u: float
    exponent_v: float
    constant: float

    def predict(self, u: float, v: float) -> float:
        """Predicted value at ``(u, v)``."""
        return self.constant * (u ** self.exponent_u) * (v ** self.exponent_v)


def fit_power_law_two_predictors(
    us: Sequence[float], vs: Sequence[float], ys: Sequence[float]
) -> TwoPredictorFit:
    """Fit ``y ~ C * u^a * v^b`` by least squares in log space."""
    if not (len(us) == len(vs) == len(ys)):
        raise ValueError("us, vs and ys must have the same length")
    if len(us) < 3:
        raise ValueError("need at least three points for a two-predictor fit")
    if any(value <= 0 for value in list(us) + list(vs) + list(ys)):
        raise ValueError("power-law fitting requires positive data")
    log_u = np.log(np.asarray(us, dtype=float))
    log_v = np.log(np.asarray(vs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    design = np.vstack([log_u, log_v, np.ones_like(log_u)]).T
    coeffs, _, _, _ = np.linalg.lstsq(design, log_y, rcond=None)
    return TwoPredictorFit(
        exponent_u=float(coeffs[0]),
        exponent_v=float(coeffs[1]),
        constant=math.exp(float(coeffs[2])),
    )


def crossover_point(
    xs: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> Optional[float]:
    """The smallest ``x`` at which ``series_a`` drops (weakly) below ``series_b``.

    Returns ``None`` if ``a`` never drops below ``b`` on the sampled range.
    Used to locate where the quantum round count starts to beat the
    classical one.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("all series must have the same length")
    for x, a, b in sorted(zip(xs, series_a, series_b)):
        if a <= b:
            return x
    return None


def geometric_mean_ratio(
    numerators: Sequence[float], denominators: Sequence[float]
) -> float:
    """Geometric mean of pointwise ratios (a robust 'typical factor')."""
    if len(numerators) != len(denominators):
        raise ValueError("series must have the same length")
    if not numerators:
        raise ValueError("series must be non-empty")
    logs = [
        math.log(n / d)
        for n, d in zip(numerators, denominators)
        if n > 0 and d > 0
    ]
    if not logs:
        raise ValueError("no positive pairs to compare")
    return math.exp(sum(logs) / len(logs))
