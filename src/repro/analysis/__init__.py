"""Analysis utilities: parameter sweeps, scaling fits and table rendering.

The benchmark harnesses use these helpers to turn raw measurements
(rounds as a function of ``n`` and ``D``) into the quantities the paper's
Table 1 talks about: scaling exponents, classical/quantum ratios and
crossover points.
"""

from repro.analysis.fitting import (
    crossover_point,
    fit_power_law,
    fit_power_law_two_predictors,
    geometric_mean_ratio,
)
from repro.analysis.sweep import (
    SweepRecord,
    grid_signature,
    run_sweep,
    run_sweep_grid,
    sweep_table,
    sweep_task_key,
)
from repro.analysis.tables import render_table

__all__ = [
    "fit_power_law",
    "fit_power_law_two_predictors",
    "crossover_point",
    "geometric_mean_ratio",
    "SweepRecord",
    "run_sweep",
    "run_sweep_grid",
    "sweep_table",
    "sweep_task_key",
    "grid_signature",
    "render_table",
]
