"""Rendering of Table 1 (paper formulas next to measured values)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.complexity import Table1Row, table1_rows


def render_table(
    rows: Sequence[Sequence[str]], header: Sequence[str]
) -> str:
    """Render rows of strings as an aligned text table."""
    all_rows: List[Sequence[str]] = [list(header)] + [list(row) for row in rows]
    widths = [
        max(len(str(row[col])) for row in all_rows) for col in range(len(header))
    ]
    lines = []
    for index, row in enumerate(all_rows):
        line = "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def render_table1(
    n: int, diameter: int, memory_qubits: Optional[int] = None
) -> str:
    """Table 1 with the paper's formulas evaluated at one ``(n, D)`` point.

    The benchmark harnesses print this next to their measured round counts
    so the reader can compare shapes directly.
    """
    rows = []
    for row in table1_rows(memory_qubits=memory_qubits):
        values = row.evaluate(n, diameter)
        rows.append(
            [
                row.problem,
                row.kind,
                row.classical_label,
                f"{values['classical']:.1f}",
                row.quantum_label,
                f"{values['quantum']:.1f}",
            ]
        )
    header = [
        "problem",
        "bound",
        "classical (paper)",
        f"value@(n={n},D={diameter})",
        "quantum (paper)",
        "value",
    ]
    return render_table(rows, header)
