"""Parameter sweeps over graph families.

A sweep runs one or more diameter algorithms over a family of graphs with
varying ``(n, D)`` and collects one :class:`SweepRecord` per run.  The
benchmark harnesses use sweeps to regenerate the rows of Table 1; the
records are deliberately plain so they can be printed, fitted
(:mod:`repro.analysis.fitting`) or dumped by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph


@dataclass
class SweepRecord:
    """One measurement: an algorithm run on one graph."""

    family: str
    algorithm: str
    num_nodes: int
    diameter: int
    rounds: int
    value: float
    correct: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)


def sweep_table(records: Iterable[SweepRecord]) -> str:
    """Render a list of sweep records as an aligned text table."""
    records = list(records)
    if not records:
        return "(no records)"
    header = ["family", "algorithm", "n", "D", "rounds", "value", "correct"]
    rows = [header]
    for record in records:
        rows.append(
            [
                record.family,
                record.algorithm,
                str(record.num_nodes),
                str(record.diameter),
                str(record.rounds),
                f"{record.value:g}",
                "-" if record.correct is None else str(record.correct),
            ]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def run_sweep(
    graphs: Sequence[Tuple[str, Graph]],
    algorithms: Dict[str, Callable[[Graph], Tuple[int, float]]],
) -> List[SweepRecord]:
    """Run every algorithm on every graph and collect records.

    ``algorithms`` maps a name to a callable returning ``(rounds, value)``
    for a given graph.  Correctness is checked against the sequential
    diameter oracle when the algorithm's name contains ``"exact"``.
    """
    records: List[SweepRecord] = []
    for family, graph in graphs:
        true_diameter = graph.diameter()
        for name, runner in algorithms.items():
            rounds, value = runner(graph)
            correct: Optional[bool] = None
            if "exact" in name:
                correct = int(value) == true_diameter
            records.append(
                SweepRecord(
                    family=family,
                    algorithm=name,
                    num_nodes=graph.num_nodes,
                    diameter=true_diameter,
                    rounds=rounds,
                    value=value,
                    correct=correct,
                )
            )
    return records
