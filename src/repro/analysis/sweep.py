"""Parameter sweeps over graph families.

A sweep runs one or more diameter algorithms over a family of graphs with
varying ``(n, D)`` and collects one :class:`SweepRecord` per run.  The
benchmark harnesses use sweeps to regenerate the rows of Table 1; the
records are deliberately plain so they can be printed, fitted
(:mod:`repro.analysis.fitting`), exported or persisted
(:mod:`repro.store`).

Sweeps are batch workloads: every ``(graph, algorithm)`` cell is an
independent, deterministic run.  Both entry points therefore execute on
the :class:`repro.runner.batch.BatchRunner` -- ``jobs=1`` (the default)
runs serially in-process, ``jobs=N`` fans the cells out over a process
pool.  The task body is the same code either way and results are
aggregated in task order, so the parallel record list is byte-identical
(same order, same values) to the serial one.

Two entry points:

* :func:`run_sweep` takes pre-built graphs and arbitrary algorithm
  callables (the historical API).  With ``jobs > 1`` the callables and
  graphs must be picklable; un-picklable inputs (lambdas, closures)
  degrade gracefully to serial execution.
* :func:`run_sweep_grid` takes :class:`repro.runner.spec.GraphSpec` recipes
  and algorithm *names* from :data:`repro.runner.algorithms.SWEEP_ALGORITHMS`.
  Workers construct each graph themselves, once per worker per spec
  (see :func:`repro.runner.spec.build_graph_cached`), which keeps task
  payloads tiny and avoids rebuilding a graph once per algorithm.

Correctness checking is driven by **explicit metadata**: registry entries
are :class:`repro.runner.algorithms.SweepAlgorithmInfo` instances whose
``guarantee`` field names the contract to validate (exact equality with
the oracle diameter, the 2-approximation bound, or the [HPRW14]/Theorem-4
3/2-approximation bound).  Plain callables carry no metadata and are
never checked.  Earlier revisions keyed the check off the substring
``"exact"`` in the algorithm *name*, which was brittle (a renamed exact
algorithm silently lost its check) and could not express approximation
guarantees.

Algorithms whose headline value is not a diameter -- the quantum radius
and single-source-eccentricity problems of :mod:`repro.core.problems` --
carry their own ground-truth ``oracle`` on the registry entry; their
guarantee is validated against that oracle's value (computed per record
on the compiled CSR view) instead of the shared diameter oracle, which
they consequently never force.

The sequential diameter oracle is **lazy**: the true diameter is the most
expensive part of a sweep record's provenance (all-pairs BFS), so it is
only computed -- once per graph, on the compiled CSR view
(``graph.compile().diameter()``) -- when at least one algorithm in the
sweep *requires* it (``SweepAlgorithmInfo.needs_oracle``; by default the
exact algorithms).  Sweeps of pure approximation algorithms leave
:attr:`SweepRecord.diameter` as ``None`` (rendered ``-`` by
:func:`sweep_table`); when the oracle is available anyway, approximation
guarantees are validated opportunistically.

Fault injection: when the process-default fault model
(:mod:`repro.faults`) is non-null -- set via ``run_sweep_grid``'s
``fault_model`` parameter, the ``repro sweep --loss/--crash/--churn``
flags or :func:`repro.faults.set_default_fault_model` -- the networks the
kernels build inject message loss, delays, crashes and churn.  Under
faults, non-convergence is an *expected outcome*, not a bug: simulator
aborts (round/timeout limits, quiescence stalls) and unreached-node
errors are captured into the record as ``success=False`` with a
``failure_reason`` instead of aborting the whole sweep.  Task keys and
grid signatures incorporate the fault model's description, so faulty and
fault-free sweeps never alias in a store.

Checkpoint/resume: :func:`run_sweep_grid` optionally persists every
record to a :class:`repro.store.ExperimentStore` as it completes, and
with ``resume=True`` skips cells whose task keys are already in the
store, so an interrupted grid continues instead of recomputing.  Task
keys derive from the cell's identity (spec, algorithm, base seed), never
from execution order, so the merged record list is byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.congest.errors import CongestSimulationError
from repro.faults import FaultModel, get_default_fault_model, set_default_fault_model
from repro.graphs.graph import Graph
from repro.runner.algorithms import (
    EXACT,
    THREE_HALVES,
    TWO_APPROX,
    SweepAlgorithmInfo,
)
from repro.runner.batch import BatchRunner, task_seed
from repro.runner.spec import GraphSpec, build_graph_cached, graph_diameter_cached

#: Tolerance of the exactness assertion: an exact algorithm must return a
#: value that *is* an integer (up to float noise), not merely one that
#: truncates to the right answer.
_INTEGRALITY_TOL = 1e-6


class SweepCancelled(Exception):
    """A checkpointed sweep stopped cooperatively between task completions.

    Raised by :func:`run_sweep_grid` when its ``should_stop`` hook returns
    true.  Every record completed before the stop is already persisted to
    the store (records are flushed as they complete), so the partial
    progress in ``completed`` / ``total`` is durable and the grid can be
    resumed later exactly like an interrupted run.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"sweep cancelled after {completed}/{total} cells (completed "
            "cells are persisted; resume to continue)"
        )
        self.completed = completed
        self.total = total


@dataclass
class SweepRecord:
    """One measurement: an algorithm run on one graph.

    ``diameter`` is the true diameter from the sequential oracle when the
    sweep needed it for a correctness check, else ``None`` (the oracle is
    lazy; see the module docstring).  ``correct`` reflects the algorithm's
    declared guarantee -- exact equality for exact algorithms, the
    approximation bound for approximation algorithms -- and stays ``None``
    when no guarantee was declared or the oracle was unavailable.
    Failed checks describe the mismatch in ``extra``
    (``oracle_diameter``, ``value_minus_oracle`` and, for non-integral
    exact values, ``nonintegral_value``).

    ``success`` is ``False`` when the run did not converge -- only
    possible under an active fault model, where the simulator abort (or
    unreached-node error) is captured into ``failure_reason`` instead of
    propagating.  Failed cells carry ``value=-1.0``, ``correct=None``
    and the rounds completed before the abort.
    """

    family: str
    algorithm: str
    num_nodes: int
    diameter: Optional[int]
    rounds: int
    value: float
    correct: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)
    success: bool = True
    failure_reason: Optional[str] = None


def sweep_table(records: Iterable[SweepRecord]) -> str:
    """Render a list of sweep records as an aligned text table.

    A ``status`` column (``ok``/``failed``) appears only when some record
    failed to converge, so fault-free tables render exactly as before.
    """
    records = list(records)
    if not records:
        return "(no records)"
    with_status = any(not record.success for record in records)
    header = ["family", "algorithm", "n", "D", "rounds", "value", "correct"]
    if with_status:
        header = header + ["status"]
    rows = [header]
    for record in records:
        row = [
            record.family,
            record.algorithm,
            str(record.num_nodes),
            "-" if record.diameter is None else str(record.diameter),
            str(record.rounds),
            f"{record.value:g}",
            "-" if record.correct is None else str(record.correct),
        ]
        if with_status:
            row.append("ok" if record.success else "failed")
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def _guarantee_of(algorithm) -> Optional[str]:
    """The declared correctness contract of an algorithm table entry."""
    if isinstance(algorithm, SweepAlgorithmInfo):
        return algorithm.guarantee
    return None


def _needs_oracle(algorithms: Dict[str, Callable]) -> bool:
    """Whether any algorithm in the table requires the diameter oracle.

    Driven by :attr:`SweepAlgorithmInfo.needs_oracle`; plain callables
    (no metadata) never force the oracle.
    """
    return any(
        isinstance(algorithm, SweepAlgorithmInfo) and algorithm.needs_oracle
        for algorithm in algorithms.values()
    )


def _check_target(algorithm, graph: Graph, true_diameter: Optional[int]):
    """The ground-truth value ``algorithm``'s guarantee is checked against.

    The shared (lazy) diameter oracle by default; algorithms carrying
    their own ``oracle`` (quantum radius / source eccentricity) get that
    oracle's value instead, computed on the compiled CSR view.
    """
    if isinstance(algorithm, SweepAlgorithmInfo) and algorithm.oracle is not None:
        return algorithm.check_target(graph)
    return true_diameter


def _check_value(
    guarantee: Optional[str], value: float, true_diameter
) -> Tuple[Optional[bool], Dict[str, float]]:
    """Validate a measured value against its declared guarantee.

    ``true_diameter`` is the check target -- the oracle diameter for
    ordinary algorithms, the algorithm's own oracle value for
    custom-oracle entries (the failed-check ``extra`` keys keep the
    historical ``oracle_diameter`` name for export-schema stability).

    Returns ``(correct, extra)``: ``correct`` is ``None`` when no
    guarantee was declared or no oracle target is available; ``extra``
    describes a failed check (and is empty otherwise).
    """
    if guarantee is None or true_diameter is None:
        return None, {}
    extra: Dict[str, float] = {}
    if guarantee == EXACT:
        # round, not int(): int() truncates, so 3.9999999 would silently
        # become 3.  The exactness assertion additionally rejects values
        # that are not integers at all (e.g. 3.5 "close enough" to 4).
        rounded = round(value)
        integral = abs(value - rounded) <= _INTEGRALITY_TOL
        if not integral:
            extra["nonintegral_value"] = value
        correct = integral and int(rounded) == true_diameter
    elif guarantee == TWO_APPROX:
        # Single-BFS eccentricity: ceil(D / 2) <= value <= D.
        correct = value <= true_diameter and 2 * value >= true_diameter
    elif guarantee == THREE_HALVES:
        # [HPRW14] / Theorem 4 underestimate: floor(2 D / 3) <= value <= D,
        # the bound proved for D_hat in diameter_approx / approx_diameter.
        correct = (2 * true_diameter) // 3 <= value <= true_diameter
    else:  # pragma: no cover - rejected at SweepAlgorithmInfo construction
        raise ValueError(f"unknown guarantee {guarantee!r}")
    if not correct:
        extra["oracle_diameter"] = float(true_diameter)
        extra["value_minus_oracle"] = float(value - true_diameter)
    return correct, extra


def _run_cell(kernel, *args) -> Tuple[int, float, bool, Optional[str]]:
    """Invoke one measurement kernel, degrading gracefully under faults.

    Returns ``(rounds, value, success, failure_reason)``.  With the null
    fault model the kernel call is not wrapped at all -- an exception is a
    bug and propagates exactly as before.  Under an active fault model,
    simulator aborts (:class:`repro.congest.errors.CongestSimulationError`:
    round/timeout limits, quiescence stalls) and the unreached-node
    ``RuntimeError`` of the BFS-based drivers are expected outcomes and
    become failed records; the rounds completed before a round-limit
    abort are recovered from the enriched exception.
    """
    if get_default_fault_model().is_null:
        rounds, value = kernel(*args)
        return rounds, value, True, None
    try:
        rounds, value = kernel(*args)
    except (CongestSimulationError, RuntimeError) as error:
        rounds = getattr(error, "rounds_completed", None) or 0
        return rounds, -1.0, False, f"{type(error).__name__}: {error}"
    return rounds, value, True, None


def _sweep_one_graph(
    algorithms: Dict[str, Callable[[Graph], Tuple[int, float]]],
    task: Tuple[str, Graph],
) -> List[SweepRecord]:
    """Run every algorithm on one graph (the per-task body of a sweep).

    The diameter oracle runs at most once per graph, and only when some
    algorithm in the table requires a correctness check.
    """
    family, graph = task
    # The oracle runs on the compiled CSR view; the view is cached on the
    # graph, so repeated sweeps over the same graph compile once.
    true_diameter: Optional[int] = (
        graph.compile().diameter() if _needs_oracle(algorithms) else None
    )
    records: List[SweepRecord] = []
    for name, runner in algorithms.items():
        rounds, value, success, failure_reason = _run_cell(runner, graph)
        if success:
            correct, extra = _check_value(
                _guarantee_of(runner),
                value,
                _check_target(runner, graph, true_diameter),
            )
        else:
            correct, extra = None, {}
        records.append(
            SweepRecord(
                family=family,
                algorithm=name,
                num_nodes=graph.num_nodes,
                diameter=true_diameter,
                rounds=rounds,
                value=value,
                correct=correct,
                extra=extra,
                success=success,
                failure_reason=failure_reason,
            )
        )
    return records


def _picklable(*objects) -> bool:
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


def run_sweep(
    graphs: Sequence[Tuple[str, Graph]],
    algorithms: Dict[str, Callable[[Graph], Tuple[int, float]]],
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> List[SweepRecord]:
    """Run every algorithm on every graph and collect records.

    ``algorithms`` maps a name to a callable returning ``(rounds, value)``
    for a given graph; wrap a callable in
    :class:`repro.runner.algorithms.SweepAlgorithmInfo` to declare a
    correctness guarantee.  The sequential diameter oracle is computed
    lazily, once per graph, and skipped entirely when no algorithm
    requires it.

    ``jobs`` (or an explicit ``runner``) fans the per-graph tasks out over
    a process pool; records come back in the same order as serial
    execution.  Parallel dispatch requires picklable inputs: un-picklable
    algorithm callables (lambdas, closures) silently degrade the sweep to
    serial execution with identical records.
    """
    if runner is None:
        runner = BatchRunner(jobs=jobs)
    # Probe only the algorithm table: callables (lambdas, closures) are the
    # realistic unpicklable input, and probing the graphs as well would
    # serialize the whole grid a second time just to throw the result away.
    if runner.jobs > 1 and not _picklable(algorithms):
        runner = BatchRunner(jobs=1)
    per_graph = runner.map(_sweep_one_graph, list(graphs), context=algorithms)
    return [record for records in per_graph for record in records]


def _grid_cell_cost(task: Tuple[GraphSpec, str]) -> float:
    """The cost model's static prior for one grid cell (chunk planning).

    Resolves the algorithm's correctness guarantee through the sweep
    registry, falling back to the quantum problem registry (quantum
    grids submit problem names), then to the neutral exponent.
    """
    from repro.dispatch.cost import guarantee_of, static_cell_cost

    spec, name = task
    guarantee = guarantee_of(name)
    if guarantee is None:
        guarantee = guarantee_of(name, kind="quantum")
    return static_cell_cost(spec.num_nodes, guarantee)


def _sweep_one_grid_cell(
    context: Tuple[Dict[str, Callable[[Graph, int], Tuple[int, float]]], int],
    task: Tuple[GraphSpec, str],
) -> SweepRecord:
    """Run one ``(spec, algorithm)`` grid cell in this process.

    The graph (and, when needed, its diameter oracle) comes from the
    per-process caches, so a chunk of cells sharing a spec constructs the
    graph once.
    """
    algorithms, base_seed = context
    spec, name = task
    graph = build_graph_cached(spec)
    seed = task_seed(base_seed, spec, name)
    algorithm = algorithms[name]
    rounds, value, success, failure_reason = _run_cell(algorithm, graph, seed)
    true_diameter: Optional[int] = None
    if _needs_oracle(algorithms):
        # Some algorithm of this sweep needs the oracle, so every record
        # of the spec carries it (matching run_sweep); the per-process
        # cache makes this one computation per spec per worker.
        true_diameter = graph_diameter_cached(spec)
    if success:
        correct, extra = _check_value(
            _guarantee_of(algorithm),
            value,
            _check_target(algorithm, graph, true_diameter),
        )
    else:
        correct, extra = None, {}
    return SweepRecord(
        family=spec.label,
        algorithm=name,
        num_nodes=graph.num_nodes,
        diameter=true_diameter,
        rounds=rounds,
        value=value,
        correct=correct,
        extra=extra,
        success=success,
        failure_reason=failure_reason,
    )


def sweep_task_key(
    spec: GraphSpec,
    algorithm: str,
    base_seed: int,
    fault: Optional[FaultModel] = None,
) -> str:
    """The stable identity of one grid cell, used for checkpoint/resume.

    Derives from the cell's *inputs* only (never from execution order or
    timing), so a resumed run recognises completed cells regardless of
    worker count or interruption point.  A non-null ``fault`` model is
    part of the cell's identity (a lossy record must never satisfy a
    fault-free resume); the null model contributes nothing, so every
    pre-fault store remains resumable.
    """
    key = (
        f"{spec.family}|n={spec.num_nodes}|D={spec.diameter}"
        f"|graph_seed={spec.seed}|algorithm={algorithm}|base_seed={base_seed}"
    )
    if fault is not None and not fault.is_null:
        key += f"|fault={fault.describe()}"
    return key


def grid_signature(
    specs: Sequence[GraphSpec],
    algorithm_names: Sequence[str],
    base_seed: int,
    fault: Optional[FaultModel] = None,
) -> str:
    """A digest identifying a grid, stored in run headers.

    Resuming into a store written for a *different* grid would silently
    mix incompatible records, so :func:`run_sweep_grid` refuses when the
    signatures disagree.  The fault model participates through the task
    keys (see :func:`sweep_task_key`).
    """
    keys = [
        sweep_task_key(spec, name, base_seed, fault)
        for spec in specs
        for name in algorithm_names
    ]
    return hashlib.sha256("\n".join(keys).encode("utf-8")).hexdigest()[:16]


def run_sweep_grid(
    specs: Sequence[GraphSpec],
    algorithms: Dict[str, Callable[[Graph, int], Tuple[int, float]]],
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    base_seed: int = 0,
    store=None,
    resume: bool = False,
    fault_model: Optional[FaultModel] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    dispatch=None,
) -> List[SweepRecord]:
    """Sweep a ``specs x algorithms`` grid, one record per cell.

    ``algorithms`` maps names to picklable kernels with the
    ``(graph, seed) -> (rounds, value)`` signature of
    :mod:`repro.runner.algorithms`; each cell receives a deterministic
    seed derived from ``(base_seed, spec, name)``, so results do not
    depend on worker assignment or execution order.  Cells are submitted
    spec-major so chunk neighbours share the per-worker graph cache.

    ``fault_model`` (a :class:`repro.faults.FaultModel` or registry name)
    installs a process-default fault model for the duration of the grid
    (restored afterwards); ``None`` leaves whatever default is active.
    The batch runner re-applies the default in its pool workers, so
    parallel faulty sweeps stay byte-identical to serial ones.

    ``store`` (a :class:`repro.store.ExperimentStore`) persists every
    record as it completes, together with a run-provenance header and a
    completion footer.  With ``resume=True``, cells whose task keys are
    already in the store are loaded instead of recomputed; the merged
    record list is identical to an uninterrupted run.  Writing a fresh
    sweep into a non-empty store requires ``resume=True`` (or a new
    file) -- mixing grids is refused via :func:`grid_signature`.  The
    store's advisory writer lock is held for the duration of the run, so
    two writers (a daemon worker and a concurrent ``repro sweep --out``,
    say) cannot interleave appends to one shard -- the second raises
    :class:`repro.store.StoreLockError` naming the holder pid.

    ``dispatch`` selects where cells execute: a backend name from
    :data:`repro.dispatch.DISPATCH_NAMES` (``inprocess`` /
    ``multiprocessing`` / ``remote``) or a pre-configured backend object
    such as :class:`repro.dispatch.RemoteDispatch` -- anything offering
    the BatchRunner mapping surface.  ``None`` (the default) keeps the
    explicit ``runner`` / ``jobs`` behaviour.  Aggregation, checkpoint
    appends and progress accounting below are backend-agnostic, so every
    backend inherits the byte-identical-to-serial guarantee.

    ``progress`` / ``should_stop`` are the service layer's cooperative
    hooks, honoured on checkpointed (``store``) runs: after every
    completed cell ``progress(done, total)`` is called with durable
    counts, and a true ``should_stop()`` raises :class:`SweepCancelled`
    *between* task completions -- everything finished so far is already
    flushed, so a cancelled grid resumes exactly like an interrupted one.
    """
    if fault_model is not None:
        previous = set_default_fault_model(fault_model)
        try:
            return run_sweep_grid(
                specs,
                algorithms,
                jobs=jobs,
                runner=runner,
                base_seed=base_seed,
                store=store,
                resume=resume,
                progress=progress,
                should_stop=should_stop,
                dispatch=dispatch,
            )
        finally:
            set_default_fault_model(previous)

    if dispatch is not None:
        # Local import: repro.dispatch imports this module for the task
        # keys and cell body, so the dependency must stay one-way at
        # import time.
        from repro.dispatch.backend import resolve_dispatch

        runner = resolve_dispatch(dispatch, jobs=jobs, runner=runner)
    elif runner is None:
        runner = BatchRunner(jobs=jobs)
    if (
        isinstance(runner, BatchRunner)
        and runner.cost_of is None
        and runner.chunk_size is None
    ):
        # Default the local pool's chunk plan to the dispatch cost
        # model's static per-cell prior: expensive large-n exact cells
        # end up in small tail chunks instead of padding a fixed-size
        # chunk of cheap ones.  Estimation happens in-parent only, so
        # picklability is not a concern.
        runner.cost_of = _grid_cell_cost
    fault = get_default_fault_model()
    tasks = [(spec, name) for spec in specs for name in algorithms]
    context = (algorithms, base_seed)
    if store is None:
        return runner.map(_sweep_one_grid_cell, tasks, context=context)

    with store.acquire_writer():
        signature = grid_signature(specs, list(algorithms), base_seed, fault)
        started = time.perf_counter()
        completed = store.begin_sweep(
            specs=specs,
            algorithms=list(algorithms),
            base_seed=base_seed,
            signature=signature,
            jobs=runner.jobs,
            resume=resume,
        )
        keys = [sweep_task_key(spec, name, base_seed, fault) for spec, name in tasks]
        results: List[Optional[SweepRecord]] = [completed.get(key) for key in keys]
        pending = [index for index, record in enumerate(results) if record is None]
        done = len(tasks) - len(pending)
        if progress is not None:
            progress(done, len(tasks))
        if should_stop is not None and should_stop():
            raise SweepCancelled(completed=done, total=len(tasks))
        # zip() pulls from imap lazily, so every record is persisted the
        # moment it is aggregated -- an interrupted run keeps its completed
        # prefix.  The stream comes first in the zip: with equal lengths,
        # the final pull exhausts the generator, running its pool shutdown
        # (close/join) instead of leaving it suspended for GC-time
        # terminate().  (An early SweepCancelled exit leaves the generator
        # to be closed by the raise, which terminates the pool -- the cells
        # in flight are recomputed on resume.)
        stream = runner.imap(
            _sweep_one_grid_cell, [tasks[index] for index in pending], context=context
        )
        for record, index in zip(stream, pending):
            store.append_record(keys[index], index, record)
            results[index] = record
            done += 1
            if progress is not None:
                progress(done, len(tasks))
            if should_stop is not None and should_stop():
                raise SweepCancelled(completed=done, total=len(tasks))
        store.finish_sweep(
            wall_seconds=time.perf_counter() - started,
            total_records=len(results),
            resumed_records=len(tasks) - len(pending),
        )
        return results
