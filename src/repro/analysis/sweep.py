"""Parameter sweeps over graph families.

A sweep runs one or more diameter algorithms over a family of graphs with
varying ``(n, D)`` and collects one :class:`SweepRecord` per run.  The
benchmark harnesses use sweeps to regenerate the rows of Table 1; the
records are deliberately plain so they can be printed, fitted
(:mod:`repro.analysis.fitting`) or dumped by the harness.

Sweeps are batch workloads: every ``(graph, algorithm)`` cell is an
independent, deterministic run.  Both entry points therefore execute on
the :class:`repro.runner.batch.BatchRunner` -- ``jobs=1`` (the default)
runs serially in-process, ``jobs=N`` fans the cells out over a process
pool.  The task body is the same code either way and results are
aggregated in task order, so the parallel record list is byte-identical
(same order, same values) to the serial one.

Two entry points:

* :func:`run_sweep` takes pre-built graphs and arbitrary algorithm
  callables (the historical API).  With ``jobs > 1`` the callables and
  graphs must be picklable; un-picklable inputs (lambdas, closures)
  degrade gracefully to serial execution.
* :func:`run_sweep_grid` takes :class:`repro.runner.spec.GraphSpec` recipes
  and algorithm *names* from :data:`repro.runner.algorithms.SWEEP_ALGORITHMS`.
  Workers construct each graph themselves, once per worker per spec
  (see :func:`repro.runner.spec.build_graph_cached`), which keeps task
  payloads tiny and avoids rebuilding a graph once per algorithm.

The sequential diameter oracle is **lazy**: ``graph.diameter()`` is the
most expensive part of a sweep record's provenance (all-pairs BFS), so it
is only computed -- once per graph -- when at least one algorithm in the
sweep carries ``"exact"`` in its name and therefore needs a correctness
check.  Sweeps of pure approximation algorithms leave
:attr:`SweepRecord.diameter` as ``None`` (rendered ``-`` by
:func:`sweep_table`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.runner.batch import BatchRunner, task_seed
from repro.runner.spec import GraphSpec, build_graph_cached, graph_diameter_cached


@dataclass
class SweepRecord:
    """One measurement: an algorithm run on one graph.

    ``diameter`` is the true diameter from the sequential oracle when the
    sweep needed it for a correctness check, else ``None`` (the oracle is
    lazy; see the module docstring).
    """

    family: str
    algorithm: str
    num_nodes: int
    diameter: Optional[int]
    rounds: int
    value: float
    correct: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)


def sweep_table(records: Iterable[SweepRecord]) -> str:
    """Render a list of sweep records as an aligned text table."""
    records = list(records)
    if not records:
        return "(no records)"
    header = ["family", "algorithm", "n", "D", "rounds", "value", "correct"]
    rows = [header]
    for record in records:
        rows.append(
            [
                record.family,
                record.algorithm,
                str(record.num_nodes),
                "-" if record.diameter is None else str(record.diameter),
                str(record.rounds),
                f"{record.value:g}",
                "-" if record.correct is None else str(record.correct),
            ]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def _needs_oracle(names: Iterable[str]) -> bool:
    """Whether any algorithm name requests an exact-correctness check."""
    return any("exact" in name for name in names)


def _sweep_one_graph(
    algorithms: Dict[str, Callable[[Graph], Tuple[int, float]]],
    task: Tuple[str, Graph],
) -> List[SweepRecord]:
    """Run every algorithm on one graph (the per-task body of a sweep).

    The diameter oracle runs at most once per graph, and only when some
    algorithm in the table needs a correctness check.
    """
    family, graph = task
    true_diameter: Optional[int] = (
        graph.diameter() if _needs_oracle(algorithms) else None
    )
    records: List[SweepRecord] = []
    for name, runner in algorithms.items():
        rounds, value = runner(graph)
        correct: Optional[bool] = None
        if "exact" in name:
            correct = int(value) == true_diameter
        records.append(
            SweepRecord(
                family=family,
                algorithm=name,
                num_nodes=graph.num_nodes,
                diameter=true_diameter,
                rounds=rounds,
                value=value,
                correct=correct,
            )
        )
    return records


def _picklable(*objects) -> bool:
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


def run_sweep(
    graphs: Sequence[Tuple[str, Graph]],
    algorithms: Dict[str, Callable[[Graph], Tuple[int, float]]],
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> List[SweepRecord]:
    """Run every algorithm on every graph and collect records.

    ``algorithms`` maps a name to a callable returning ``(rounds, value)``
    for a given graph.  Correctness is checked against the sequential
    diameter oracle when the algorithm's name contains ``"exact"``; the
    oracle is computed lazily, once per graph, and skipped entirely when
    no algorithm needs it.

    ``jobs`` (or an explicit ``runner``) fans the per-graph tasks out over
    a process pool; records come back in the same order as serial
    execution.  Parallel dispatch requires picklable inputs: un-picklable
    algorithm callables (lambdas, closures) silently degrade the sweep to
    serial execution with identical records.
    """
    if runner is None:
        runner = BatchRunner(jobs=jobs)
    # Probe only the algorithm table: callables (lambdas, closures) are the
    # realistic unpicklable input, and probing the graphs as well would
    # serialize the whole grid a second time just to throw the result away.
    if runner.jobs > 1 and not _picklable(algorithms):
        runner = BatchRunner(jobs=1)
    per_graph = runner.map(_sweep_one_graph, list(graphs), context=algorithms)
    return [record for records in per_graph for record in records]


def _sweep_one_grid_cell(
    context: Tuple[Dict[str, Callable[[Graph, int], Tuple[int, float]]], int],
    task: Tuple[GraphSpec, str],
) -> SweepRecord:
    """Run one ``(spec, algorithm)`` grid cell in this process.

    The graph (and, when needed, its diameter oracle) comes from the
    per-process caches, so a chunk of cells sharing a spec constructs the
    graph once.
    """
    algorithms, base_seed = context
    spec, name = task
    graph = build_graph_cached(spec)
    seed = task_seed(base_seed, spec, name)
    rounds, value = algorithms[name](graph, seed)
    correct: Optional[bool] = None
    true_diameter: Optional[int] = None
    if _needs_oracle(algorithms):
        # Some algorithm of this sweep needs the oracle, so every record
        # of the spec carries it (matching run_sweep); the per-process
        # cache makes this one computation per spec per worker.
        true_diameter = graph_diameter_cached(spec)
    if "exact" in name:
        correct = int(value) == true_diameter
    return SweepRecord(
        family=spec.label,
        algorithm=name,
        num_nodes=graph.num_nodes,
        diameter=true_diameter,
        rounds=rounds,
        value=value,
        correct=correct,
    )


def run_sweep_grid(
    specs: Sequence[GraphSpec],
    algorithms: Dict[str, Callable[[Graph, int], Tuple[int, float]]],
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    base_seed: int = 0,
) -> List[SweepRecord]:
    """Sweep a ``specs x algorithms`` grid, one record per cell.

    ``algorithms`` maps names to picklable kernels with the
    ``(graph, seed) -> (rounds, value)`` signature of
    :mod:`repro.runner.algorithms`; each cell receives a deterministic
    seed derived from ``(base_seed, spec, name)``, so results do not
    depend on worker assignment or execution order.  Cells are submitted
    spec-major so chunk neighbours share the per-worker graph cache.
    """
    if runner is None:
        runner = BatchRunner(jobs=jobs)
    tasks = [(spec, name) for spec in specs for name in algorithms]
    return runner.map(_sweep_one_grid_cell, tasks, context=(algorithms, base_seed))
