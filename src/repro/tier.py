"""Process-wide compute-tier selection: ``stdlib`` (reference) vs ``numpy``.

The repository keeps two implementations of its hot numerical paths:

* ``"stdlib"`` -- the reference tier.  Pure-stdlib kernels (big-int
  bitsets, Takes-Kosters pruning, the dense/sparse engine round loops);
  always available, and the behaviour every other tier is proven
  byte-identical against.
* ``"numpy"`` -- the vectorized tier.  uint64-word bitset multi-source
  BFS and batched-pruning all-eccentricities kernels over the CSR arrays
  (:mod:`repro.graphs.vector`), plus the array-indexed ``vector``
  execution engine (:mod:`repro.engine.scheduler`).  Requires the
  optional ``repro[numpy]`` extra; selecting it without numpy installed
  raises the actionable :class:`ImportError` of
  :func:`repro._numpy.require_numpy`.

Tier selection follows the execution-engine / schedule-backend idiom
(:func:`repro.engine.set_default_engine`,
:func:`repro.quantum.backend.set_default_schedule_backend`): a
process-wide default, toggled by the CLI ``--tier`` flag and the
benchmark conftest, re-applied in :class:`repro.runner.batch.BatchRunner`
pool workers, and consulted at each dispatch point via
:func:`get_default_tier` / :func:`active_numpy`.  Dispatch points treat
the tier as a *performance* choice only: every tier returns byte-identical
values, dict orders and exceptions, so flipping the default can never
change a result -- the differential suite in ``tests/test_vector_tier.py``
holds the tiers to that contract.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro._numpy import numpy_or_none, require_numpy

#: The reference tier (always available; the seed behaviour).
TIER_STDLIB = "stdlib"

#: The vectorized tier (requires the ``repro[numpy]`` extra).
TIER_NUMPY = "numpy"

#: Stable name tuple for argparse ``choices``.
TIER_NAMES: Tuple[str, ...] = (TIER_NUMPY, TIER_STDLIB)

#: Process-wide default, toggled by :func:`set_default_tier`.
_DEFAULT_TIER = TIER_STDLIB


def validate_tier_name(name: str) -> str:
    """Return ``name`` if it is a known tier, else raise ``ValueError``."""
    if name not in TIER_NAMES:
        known = ", ".join(TIER_NAMES)
        raise ValueError(f"unknown compute tier {name!r} (available: {known})")
    return name


def set_default_tier(name: str) -> str:
    """Set the process-wide default compute tier; returns the previous one.

    Selecting the ``numpy`` tier eagerly verifies that numpy is
    importable, so a missing install fails here -- at the CLI flag or
    conftest option that asked for the tier -- with the actionable
    message of :func:`repro._numpy.require_numpy`, not later inside a
    kernel.
    """
    global _DEFAULT_TIER
    validate_tier_name(name)
    if name == TIER_NUMPY:
        require_numpy("the 'numpy' compute tier")
    previous = _DEFAULT_TIER
    _DEFAULT_TIER = name
    return previous


def get_default_tier() -> str:
    """The current process-wide default compute-tier name."""
    return _DEFAULT_TIER


def resolve_tier(tier: Optional[str] = None) -> str:
    """Map an explicit tier name or ``None`` (process default) to a name."""
    if tier is None:
        return _DEFAULT_TIER
    return validate_tier_name(tier)


def active_numpy(tier: Optional[str] = None):
    """The numpy module when the (resolved) tier is ``numpy``, else ``None``.

    This is the one-line guard the dispatch points use::

        np = active_numpy()
        if np is not None:
            ...vectorized kernel...

    It returns ``None`` both when the stdlib tier is selected and when
    numpy is unimportable (the latter can only happen if the default was
    set by mutating :data:`_DEFAULT_TIER` directly -- the setter above
    verifies importability -- but kernels should degrade, not crash, if
    an exotic environment unloads numpy mid-process).
    """
    if resolve_tier(tier) != TIER_NUMPY:
        return None
    return numpy_or_none()
