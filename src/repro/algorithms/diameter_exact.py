"""Classical exact diameter computation in ``O(n)`` rounds ([PRT12, HW12]).

This is the classical baseline of Table 1's "Exact computation" row.  The
algorithm is the one the paper's Evaluation procedure refines: DFS-number
every node along an Euler tour of a BFS tree, start a distance wave from
node ``v`` at round ``2 tau(v)``, and let the Figure-2 filtering rule keep
the waves congestion-free.  After all waves have propagated, every node
holds ``d_v = max_u d(u, v)`` and a convergecast of ``max_v d_v`` delivers
the diameter to the leader.

Round complexity: leader election and BFS take ``O(D)`` rounds, the full
Euler tour takes ``2 (n - 1)`` rounds, the wave phase takes
``2 * 2 (n - 1) + O(D)`` rounds and the convergecast ``O(D)`` rounds --
``O(n)`` in total, matching the classical upper bound cited in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max
from repro.algorithms.dfs_traversal import run_full_euler_tour
from repro.algorithms.leader_election import run_leader_election
from repro.algorithms.waves import WaveScheduleEntry, run_distance_waves
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.graphs.graph import NodeId


@dataclass
class ExactDiameterResult:
    """Outcome of the classical exact-diameter computation."""

    diameter: int
    leader: NodeId
    metrics: ExecutionMetrics

    @property
    def rounds(self) -> int:
        """Total number of rounds used."""
        return self.metrics.rounds


def run_classical_exact_diameter(
    network: Network, leader: Optional[NodeId] = None
) -> ExactDiameterResult:
    """Compute the exact diameter classically in ``O(n)`` rounds.

    When ``leader`` is ``None`` a leader is elected first (costing ``O(D)``
    extra rounds); otherwise the given node coordinates the computation.
    """
    metrics = ExecutionMetrics()

    if leader is None:
        election = run_leader_election(network)
        leader = election.leader
        metrics = metrics.merged(election.metrics)

    tree = run_bfs_tree(network, leader)
    metrics = metrics.merged(tree.metrics)

    tour = run_full_euler_tour(network, tree)
    metrics = metrics.merged(tour.metrics)
    if set(tour.visit_time) != set(network.graph.nodes()):
        raise RuntimeError("the full Euler tour failed to number every node")

    schedule: Dict[NodeId, WaveScheduleEntry] = {
        node: WaveScheduleEntry(start_round=2 * time, tag=time)
        for node, time in tour.visit_time.items()
    }
    max_tag = max(entry.tag for entry in schedule.values())
    duration = 2 * max_tag + 2 * tree.depth + 2
    waves = run_distance_waves(network, schedule, duration)
    metrics = metrics.merged(waves.metrics)

    aggregate = run_tree_aggregate_max(network, tree, waves.max_distance)
    metrics = metrics.merged(aggregate.metrics)

    return ExactDiameterResult(
        diameter=aggregate.value, leader=leader, metrics=metrics
    )
