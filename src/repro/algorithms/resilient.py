"""Fault-tolerant BFS with retry/backoff rebroadcasts.

The Figure-1 BFS of :mod:`repro.algorithms.bfs` sends each distance
announcement exactly once, which is optimal on a reliable network but
brittle under the lossy/dynamic fault models of :mod:`repro.faults`: a
single dropped ``("bfs", d)`` message silences an entire subtree.

:class:`_ResilientBFSNode` hardens the flood with the retry helpers of
:class:`repro.congest.node.NodeAlgorithm`: after adopting (or improving)
a distance, a node rebroadcasts it on an exponential-backoff schedule
(:meth:`~repro.congest.node.NodeAlgorithm.retry_backoff`) until a fixed
retry budget is exhausted, and only then sets ``finished``.  Lost or
churned-away announcements are therefore re-sent a bounded number of
times, and delayed announcements can only *improve* a node's distance
(stale larger distances are ignored), so the computed distances are
correct whenever every node hears from a shortest-path predecessor at
least once.

Determinism across engines.  Retry instants are absolute round numbers
stored on the node and compared against ``round_number`` in ``on_round``:
the dense/vector schedulers poll every node every round and the sparse
scheduler wakes the node exactly at the stored round, so all engines
execute identical retry sequences.  On a fault-free network the retry
budget still runs to completion (a node cannot locally detect that the
network is reliable), costing a constant factor in messages and
``O(retries)`` extra rounds -- the price of robustness that
``benchmarks/bench_faults.py`` quantifies against the plain baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.algorithms.diameter_approx import ApproxDiameterResult
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId

#: Default number of rebroadcast retries per adopted distance.  With the
#: doubling backoff of ``retry_backoff`` the retries span ``2^(retries+1)
#: - 1`` rounds, so 4 retries cover a 31-round window of loss/churn/outage
#: per hop while bounding the fault-free overhead.
DEFAULT_MAX_RETRIES = 4


@dataclass
class ResilientBFSResult:
    """Outcome of the retrying BFS flood."""

    root: NodeId
    distance: Dict[NodeId, Optional[int]]
    reached: int
    metrics: ExecutionMetrics

    @property
    def complete(self) -> bool:
        """True when every node learned a distance."""
        return self.reached == len(self.distance)


class _ResilientBFSNode(NodeAlgorithm):
    """Per-node state machine of the retrying BFS flood."""

    def __init__(
        self, node_id, neighbors, num_nodes, rng, root: NodeId, max_retries: int
    ) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.root = root
        self.max_retries = max_retries
        self.distance: Optional[int] = None
        self._attempt = 0
        self._next_retry: Optional[int] = None

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        best: Optional[int] = None
        for payload in inbox.values():
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "bfs"
            ):
                candidate = payload[1] + 1
                if best is None or candidate < best:
                    best = candidate
        if self.node_id == self.root and round_number == 0:
            best = 0

        if best is not None and (self.distance is None or best < self.distance):
            # New or improved distance: announce it and restart the retry
            # schedule.  ``finished`` stays false until the retry budget is
            # spent, so every engine terminates at the same round (all
            # scheduled wakes are in the past by then -- a reschedule only
            # ever moves the horizon forward).
            self.distance = best
            self._attempt = 0
            self._next_retry = self.retry_backoff(round_number, 0)
            return self.broadcast(("bfs", self.distance))

        if self._next_retry is not None and round_number >= self._next_retry:
            self._attempt += 1
            if self._attempt > self.max_retries:
                self._next_retry = None
                self.finished = True
                return None
            self._next_retry = self.retry_backoff(round_number, self._attempt)
            return self.broadcast(("bfs", self.distance))
        return None

    def result(self):
        return self.distance

    def memory_bits(self) -> Optional[int]:
        # Distance, attempt counter and retry round: O(log n) bits (the
        # retry round is O(log(rounds)) = O(log n) for this procedure).
        log_n = max(1, math.ceil(math.log2(self.num_nodes + 1)))
        return 3 * log_n


def run_resilient_bfs(
    network: Network,
    root: NodeId,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> ResilientBFSResult:
    """Run the retrying BFS flood from ``root``.

    Unlike :func:`repro.algorithms.bfs.run_bfs_tree` this does *not* raise
    when some nodes end up unreached -- under faults partial coverage is an
    expected outcome and is reported through :attr:`ResilientBFSResult.reached`
    / :attr:`~ResilientBFSResult.complete` so callers can decide.
    """
    if not network.graph.has_node(root):
        raise ValueError(f"root {root!r} is not a node of the network")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    execution = network.run(
        lambda node, net: _ResilientBFSNode(
            node,
            net.neighbors(node),
            net.num_nodes,
            net.node_rng(node),
            root,
            max_retries,
        )
    )
    distance = dict(execution.results)
    reached = sum(1 for value in distance.values() if value is not None)
    execution.metrics.record_phase("resilient_bfs", execution.metrics.rounds)
    return ResilientBFSResult(
        root=root,
        distance=distance,
        reached=reached,
        metrics=execution.metrics,
    )


def run_resilient_two_approximation(
    network: Network,
    node: Optional[NodeId] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> ApproxDiameterResult:
    """A fault-tolerant 2-approximation: ``D_hat = ecc(node)`` via the
    retrying flood.

    The reference node defaults to the minimum node identifier -- a value
    every node can agree on without a (fault-sensitive) leader election.
    Raises :class:`RuntimeError` when the flood fails to reach every node
    (the eccentricity of a partially-covered flood is not a diameter
    bound), which the sweep layer records as a failed cell under faults.
    """
    if node is None:
        node = min(network.graph.nodes(), key=repr)
    bfs = run_resilient_bfs(network, node, max_retries=max_retries)
    if not bfs.complete:
        raise RuntimeError(
            f"resilient BFS reached {bfs.reached}/{len(bfs.distance)} nodes; "
            "no diameter bound can be certified"
        )
    estimate = max(bfs.distance.values())
    return ApproxDiameterResult(
        estimate=estimate,
        approximation_factor=2.0,
        metrics=bfs.metrics,
    )
