"""Pipelined multi-source distance waves (Step 2 of Figure 2).

This module implements the congestion-free pipelining at the heart of both
the paper's Evaluation procedure (Proposition 4 / Figure 2) and the
classical ``O(n)``-round exact-diameter baseline it refines ([PRT12]).

Every *source* node ``u`` starts, at a prescribed round ``start(u)``, a
BFS-like wave tagged with an integer ``tag(u)`` (the DFS number ``tau`` or
the relative number ``tau'``).  Waves propagate one hop per round.  Each
node keeps only ``O(log n)`` bits of state -- the largest tag processed so
far (``t_v``) and the running maximum distance (``d_v``) -- and applies the
Figure-2 filtering rule:

* messages whose tag is not larger than ``t_v`` are disregarded;
* among the remaining messages of a round, (at most) one is kept -- when the
  schedule satisfies the walk property of Lemma 2 (``start`` gaps dominate
  pairwise distances, which the DFS numbering guarantees) they are all
  identical (Lemma 4);
* the kept message ``(tag, delta)`` sets ``t_v = tag``,
  ``d_v = max(d_v, delta + 1)`` and is re-broadcast as ``(tag, delta + 1)``.

At the end of the (fixed, globally known) duration, ``d_v`` equals
``max_u d(u, v)`` over all sources ``u``, so a final convergecast of
``max_v d_v`` yields ``max_u ecc(u)`` -- the quantity ``f(u0)`` that the
Evaluation procedure must hand to the leader, and the diameter itself when
the sources are all of ``V``.

Two knobs exist purely for the *ablation benchmark* that justifies the
paper's scheduling (Section "Design choices" of DESIGN.md):

* ``forward_all=True`` forwards every non-disregarded message instead of a
  single one, which blows past the CONGEST bandwidth budget when waves
  collide (measured as bandwidth violations in non-strict mode);
* callers can supply any schedule, e.g. the *naive* all-start-at-zero
  schedule, and observe that the computed values become wrong while the
  DFS-based schedule stays correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId


@dataclass(frozen=True)
class WaveScheduleEntry:
    """Start round and tag of one wave source."""

    start_round: int
    tag: int


@dataclass
class WaveResult:
    """Outcome of the wave phase: the per-node maxima ``d_v``."""

    max_distance: Dict[NodeId, int]
    metrics: ExecutionMetrics

    @property
    def overall_max(self) -> int:
        """``max_v d_v = max_u ecc(u)`` over the scheduled sources."""
        return max(self.max_distance.values())


class _WaveNode(NodeAlgorithm):
    """Per-node state machine of the Figure-2 Step-2 process."""

    def __init__(
        self, node_id, neighbors, num_nodes, rng,
        schedule: Optional[WaveScheduleEntry], duration: int,
        forward_all: bool,
    ) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.schedule = schedule
        self.duration = duration
        self.forward_all = forward_all
        self.last_tag = -1          # t_v in the paper
        self.max_distance = 0       # d_v in the paper
        self.finished = False
        if schedule is not None and schedule.start_round > 0:
            # A source must act at its prescribed start round even if no
            # wave has reached it by then (event-driven scheduling).
            self.wake_at(schedule.start_round)

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        if round_number >= self.duration:
            self.finished = True
            return {}
        if round_number == self.duration - 1:
            self.finished = True

        outgoing: List[Tuple[int, int]] = []

        # Step 2(2): a source starts its own wave at its scheduled round.
        if self.schedule is not None and round_number == self.schedule.start_round:
            self.last_tag = max(self.last_tag, self.schedule.tag)
            outgoing.append((self.schedule.tag, 0))

        # Step 3(a)/(b): filter incoming messages.
        fresh: List[Tuple[int, int]] = []
        for _, payload in inbox.items():
            if isinstance(payload, tuple) and payload and payload[0] == "w":
                _, tag, delta = payload
                if tag > self.last_tag:
                    fresh.append((tag, delta))
            elif isinstance(payload, list):
                for item in payload:
                    tag, delta = item[1], item[2]
                    if tag > self.last_tag:
                        fresh.append((tag, delta))

        if fresh:
            if self.forward_all:
                kept = sorted(set(fresh))
            else:
                # In schedule-correct executions all fresh messages are
                # identical (Lemma 4); keep the largest for determinism.
                kept = [max(fresh)]
            for tag, delta in kept:
                self.last_tag = max(self.last_tag, tag)
                self.max_distance = max(self.max_distance, delta + 1)
                outgoing.append((tag, delta + 1))

        if not outgoing:
            return {}
        if len(outgoing) == 1 and not self.forward_all:
            tag, delta = outgoing[0]
            return self.broadcast(("w", tag, delta))
        if len(outgoing) == 1:
            tag, delta = outgoing[0]
            return self.broadcast(("w", tag, delta))
        return self.broadcast([("w", tag, delta) for tag, delta in outgoing])

    def result(self):
        return self.max_distance

    def memory_bits(self) -> Optional[int]:
        # t_v, d_v, the schedule entry and one in-flight message: O(log n).
        log_n = max(1, math.ceil(math.log2(self.num_nodes + 1)))
        return 6 * log_n


def run_distance_waves(
    network: Network,
    schedule: Dict[NodeId, WaveScheduleEntry],
    duration: int,
    forward_all: bool = False,
) -> WaveResult:
    """Run the pipelined wave process for exactly ``duration`` rounds.

    Parameters
    ----------
    network:
        The CONGEST network.
    schedule:
        Maps each *source* node to its :class:`WaveScheduleEntry`.  Tags must
        be distinct non-negative integers; for the guarantees of Lemmas 2-4
        to apply the schedule must satisfy ``start(u) = 2 * tag(u)`` with the
        tags given by a DFS numbering (the callers in
        :mod:`repro.algorithms.evaluation` and
        :mod:`repro.algorithms.diameter_exact` construct exactly that).
    duration:
        Total number of rounds to run (globally known to all nodes, e.g.
        ``6 d`` in Figure 2).
    forward_all:
        Ablation knob, see the module docstring.

    Returns
    -------
    WaveResult
        The per-node values ``d_v`` and the execution metrics.
    """
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    tags = [entry.tag for entry in schedule.values()]
    if len(set(tags)) != len(tags):
        raise ValueError("wave tags must be distinct")
    if any(entry.tag < 0 or entry.start_round < 0 for entry in schedule.values()):
        raise ValueError("wave tags and start rounds must be non-negative")
    if any(entry.start_round >= duration for entry in schedule.values()):
        raise ValueError("every wave must start before the duration elapses")

    execution = network.run(
        lambda node, net: _WaveNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node),
            schedule.get(node), duration, forward_all,
        ),
        exact_rounds=duration,
        max_rounds=duration + 2,
    )
    execution.metrics.record_phase("distance_waves", execution.metrics.rounds)
    return WaveResult(max_distance=execution.results, metrics=execution.metrics)
