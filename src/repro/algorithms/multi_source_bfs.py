"""Pipelined multi-source BFS (source detection, in the style of [LP13]).

The classical 3/2-approximation of the diameter ([LP13, HPRW14], used by the
paper as the baseline for Theorem 4 and as the preparation phase of
Figure 3) needs every node ``v`` to learn its distance ``d(v, s)`` to every
node ``s`` of a source set ``S``.  Running the ``|S|`` BFS computations one
after the other would cost ``O(|S| * D)`` rounds; the standard pipelining --
each node forwards, every round, the smallest-distance pair it has not
forwarded yet -- brings this down to ``O(|S| + D)`` rounds, which is what
makes the ``O~(sqrt(n) + D)`` baseline possible.

Unlike the Figure-2 waves (which only track a running maximum in ``O(log n)``
bits), this primitive stores one distance per source and therefore uses
``O(|S| log n)`` bits of memory per node.  The paper explicitly notes that
the preparation phase of its approximation algorithm requires polynomial
classical memory, in contrast to the polylogarithmic quantum memory of the
optimization phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId


@dataclass
class MultiSourceBFSResult:
    """Distances from every node to every source."""

    sources: Tuple[NodeId, ...]
    distances: Dict[NodeId, Dict[NodeId, int]]
    metrics: ExecutionMetrics

    def distance_to_set(self, node: NodeId) -> int:
        """``d(node, S)``: distance to the nearest source."""
        return min(self.distances[node].values())

    def nearest_source(self, node: NodeId) -> NodeId:
        """A nearest source ``p(node)`` (ties broken deterministically)."""
        table = self.distances[node]
        return min(table, key=lambda source: (table[source], repr(source)))

    def eccentricity_of_source(self, source: NodeId) -> int:
        """``ecc(source)`` computed from the collected distances."""
        return max(table[source] for table in self.distances.values())


class _MultiSourceBFSNode(NodeAlgorithm):
    """Per-node state machine of the pipelined multi-source BFS."""

    def __init__(
        self, node_id, neighbors, num_nodes, rng, is_source: bool
    ) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.known: Dict[NodeId, int] = {}
        self.pending: Set[NodeId] = set()
        if is_source:
            self.known[node_id] = 0
            self.pending.add(node_id)
        # Reactive termination: the run stops when no queue has anything to
        # forward anywhere in the network.
        self.finished = True

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        for _, payload in inbox.items():
            if not (isinstance(payload, tuple) and payload and payload[0] == "m"):
                continue
            source, distance = payload[1], payload[2]
            source = tuple(source) if isinstance(source, list) else source
            candidate = distance + 1
            if source not in self.known or candidate < self.known[source]:
                self.known[source] = candidate
                self.pending.add(source)

        if not self.pending:
            return {}
        # Forward the smallest-distance pending pair (ties by identifier).
        chosen = min(self.pending, key=lambda src: (self.known[src], repr(src)))
        self.pending.discard(chosen)
        if self.pending:
            # The queue is not drained: ask the (sparse) scheduler to run us
            # again next round even if no new message arrives.
            self.wake_next_round()
        return self.broadcast(("m", chosen, self.known[chosen]))

    def result(self):
        return dict(self.known)

    def memory_bits(self) -> Optional[int]:
        log_n = max(1, math.ceil(math.log2(self.num_nodes + 1)))
        return max(1, 2 * len(self.known)) * log_n


def run_multi_source_bfs(
    network: Network, sources: Sequence[NodeId]
) -> MultiSourceBFSResult:
    """Compute ``d(v, s)`` for every node ``v`` and every source ``s``.

    Runs in ``O(|sources| + D)`` rounds thanks to smallest-distance-first
    pipelining.  Raises ``ValueError`` on an empty source set.
    """
    source_set = set(sources)
    if not source_set:
        raise ValueError("the source set must be non-empty")
    for source in source_set:
        if not network.graph.has_node(source):
            raise ValueError(f"source {source!r} is not a node of the network")

    execution = network.run(
        lambda node, net: _MultiSourceBFSNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node),
            node in source_set,
        )
    )
    distances: Dict[NodeId, Dict[NodeId, int]] = execution.results
    missing = [
        node
        for node, table in distances.items()
        if set(table) != source_set
    ]
    if missing:
        raise RuntimeError(
            "multi-source BFS did not deliver every source distance to every "
            f"node (first offenders: {missing[:3]!r})"
        )
    execution.metrics.record_phase("multi_source_bfs", execution.metrics.rounds)
    return MultiSourceBFSResult(
        sources=tuple(sorted(source_set, key=repr)),
        distances=distances,
        metrics=execution.metrics,
    )
