"""Classical distributed algorithms on the CONGEST simulator.

This subpackage contains both the *building blocks* used by the paper's
quantum algorithms (leader election, BFS-tree construction, tree
broadcast/convergecast, Euler-tour traversal, the pipelined distance waves
of Figure 2) and the *classical baselines* the paper compares against
(exact diameter in ``O(n)`` rounds in the style of [PRT12, HW12], and the
3/2-approximation in ``O~(sqrt(n) + D)`` rounds in the style of
[LP13, HPRW14]).

Every public ``run_*`` helper takes a :class:`repro.congest.network.Network`
and returns a small result object carrying both the computed values and the
:class:`repro.congest.metrics.ExecutionMetrics` of the execution, so callers
can compose phases and account for total round complexity.
"""

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import (
    run_tree_aggregate_max,
    run_tree_aggregate_sum,
    run_tree_broadcast,
)
from repro.algorithms.dfs_traversal import (
    EulerTourResult,
    run_full_euler_tour,
    run_windowed_euler_tour,
)
from repro.algorithms.diameter_approx import (
    ApproxDiameterResult,
    run_classical_two_approximation,
    run_hprw_three_halves_approximation,
)
from repro.algorithms.diameter_exact import (
    ExactDiameterResult,
    run_classical_exact_diameter,
)
from repro.algorithms.eccentricity import run_eccentricity
from repro.algorithms.evaluation import EvaluationResult, run_evaluation_procedure
from repro.algorithms.leader_election import LeaderElectionResult, run_leader_election
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.algorithms.resilient import (
    ResilientBFSResult,
    run_resilient_bfs,
    run_resilient_two_approximation,
)
from repro.algorithms.waves import WaveScheduleEntry, run_distance_waves

__all__ = [
    "run_bfs_tree",
    "BFSTreeResult",
    "run_tree_broadcast",
    "run_tree_aggregate_max",
    "run_tree_aggregate_sum",
    "run_full_euler_tour",
    "run_windowed_euler_tour",
    "EulerTourResult",
    "run_eccentricity",
    "run_leader_election",
    "LeaderElectionResult",
    "run_multi_source_bfs",
    "run_distance_waves",
    "WaveScheduleEntry",
    "run_evaluation_procedure",
    "EvaluationResult",
    "run_classical_exact_diameter",
    "ExactDiameterResult",
    "run_classical_two_approximation",
    "run_hprw_three_halves_approximation",
    "ApproxDiameterResult",
    "run_resilient_bfs",
    "run_resilient_two_approximation",
    "ResilientBFSResult",
]
