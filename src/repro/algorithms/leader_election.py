"""Leader election by maximum-identifier flooding.

Section 3 of the paper assumes "the network G has elected a node leader ...
This can be done using standard methods in O(D) classical rounds and
O(log n) memory space per node".  The standard method implemented here is
maximum-identifier flooding: every node repeatedly remembers the largest
identifier it has heard of and forwards improvements.  After ``D`` rounds
every node knows the globally largest identifier; the flooding then goes
quiet and the simulator's termination detection stops the execution, for a
total of ``D + O(1)`` rounds.

Identifiers are compared through a deterministic total order on their
``repr`` so that the heterogeneous tuple labels used by the gadget graphs
are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId


def identifier_key(node: NodeId) -> str:
    """Deterministic total order on node identifiers."""
    return repr(node)


@dataclass
class LeaderElectionResult:
    """Outcome of leader election."""

    leader: NodeId
    metrics: ExecutionMetrics


class _MaxIdFloodingNode(NodeAlgorithm):
    """Flood the largest identifier seen so far."""

    def __init__(self, node_id, neighbors, num_nodes, rng) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.best: NodeId = node_id
        # The node is always "reactively finished": the execution stops when
        # the flooding stabilises (no more improvements anywhere).
        self.finished = True

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        improved = round_number == 0
        for _, payload in inbox.items():
            candidate = tuple(payload)[0] if isinstance(payload, list) else payload
            if identifier_key(candidate) > identifier_key(self.best):
                self.best = candidate
                improved = True
        if improved:
            return self.broadcast(self.best)
        return {}

    def result(self):
        return self.best


def run_leader_election(network: Network) -> LeaderElectionResult:
    """Elect the node with the largest identifier, in ``D + O(1)`` rounds.

    Every node ends up knowing the leader's identifier; the returned result
    reports it together with the execution metrics.
    """
    execution = network.run(
        lambda node, net: _MaxIdFloodingNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node)
        )
    )
    leaders = set(map(identifier_key, execution.results.values()))
    if len(leaders) != 1:
        raise RuntimeError(
            "leader election did not converge to a unique leader; "
            "is the network connected?"
        )
    leader = next(iter(execution.results.values()))
    execution.metrics.record_phase("leader_election", execution.metrics.rounds)
    return LeaderElectionResult(leader=leader, metrics=execution.metrics)
