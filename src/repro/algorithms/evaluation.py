"""The Evaluation procedure of Figure 2 (Proposition 4).

Given that every node of the network knows a common value ``u0`` (this is
the classical content of the quantum data register ``|data(u0)>``), the
procedure lets the leader compute

    ``f(u0) = max_{v in S(u0)} ecc(v)``

in ``O(D)`` rounds and ``O(log n)`` bits of memory per node, where ``S(u0)``
is the window of ``2 d`` consecutive nodes of the DFS traversal of
``BFS(leader)`` starting at ``u0`` (Definition 2).  Maximising ``f`` over a
uniformly random ``u0`` yields the diameter with probability
``P_opt >= d / (2 n)`` (Lemma 1), which is what gives Theorem 1 its
``sqrt(n D)`` round complexity.

The composition follows Figure 2 exactly:

* **Step 1** -- ``2 d`` steps of the Euler-tour traversal starting at
  ``u0`` (:func:`repro.algorithms.dfs_traversal.run_windowed_euler_tour`)
  give every reached node its relative number ``tau'``;
* **Step 2** -- the pipelined distance waves
  (:func:`repro.algorithms.waves.run_distance_waves`) scheduled at rounds
  ``2 tau'(v)`` for ``6 d + O(1)`` rounds leave every node ``v`` with
  ``d_v = max_{u in S(u0)} d(u, v)``;
* **Steps 3-4** -- a convergecast of ``max_v d_v`` up ``BFS(leader)``
  delivers ``f(u0)`` to the leader;
* **Step 5** -- the whole computation is reverted to clean the registers;
  we account for it by doubling the round count (``include_uncompute``).

The same machinery, restricted to a parent-closed member set (the ball
``R`` in the 3/2-approximation algorithm) and driven from a different root,
implements the Evaluation procedure of Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.algorithms.bfs import BFSTreeResult
from repro.algorithms.broadcast import run_tree_aggregate_max
from repro.algorithms.dfs_traversal import run_windowed_euler_tour
from repro.algorithms.waves import WaveScheduleEntry, run_distance_waves
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.graphs.graph import NodeId


@dataclass
class EvaluationResult:
    """Outcome of one run of the Figure-2 Evaluation procedure."""

    u0: NodeId
    value: int
    window_nodes: Set[NodeId]
    metrics: ExecutionMetrics


def run_evaluation_procedure(
    network: Network,
    tree: BFSTreeResult,
    d: int,
    u0: NodeId,
    members: Optional[Set[NodeId]] = None,
    include_uncompute: bool = True,
) -> EvaluationResult:
    """Run the Figure-2 Evaluation procedure for the input ``u0``.

    Parameters
    ----------
    network:
        The CONGEST network.
    tree:
        The BFS tree rooted at the leader (or at ``w`` for Theorem 4),
        produced by the Initialization phase.
    d:
        The traversal-window parameter.  The paper takes ``d = ecc(leader)``
        so that ``d <= D <= 2 d``.
    u0:
        The element of the search space handed to all nodes by the Setup
        procedure.
    members:
        Optional parent-closed subset restricting the traversal (the set
        ``R`` in Theorem 4).  ``u0`` must belong to it.
    include_uncompute:
        Whether to charge the Step-5 revert (doubling the round count), as a
        reversible/quantum implementation must.

    Returns
    -------
    EvaluationResult
        ``value = max_{v in S(u0)} ecc(v)``, the window ``S(u0)`` itself and
        the execution metrics.
    """
    if d < 1:
        raise ValueError(f"the window parameter d must be >= 1, got {d}")

    # Step 1: 2d steps of the DFS traversal starting at u0.
    tour = run_windowed_euler_tour(
        network, tree, start=u0, window=2 * d, members=members
    )
    metrics = tour.metrics

    # Step 2: pipelined waves from every node of S(u0), scheduled by tau'.
    schedule: Dict[NodeId, WaveScheduleEntry] = {
        node: WaveScheduleEntry(start_round=2 * time, tag=time)
        for node, time in tour.visit_time.items()
    }
    # The wave phase must run for a duration that does NOT depend on which
    # u0 was received (the Evaluation unitary acts on a superposition of all
    # of them), so we use the worst case: the largest possible tag is the
    # traversal budget, and distances never exceed the diameter, which is at
    # most twice the depth of any BFS tree.  The +2 covers start/delivery
    # offsets.
    duration = 2 * tour.steps + 2 * tree.depth + 2
    waves = run_distance_waves(network, schedule, duration)
    metrics = metrics.merged(waves.metrics)

    # Steps 3-4: convergecast the maximum d_v to the leader.
    aggregate = run_tree_aggregate_max(network, tree, waves.max_distance)
    metrics = metrics.merged(aggregate.metrics)

    # Step 5: revert steps 1-3 to clean all registers.  The revert performs
    # the same communication backwards, so it costs the same number of
    # rounds; no new information is computed, so we account for it without
    # re-simulating.
    if include_uncompute:
        revert = ExecutionMetrics(
            rounds=metrics.rounds,
            messages=metrics.messages,
            total_bits=metrics.total_bits,
            max_edge_bits_per_round=metrics.max_edge_bits_per_round,
            bandwidth_limit_bits=metrics.bandwidth_limit_bits,
            max_node_memory_bits=metrics.max_node_memory_bits,
        )
        revert.record_phase("evaluation_uncompute", revert.rounds)
        metrics = metrics.merged(revert)

    metrics.record_phase("evaluation", metrics.rounds)
    return EvaluationResult(
        u0=u0,
        value=aggregate.value,
        window_nodes=tour.visited,
        metrics=metrics,
    )
