"""Tree broadcast and convergecast (aggregation) primitives.

These are the standard ``O(depth)``-round building blocks used repeatedly by
the paper's algorithms:

* *broadcast*: the root of a tree holds a value of ``O(log n)`` bits and
  every node must learn it (used to disseminate ``d = ecc(leader)``, the
  identity of the node ``w`` in the approximation algorithm, thresholds of
  the ball-selection binary search, ...);
* *convergecast*: every node holds a value and the root must learn an
  associative aggregate -- the maximum (Step 3 of Figure 2, eccentricity
  computation), the maximum together with a witness node (finding the node
  ``w`` maximizing ``d(w, p(w))`` in Figure 3), or the sum (counting the
  nodes within a distance threshold when selecting the set ``R``).

Both take an explicitly provided tree (parent / children maps, typically the
output of :func:`repro.algorithms.bfs.run_bfs_tree`) so that they do not pay
for rebuilding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId

from repro.algorithms.bfs import BFSTreeResult


@dataclass
class AggregateResult:
    """Outcome of a convergecast: the aggregate seen at the root."""

    value: Any
    witness: Optional[NodeId]
    metrics: ExecutionMetrics


@dataclass
class BroadcastResult:
    """Outcome of a tree broadcast: the value received at every node."""

    values: Dict[NodeId, Any]
    metrics: ExecutionMetrics


class _TreeBroadcastNode(NodeAlgorithm):
    """Forward a value from the root down the tree."""

    def __init__(
        self, node_id, neighbors, num_nodes, rng,
        tree: BFSTreeResult, root_value: Any,
    ) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.children = tree.children_of(node_id)
        self.is_root = node_id == tree.root
        self.value: Any = root_value if self.is_root else None
        self._sent = False
        self.finished = not self.children and not self.is_root

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        if self.value is None:
            for _, payload in inbox.items():
                self.value = payload
                break
        if self.value is not None and not self._sent:
            self._sent = True
            self.finished = True
            return {child: self.value for child in self.children}
        self.finished = self.value is not None
        return {}

    def result(self):
        return self.value


class _TreeAggregateNode(NodeAlgorithm):
    """Convergecast an associative aggregate towards the root."""

    def __init__(
        self, node_id, neighbors, num_nodes, rng,
        tree: BFSTreeResult, local_value: Any, mode: str,
    ) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        if mode not in ("max", "sum", "max_witness"):
            raise ValueError(f"unknown aggregation mode {mode!r}")
        self.mode = mode
        self.parent = tree.parent[node_id]
        self.children = tree.children_of(node_id)
        self.is_root = node_id == tree.root
        if mode == "max_witness":
            self.accumulator: Any = (local_value, node_id)
        else:
            self.accumulator = local_value
        self.pending = set(self.children)
        self._sent = False

    def _combine(self, other: Any) -> None:
        if self.mode == "sum":
            self.accumulator = self.accumulator + other
        elif self.mode == "max":
            self.accumulator = max(self.accumulator, other)
        else:  # max_witness: compare on the value, keep the witness id.
            other_value, other_witness = other
            if other_value > self.accumulator[0]:
                self.accumulator = (other_value, other_witness)

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        for sender, payload in inbox.items():
            if sender in self.pending:
                self.pending.discard(sender)
                if self.mode == "max_witness":
                    self._combine(tuple(payload))
                else:
                    self._combine(payload)
        if not self.pending and not self._sent:
            self._sent = True
            self.finished = True
            if not self.is_root and self.parent is not None:
                if self.mode == "max_witness":
                    return {self.parent: list(self.accumulator)}
                return {self.parent: self.accumulator}
        return {}

    def result(self):
        return self.accumulator


def run_tree_broadcast(
    network: Network, tree: BFSTreeResult, root_value: Any
) -> BroadcastResult:
    """Broadcast ``root_value`` from the tree root to every node.

    Runs in ``depth + O(1)`` rounds.
    """
    execution = network.run(
        lambda node, net: _TreeBroadcastNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node),
            tree, root_value,
        )
    )
    execution.metrics.record_phase("tree_broadcast", execution.metrics.rounds)
    return BroadcastResult(values=execution.results, metrics=execution.metrics)


def _run_aggregate(
    network: Network,
    tree: BFSTreeResult,
    values: Dict[NodeId, Any],
    mode: str,
) -> AggregateResult:
    missing = [node for node in network.graph.nodes() if node not in values]
    if missing:
        raise ValueError(f"no local value provided for nodes {missing[:3]!r}...")
    execution = network.run(
        lambda node, net: _TreeAggregateNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node),
            tree, values[node], mode,
        )
    )
    root_accumulator = execution.results[tree.root]
    if mode == "max_witness":
        value, witness = root_accumulator
    else:
        value, witness = root_accumulator, None
    execution.metrics.record_phase(f"convergecast_{mode}", execution.metrics.rounds)
    return AggregateResult(value=value, witness=witness, metrics=execution.metrics)


def run_tree_aggregate_max(
    network: Network, tree: BFSTreeResult, values: Dict[NodeId, Any]
) -> AggregateResult:
    """Convergecast the maximum of per-node values to the tree root.

    This is Step 3 of the Figure-2 Evaluation procedure ("the transmission is
    done bottom up on BFS(leader), and at each node only the maximum of
    received values is transmitted").  Runs in ``depth + O(1)`` rounds.
    """
    return _run_aggregate(network, tree, values, "max")


def run_tree_aggregate_max_witness(
    network: Network, tree: BFSTreeResult, values: Dict[NodeId, Any]
) -> AggregateResult:
    """Convergecast the maximum and a node achieving it."""
    return _run_aggregate(network, tree, values, "max_witness")


def run_tree_aggregate_sum(
    network: Network, tree: BFSTreeResult, values: Dict[NodeId, Any]
) -> AggregateResult:
    """Convergecast the sum of per-node values to the tree root."""
    return _run_aggregate(network, tree, values, "sum")
