"""Distributed eccentricity computation for a single node.

``ecc(u)`` is the maximum distance from ``u`` to any other node.  The
distributed computation (used in the paper's Initialization step to obtain
``d = ecc(leader)``, and as the trivial 2-approximation of the diameter) is
the obvious composition: build a BFS tree from ``u`` (Figure 1), then
convergecast the maximum distance back up the tree.  Both phases take
``O(D)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import run_tree_aggregate_max
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.graphs.graph import NodeId


@dataclass
class EccentricityResult:
    """Outcome of the distributed eccentricity computation."""

    node: NodeId
    eccentricity: int
    tree: BFSTreeResult
    metrics: ExecutionMetrics


def run_eccentricity(
    network: Network, node: NodeId, tree: Optional[BFSTreeResult] = None
) -> EccentricityResult:
    """Compute ``ecc(node)`` in ``O(D)`` rounds.

    If a BFS tree rooted at ``node`` is already available it can be passed
    in to avoid rebuilding it (its construction cost is then not charged
    again).
    """
    metrics = ExecutionMetrics()
    if tree is None or tree.root != node:
        tree = run_bfs_tree(network, node)
        metrics = metrics.merged(tree.metrics)
    aggregate = run_tree_aggregate_max(network, tree, tree.distance)
    metrics = metrics.merged(aggregate.metrics)
    return EccentricityResult(
        node=node,
        eccentricity=aggregate.value,
        tree=tree,
        metrics=metrics,
    )
