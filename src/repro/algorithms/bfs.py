"""Distributed construction of a Breadth-First-Search tree (Figure 1).

Proposition 1 of the paper: a BFS tree rooted at ``leader`` -- each node
learning its parent and its distance to the root -- can be built in
``O(D)`` rounds with ``O(log n)`` bits of memory per node.  The procedure is
the classical flooding of Figure 1: the root activates its neighbours; a
node adopting a parent re-broadcasts its own distance; later activations are
ignored.

On top of the paper's procedure, every activated node also notifies its
chosen parent with a one-bit ``child`` message, so that the tree is known
*downwards* as well (parents know their children).  This costs one extra
round and is required by the tree broadcast / convergecast / Euler-tour
primitives used throughout the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId


@dataclass
class BFSTreeResult:
    """Outcome of the distributed BFS-tree construction."""

    root: NodeId
    parent: Dict[NodeId, Optional[NodeId]]
    distance: Dict[NodeId, int]
    children: Dict[NodeId, Tuple[NodeId, ...]]
    metrics: ExecutionMetrics

    @property
    def depth(self) -> int:
        """Depth of the tree (equals ``ecc(root)`` on a connected graph)."""
        return max(self.distance.values())

    def children_of(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Children of ``node`` in a fixed, deterministic order."""
        return self.children[node]


class _BFSNode(NodeAlgorithm):
    """Per-node state machine of the Figure-1 BFS construction."""

    def __init__(self, node_id, neighbors, num_nodes, rng, root: NodeId) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.root = root
        self.distance: Optional[int] = None
        self.parent: Optional[NodeId] = None
        self.children: List[NodeId] = []
        self._broadcasted = False

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        outbox: Outbox = {}

        # Record children notifications from any round.
        for sender, payload in inbox.items():
            if payload == ("ch",) and sender not in self.children:
                self.children.append(sender)

        if self.node_id == self.root and round_number == 0:
            self.distance = 0
            for neighbor in self.neighbors:
                outbox[neighbor] = ("bfs", 0)
            self._broadcasted = True
            self.finished = True
            return outbox

        if self.distance is None:
            activators = [
                (payload[1], sender)
                for sender, payload in inbox.items()
                if isinstance(payload, tuple) and payload and payload[0] == "bfs"
            ]
            if activators:
                best_distance, best_sender = min(
                    activators, key=lambda item: (item[0], repr(item[1]))
                )
                self.distance = best_distance + 1
                self.parent = best_sender
                for neighbor in self.neighbors:
                    if neighbor == self.parent:
                        outbox[neighbor] = ("ch",)
                    else:
                        outbox[neighbor] = ("bfs", self.distance)
                self._broadcasted = True
                self.finished = True
        return outbox

    def result(self):
        return {
            "parent": self.parent,
            "distance": self.distance,
            "children": tuple(sorted(self.children, key=repr)),
        }

    def memory_bits(self) -> Optional[int]:
        # Parent pointer, distance counter and one flag: O(log n) bits.  The
        # children list is part of the node's (classical) knowledge of its
        # incident tree edges, which the CONGEST model grants for free.
        log_n = max(1, math.ceil(math.log2(self.num_nodes + 1)))
        return 3 * log_n


def run_bfs_tree(network: Network, root: NodeId) -> BFSTreeResult:
    """Build a BFS tree rooted at ``root`` (Proposition 1 / Figure 1).

    Runs in ``ecc(root) + O(1)`` rounds.  Returns the parent, distance and
    (ordered) children of every node, together with the execution metrics.
    """
    if not network.graph.has_node(root):
        raise ValueError(f"root {root!r} is not a node of the network")

    execution = network.run(
        lambda node, net: _BFSNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node), root
        )
    )
    parent = {node: data["parent"] for node, data in execution.results.items()}
    distance = {node: data["distance"] for node, data in execution.results.items()}
    children = {node: data["children"] for node, data in execution.results.items()}
    if any(value is None for value in distance.values()):
        raise RuntimeError(
            "BFS did not reach every node; the network graph must be connected"
        )
    execution.metrics.record_phase("bfs", execution.metrics.rounds)
    return BFSTreeResult(
        root=root,
        parent=parent,
        distance=distance,
        children=children,
        metrics=execution.metrics,
    )
