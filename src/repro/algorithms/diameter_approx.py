"""Classical diameter approximation baselines ([LP13, HPRW14]).

Two classical algorithms appear in Table 1 next to the paper's quantum
results:

* the trivial **2-approximation**: compute the eccentricity of an arbitrary
  node in ``O(D)`` rounds -- ``ecc(v) <= D <= 2 ecc(v)``;
* the **3/2-approximation** of Lenzen-Peleg / Holzer et al., running in
  ``O~(sqrt(n) + D)`` rounds, which the paper's Theorem 4 speeds up
  quantumly to ``O~((n D)^(1/3) + D)``.

The 3/2-approximation is split into a *preparation* phase
(:func:`run_hprw_preparation`, Steps 1-3 of Figure 3 -- shared verbatim with
the quantum algorithm of Theorem 4) and a classical *completion* that
computes the eccentricity of every node of the ball ``R`` with the same
pipelined-wave machinery used everywhere else in the library.

The estimate returned is ``D_hat = max(ecc over S, ecc(w), ecc over R)``;
[HPRW14] prove ``floor(2D/3) <= D_hat <= D`` with high probability over the
sampling of ``S``.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.algorithms.bfs import BFSTreeResult, run_bfs_tree
from repro.algorithms.broadcast import (
    run_tree_aggregate_max,
    run_tree_aggregate_max_witness,
    run_tree_aggregate_sum,
    run_tree_broadcast,
)
from repro.algorithms.dfs_traversal import run_full_euler_tour
from repro.algorithms.eccentricity import run_eccentricity
from repro.algorithms.leader_election import run_leader_election
from repro.algorithms.multi_source_bfs import run_multi_source_bfs
from repro.algorithms.waves import WaveScheduleEntry, run_distance_waves
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.graphs.graph import NodeId


@dataclass
class ApproxDiameterResult:
    """Outcome of a diameter-approximation algorithm."""

    estimate: int
    approximation_factor: float
    metrics: ExecutionMetrics

    @property
    def rounds(self) -> int:
        """Total number of rounds used."""
        return self.metrics.rounds


@dataclass
class HPRWPreparationResult:
    """Outcome of Steps 1-3 of Figure 3 (shared classical preparation)."""

    sampled_set: Set[NodeId]
    w: NodeId
    w_tree: BFSTreeResult
    d_w: int
    ball: Set[NodeId]
    ball_radius: int
    max_ecc_over_samples: int
    metrics: ExecutionMetrics
    aborted: bool = False


#: Size of the hash space used for trimming the boundary layer of the ball.
_HASH_SPACE = 2 ** 20


def _node_hash(node: NodeId) -> int:
    """A deterministic pseudo-random rank of a node, used to trim ties."""
    return zlib.crc32(repr(node).encode("utf-8")) % _HASH_SPACE


def run_classical_two_approximation(
    network: Network, node: Optional[NodeId] = None
) -> ApproxDiameterResult:
    """The trivial 2-approximation: ``D_hat = ecc(node)`` in ``O(D)`` rounds."""
    metrics = ExecutionMetrics()
    if node is None:
        election = run_leader_election(network)
        node = election.leader
        metrics = metrics.merged(election.metrics)
    eccentricity = run_eccentricity(network, node)
    metrics = metrics.merged(eccentricity.metrics)
    return ApproxDiameterResult(
        estimate=eccentricity.eccentricity,
        approximation_factor=2.0,
        metrics=metrics,
    )


def run_hprw_preparation(
    network: Network,
    s: int,
    seed: Optional[int] = None,
    leader: Optional[NodeId] = None,
) -> HPRWPreparationResult:
    """Steps 1-3 of Figure 3: sample ``S``, find ``w``, select the ball ``R``.

    * every node joins ``S`` independently with probability
      ``min(1, (ln n + 1) / s)``; if more than ``n (ln n + 1)^2 / s`` nodes
      join, the attempt is flagged as aborted (the paper's abort condition);
    * a pipelined multi-source BFS from ``S`` gives every node ``v`` its
      distance ``d(v, S)`` and, as a by-product, ``max_{u in S} ecc(u)``;
    * ``w`` is a node maximising ``d(w, S)``; a BFS tree from ``w`` is
      built and the ball ``R`` of the ``s`` nodes closest to ``w`` is
      selected by binary search on the ball radius.

    Round complexity: ``O(|S| + D log n)`` which is
    ``O~(n / s + D)`` for the sampling probability above.
    """
    if s < 1:
        raise ValueError(f"the parameter s must be >= 1, got {s}")
    metrics = ExecutionMetrics()
    n = network.num_nodes

    if leader is None:
        election = run_leader_election(network)
        leader = election.leader
        metrics = metrics.merged(election.metrics)
    leader_tree = run_bfs_tree(network, leader)
    metrics = metrics.merged(leader_tree.metrics)

    # Step 1: random sampling.  Sampling is a purely local coin flip, so it
    # costs no communication; detecting the abort condition costs one
    # convergecast (O(D) rounds).
    log_term = math.log(n) + 1.0
    probability = min(1.0, log_term / s)
    sampled: Set[NodeId] = set()
    for node in network.graph.nodes():
        digest = zlib.crc32(f"hprw|{seed}|{node!r}".encode("utf-8"))
        if random.Random(digest).random() < probability:
            sampled.add(node)
    if not sampled:
        # Always keep at least the leader so the set is non-empty; this can
        # only happen on very small graphs where it changes nothing.
        sampled.add(leader)
    count_check = run_tree_aggregate_sum(
        network, leader_tree,
        {node: (1 if node in sampled else 0) for node in network.graph.nodes()},
    )
    metrics = metrics.merged(count_check.metrics)
    aborted = count_check.value > max(1.0, n * log_term * log_term / s)

    # Step 2: every node computes its distance to S (and p(v) implicitly),
    # and the maximum eccentricity over S is obtained by a convergecast of
    # the per-node maxima.
    source_bfs = run_multi_source_bfs(network, sorted(sampled, key=repr))
    metrics = metrics.merged(source_bfs.metrics)
    distance_to_set = {
        node: source_bfs.distance_to_set(node) for node in network.graph.nodes()
    }
    per_node_max_to_samples = {
        node: max(source_bfs.distances[node].values())
        for node in network.graph.nodes()
    }
    max_ecc_samples = run_tree_aggregate_max(
        network, leader_tree, per_node_max_to_samples
    )
    metrics = metrics.merged(max_ecc_samples.metrics)

    # w maximises d(w, S); its identity is broadcast to everyone.
    farthest = run_tree_aggregate_max_witness(network, leader_tree, distance_to_set)
    metrics = metrics.merged(farthest.metrics)
    w = farthest.witness
    announce = run_tree_broadcast(network, leader_tree, ("w-is", w))
    metrics = metrics.merged(announce.metrics)

    # Step 3: BFS from w, then select the ball R of the s closest nodes by
    # binary search on the radius (each probe is one convergecast sum).
    w_tree = run_bfs_tree(network, w)
    metrics = metrics.merged(w_tree.metrics)
    d_w = w_tree.depth

    target_size = min(s, n)
    low, high = 0, d_w
    while low < high:
        middle = (low + high) // 2
        count = run_tree_aggregate_sum(
            network, w_tree,
            {
                node: (1 if w_tree.distance[node] <= middle else 0)
                for node in network.graph.nodes()
            },
        )
        metrics = metrics.merged(count.metrics)
        if count.value >= target_size:
            high = middle
        else:
            low = middle + 1
    ball_radius = low
    # The ball of radius ball_radius contains at least `target_size` nodes,
    # but ties in the boundary layer can make it much larger (think of a
    # star).  Trim the boundary layer by a second binary search, over a
    # deterministic per-node hash, so that |R| stays O(s) -- each probe is
    # one more O(D)-round convergecast, which keeps the preparation within
    # its O~(n/s + D) budget.
    inner = {
        node
        for node in network.graph.nodes()
        if w_tree.distance[node] < ball_radius
    }
    full_ball_count = run_tree_aggregate_sum(
        network, w_tree,
        {
            node: (1 if w_tree.distance[node] <= ball_radius else 0)
            for node in network.graph.nodes()
        },
    )
    metrics = metrics.merged(full_ball_count.metrics)
    if full_ball_count.value <= 2 * target_size:
        ball = {
            node
            for node in network.graph.nodes()
            if w_tree.distance[node] <= ball_radius
        }
        return HPRWPreparationResult(
            sampled_set=sampled,
            w=w,
            w_tree=w_tree,
            d_w=d_w,
            ball=ball,
            ball_radius=ball_radius,
            max_ecc_over_samples=max_ecc_samples.value,
            metrics=metrics,
            aborted=aborted,
        )
    boundary_needed = target_size - len(inner)
    hash_low, hash_high = 0, _HASH_SPACE
    while hash_low < hash_high:
        middle = (hash_low + hash_high) // 2
        count = run_tree_aggregate_sum(
            network, w_tree,
            {
                node: (
                    1
                    if w_tree.distance[node] == ball_radius
                    and _node_hash(node) <= middle
                    else 0
                )
                for node in network.graph.nodes()
            },
        )
        metrics = metrics.merged(count.metrics)
        if count.value >= boundary_needed:
            hash_high = middle
        else:
            hash_low = middle + 1
    ball = inner | {
        node
        for node in network.graph.nodes()
        if w_tree.distance[node] == ball_radius and _node_hash(node) <= hash_low
    }

    return HPRWPreparationResult(
        sampled_set=sampled,
        w=w,
        w_tree=w_tree,
        d_w=d_w,
        ball=ball,
        ball_radius=ball_radius,
        max_ecc_over_samples=max_ecc_samples.value,
        metrics=metrics,
        aborted=aborted,
    )


def max_eccentricity_over_ball(
    network: Network, preparation: HPRWPreparationResult
) -> Tuple[int, ExecutionMetrics]:
    """Classically compute ``max_{v in R} ecc(v)`` with pipelined waves.

    The ball ``R`` is parent-closed in ``BFS(w)``, so an Euler tour of the
    induced subtree numbers its nodes in ``O(|R|)`` rounds; the waves then
    need ``O(|R| + D)`` rounds.
    """
    metrics = ExecutionMetrics()
    tour = run_full_euler_tour(
        network, preparation.w_tree, members=preparation.ball
    )
    metrics = metrics.merged(tour.metrics)
    schedule: Dict[NodeId, WaveScheduleEntry] = {
        node: WaveScheduleEntry(start_round=2 * time, tag=time)
        for node, time in tour.visit_time.items()
    }
    max_tag = max(entry.tag for entry in schedule.values())
    duration = 2 * max_tag + 2 * preparation.w_tree.depth + 2
    waves = run_distance_waves(network, schedule, duration)
    metrics = metrics.merged(waves.metrics)
    aggregate = run_tree_aggregate_max(
        network, preparation.w_tree, waves.max_distance
    )
    metrics = metrics.merged(aggregate.metrics)
    return aggregate.value, metrics


def run_hprw_three_halves_approximation(
    network: Network,
    s: Optional[int] = None,
    seed: Optional[int] = None,
) -> ApproxDiameterResult:
    """The classical 3/2-approximation of [HPRW14] in ``O~(sqrt(n) + D)`` rounds.

    ``s`` defaults to ``ceil(sqrt(n))``, the choice that balances the
    ``O~(n / s)`` preparation against the ``O~(s + D)`` completion.
    """
    n = network.num_nodes
    if s is None:
        s = max(1, math.ceil(math.sqrt(n)))

    preparation = run_hprw_preparation(network, s=s, seed=seed)
    metrics = preparation.metrics

    ecc_w = run_eccentricity(network, preparation.w, tree=preparation.w_tree)
    metrics = metrics.merged(ecc_w.metrics)

    ball_max, ball_metrics = max_eccentricity_over_ball(network, preparation)
    metrics = metrics.merged(ball_metrics)

    estimate = max(
        preparation.max_ecc_over_samples, ecc_w.eccentricity, ball_max
    )
    return ApproxDiameterResult(
        estimate=estimate, approximation_factor=1.5, metrics=metrics
    )
