"""Token-based Euler-tour (DFS) traversals of a spanning tree.

The paper's algorithms schedule work along a Depth-First-Search traversal of
``BFS(leader)``:

* Definition 1 numbers every node by ``tau(v)``, the step at which the DFS
  traversal of the BFS tree first reaches ``v`` (``tau(leader) = 0``);
* Step 1 of the Figure-2 Evaluation procedure performs only ``2d`` steps of
  that traversal, starting at the node ``u0`` received in the quantum data
  register, wrapping around to the leader when it reaches the end, and
  assigns the *relative* numbers ``tau'(v) = tau(v) - tau(u0) (mod L)`` to
  the nodes it reaches.

Both are implemented by passing a single ``O(log n)``-bit token along tree
edges.  The crucial observation (which keeps the per-node memory at
``O(log n)`` bits, as the paper requires) is that the Euler tour of a tree
is *memoryless*: the next edge only depends on the current node and on the
edge the token arrived through -- when the token arrives from the parent the
tour descends into the first child, and when it arrives from child ``c`` it
descends into the child after ``c`` (or returns to the parent after the last
child).  Children are ordered deterministically (the order fixed by the BFS
construction), so every node can apply the rule locally.

The traversal can optionally be restricted to a *subtree* of member nodes
that is closed under taking parents (e.g. the ball ``R`` of the closest
``s`` nodes to ``w`` used by the approximation algorithm): non-member
children are simply skipped by the local rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.algorithms.bfs import BFSTreeResult
from repro.congest.metrics import ExecutionMetrics
from repro.congest.network import Network
from repro.congest.node import Inbox, NodeAlgorithm, Outbox
from repro.graphs.graph import NodeId


@dataclass
class EulerTourResult:
    """Outcome of a (possibly windowed) Euler-tour traversal.

    ``visit_time`` maps each node reached by a *top-down* move (plus the
    start node, at time 0) to the traversal step at which it was first
    reached.  For the full tour this is exactly the DFS numbering ``tau`` of
    Definition 1; for a windowed tour started at ``u0`` it is the relative
    numbering ``tau'`` of the Figure-2 Evaluation procedure, and the set of
    keys is the set ``S(u0)`` of Definition 2.
    """

    start: NodeId
    steps: int
    visit_time: Dict[NodeId, int]
    metrics: ExecutionMetrics

    @property
    def visited(self) -> Set[NodeId]:
        """The set of nodes reached by the traversal (the set ``S``)."""
        return set(self.visit_time)


class _EulerTourNode(NodeAlgorithm):
    """Per-node state machine passing the Euler-tour token.

    The token payload is ``("tk", step, budget)`` where ``step`` is the
    number of tree-edge traversals performed so far and ``budget`` is the
    total number of steps to perform (``2 * (n_members - 1)`` for a full
    tour).  A second payload form ``("visit", step)`` is not needed: a node
    learns its visit time from the step counter of the token that enters it
    top-down.
    """

    def __init__(
        self, node_id, neighbors, num_nodes, rng,
        tree: BFSTreeResult, start: NodeId, budget: int,
        member: Callable[[NodeId], bool],
    ) -> None:
        super().__init__(node_id, neighbors, num_nodes, rng)
        self.tree = tree
        self.start = start
        self.budget = budget
        self.is_member = member(node_id)
        self.parent = tree.parent[node_id]
        self.children: Tuple[NodeId, ...] = tuple(
            child for child in tree.children_of(node_id) if member(child)
        )
        self.visit_time: Optional[int] = None
        # Reactive node: the execution ends when the token budget runs out.
        self.finished = True

    # -- local Euler-tour rule -----------------------------------------
    def _next_hop(self, came_from: Optional[NodeId]) -> Optional[NodeId]:
        """Where the tour goes next, given where the token arrived from.

        ``came_from is None`` or ``came_from == parent`` means a top-down
        arrival: descend into the first child, or bounce back to the parent
        if there is none.  Arrival from child ``c``: descend into the child
        following ``c``, or go up to the parent after the last child.  The
        tree root wraps around (restarts its child list) instead of going to
        its (non-existent) parent -- this implements the cyclic continuation
        "if it reaches the end of the DFS, it starts again from leader".
        """
        if came_from is None or came_from == self.parent:
            if self.children:
                return self.children[0]
            return self._up()
        index = self.children.index(came_from)
        if index + 1 < len(self.children):
            return self.children[index + 1]
        return self._up()

    def _up(self) -> Optional[NodeId]:
        if self.parent is not None:
            return self.parent
        # Root: wrap around and restart the tour from the first child.
        if self.children:
            return self.children[0]
        return None

    def _record_visit(self, step: int, came_from: Optional[NodeId]) -> None:
        if self.visit_time is not None:
            return
        arrived_top_down = came_from is None or (
            self.parent is not None and came_from == self.parent
        )
        # The tree root is never entered top-down; its (wrapped) visit time
        # is the moment the closed tour returns to it from its last child,
        # which matches tau(root) = 0 modulo the tour length.
        wrapped_to_root = (
            self.parent is None
            and came_from is not None
            and self.children
            and came_from == self.children[-1]
        )
        if arrived_top_down or wrapped_to_root:
            self.visit_time = step

    def on_round(self, round_number: int, inbox: Inbox) -> Optional[Outbox]:
        if round_number == 0:
            if self.node_id != self.start:
                return {}
            # The start node behaves as if the token had just entered it
            # top-down at step 0.
            self._record_visit(0, None)
            return self._forward(step=0, came_from=None)

        for sender, payload in inbox.items():
            if not (isinstance(payload, tuple) and payload and payload[0] == "tk"):
                continue
            step = payload[1]
            self._record_visit(step, sender)
            return self._forward(step=step, came_from=sender)
        return {}

    def _forward(self, step: int, came_from: Optional[NodeId]) -> Outbox:
        if step >= self.budget:
            return {}
        target = self._next_hop(came_from)
        if target is None:
            return {}
        return {target: ("tk", step + 1, self.budget)}

    def result(self):
        return self.visit_time

    def memory_bits(self) -> Optional[int]:
        import math

        log_n = max(1, math.ceil(math.log2(self.num_nodes + 1)))
        # Visit time, parent pointer, child cursor: O(log n) bits.
        return 4 * log_n


def _run_tour(
    network: Network,
    tree: BFSTreeResult,
    start: NodeId,
    budget: int,
    member: Callable[[NodeId], bool],
) -> EulerTourResult:
    execution = network.run(
        lambda node, net: _EulerTourNode(
            node, net.neighbors(node), net.num_nodes, net.node_rng(node),
            tree, start, budget, member,
        ),
        max_rounds=budget + 4,
    )
    visit_time = {
        node: time for node, time in execution.results.items() if time is not None
    }
    execution.metrics.record_phase("euler_tour", execution.metrics.rounds)
    return EulerTourResult(
        start=start, steps=budget, visit_time=visit_time, metrics=execution.metrics
    )


def run_full_euler_tour(
    network: Network,
    tree: BFSTreeResult,
    members: Optional[Set[NodeId]] = None,
) -> EulerTourResult:
    """Full DFS traversal of ``tree`` from its root: the numbering ``tau``.

    When ``members`` is given, the traversal is restricted to the subtree
    induced by the member nodes (which must contain the root and be closed
    under taking parents); only member nodes receive a number.  The tour
    takes ``2 * (m - 1)`` token steps for ``m`` member nodes, hence
    ``O(m)`` rounds.
    """
    member = _membership(tree, members)
    count = sum(1 for node in network.graph.nodes() if member(node))
    budget = max(0, 2 * (count - 1))
    return _run_tour(network, tree, tree.root, budget, member)


def run_windowed_euler_tour(
    network: Network,
    tree: BFSTreeResult,
    start: NodeId,
    window: int,
    members: Optional[Set[NodeId]] = None,
) -> EulerTourResult:
    """``window`` steps of the DFS traversal starting at ``start``.

    This is Step 1 of the Figure-2 Evaluation procedure (with ``window =
    2d``): the visited set is ``S(start)`` and the visit times are the
    relative numbers ``tau'``.  Takes ``window + O(1)`` rounds.
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    member = _membership(tree, members)
    if not member(start):
        raise ValueError(f"start node {start!r} is not a member of the subtree")
    count = sum(1 for node in network.graph.nodes() if member(node))
    # The window never needs to exceed one full tour: beyond that every
    # member node has already been visited.
    budget = min(window, max(0, 2 * (count - 1)) if count > 1 else 0)
    return _run_tour(network, tree, start, budget, member)


def sequential_euler_tour(
    tree: BFSTreeResult,
    start: NodeId,
    window: Optional[int] = None,
    members: Optional[Set[NodeId]] = None,
) -> Dict[NodeId, int]:
    """Sequential (non-distributed) reference of the Euler-tour visit times.

    Reproduces exactly the numbering that the distributed token traversal
    computes -- same child ordering, same wrap-around rule -- but without
    running the CONGEST simulation.  Used by the test-suite as an oracle and
    by the quantum framework's fast "reference" evaluation mode.

    ``window=None`` performs the full tour (``2 (m - 1)`` steps over the
    ``m`` member nodes); otherwise only ``window`` steps are performed.
    """
    member = _membership(tree, members)
    if not member(start):
        raise ValueError(f"start node {start!r} is not a member of the subtree")
    children: Dict[NodeId, Tuple[NodeId, ...]] = {
        node: tuple(child for child in tree.children_of(node) if member(child))
        for node in tree.parent
        if member(node)
    }
    member_count = len(children)
    budget = 2 * (member_count - 1) if member_count > 1 else 0
    if window is not None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        budget = min(window, budget)

    visit_time: Dict[NodeId, int] = {start: 0}
    current = start
    came_from: Optional[NodeId] = None
    for step in range(budget):
        child_list = children[current]
        parent = tree.parent[current]
        if came_from is None or came_from == parent:
            target = child_list[0] if child_list else _up_target(parent, child_list)
        else:
            index = child_list.index(came_from)
            if index + 1 < len(child_list):
                target = child_list[index + 1]
            else:
                target = _up_target(parent, child_list)
        if target is None:
            break
        arrived_top_down = tree.parent[target] is not None and tree.parent[target] == current
        wrapped_to_root = (
            tree.parent[target] is None
            and children[target]
            and current == children[target][-1]
        )
        came_from, current = current, target
        if (arrived_top_down or wrapped_to_root) and current not in visit_time:
            visit_time[current] = step + 1
    return visit_time


def _up_target(
    parent: Optional[NodeId], child_list: Tuple[NodeId, ...]
) -> Optional[NodeId]:
    if parent is not None:
        return parent
    if child_list:
        return child_list[0]
    return None


def _membership(
    tree: BFSTreeResult, members: Optional[Set[NodeId]]
) -> Callable[[NodeId], bool]:
    if members is None:
        return lambda node: True
    member_set = set(members)
    if tree.root not in member_set:
        raise ValueError("the subtree members must contain the tree root")
    for node in member_set:
        parent = tree.parent[node]
        if parent is not None and parent not in member_set:
            raise ValueError(
                "the subtree members must be closed under taking parents "
                f"(node {node!r} is a member but its parent {parent!r} is not)"
            )
    return lambda node: node in member_set
