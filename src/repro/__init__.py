"""repro: a reproduction of "Sublinear-Time Quantum Computation of the
Diameter in CONGEST Networks" (Le Gall & Magniez, PODC 2018).

The library contains, from the ground up:

* a CONGEST-model network simulator (:mod:`repro.congest`);
* the classical distributed building blocks and baselines
  (:mod:`repro.algorithms`): BFS trees, leader election, Euler-tour
  traversals, the pipelined distance waves of Figure 2, exact diameter in
  ``O(n)`` rounds, and the 3/2-approximation of [LP13, HPRW14];
* centralized quantum primitives (:mod:`repro.quantum`): amplitude
  amplification, Grover search and quantum maximum finding with exact
  measurement statistics and query accounting;
* the distributed quantum optimization framework of Theorem 7
  (:mod:`repro.qcongest`);
* the paper's algorithms (:mod:`repro.core`): Theorem 1 (exact diameter in
  ``O~(sqrt(n D))`` rounds) and Theorem 4 (3/2-approximation in
  ``O~((n D)^(1/3) + D)`` rounds);
* the lower-bound machinery (:mod:`repro.lowerbounds`): gadget reductions,
  the Theorem-10 two-party reduction and the Theorem-11 block-staircase
  simulation;
* analysis helpers (:mod:`repro.analysis`) used by the benchmark harnesses
  to regenerate Table 1 and the figure-level experiments;
* deterministic fault injection (:mod:`repro.faults`): seeded message
  loss/delay, fail-pause node crash/restart and edge churn layered over
  the engine, with retry/backoff counterparts of the building blocks in
  :mod:`repro.algorithms.resilient`.

Quick start::

    from repro.graphs import generators
    from repro.core import quantum_exact_diameter
    from repro.algorithms import run_classical_exact_diameter
    from repro.congest import Network

    graph = generators.clique_chain(num_cliques=4, clique_size=5)
    quantum = quantum_exact_diameter(graph, oracle_mode="reference", seed=1)
    classical = run_classical_exact_diameter(Network(graph))
    print(quantum.diameter, quantum.rounds, classical.diameter, classical.rounds)
"""

from repro import (
    algorithms,
    analysis,
    congest,
    core,
    faults,
    graphs,
    lowerbounds,
    qcongest,
    quantum,
)

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "congest",
    "algorithms",
    "quantum",
    "qcongest",
    "core",
    "faults",
    "lowerbounds",
    "analysis",
    "__version__",
]
