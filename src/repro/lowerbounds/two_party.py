"""Two-party communication transcripts with message and qubit accounting.

The paper's lower bounds reason about two-party protocols only through two
resources: the *number of messages* exchanged (the ``r`` of Theorem 5) and
the *total communication* in (qu)bits.  :class:`TwoPartyTranscript` records
exactly those, plus the per-message breakdown, for the protocols produced by
the reduction of Theorem 10 and the simulation of Theorem 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

Direction = str

ALICE_TO_BOB = "alice->bob"
BOB_TO_ALICE = "bob->alice"


@dataclass
class TranscriptMessage:
    """One message of a two-party protocol."""

    direction: Direction
    bits: int
    label: str = ""


@dataclass
class TwoPartyTranscript:
    """Message-by-message record of a two-party protocol execution."""

    messages: List[TranscriptMessage] = field(default_factory=list)
    output: Optional[int] = None

    def send(self, direction: Direction, bits: int, label: str = "") -> None:
        """Record one message of the given size."""
        if direction not in (ALICE_TO_BOB, BOB_TO_ALICE):
            raise ValueError(f"unknown direction {direction!r}")
        if bits < 0:
            raise ValueError(f"message size must be >= 0 bits, got {bits}")
        self.messages.append(TranscriptMessage(direction=direction, bits=bits, label=label))

    @property
    def num_messages(self) -> int:
        """Number of messages exchanged (the ``r`` of Theorem 5)."""
        return len(self.messages)

    @property
    def total_bits(self) -> int:
        """Total communication in (qu)bits."""
        return sum(message.bits for message in self.messages)

    @property
    def max_message_bits(self) -> int:
        """Size of the largest single message."""
        if not self.messages:
            return 0
        return max(message.bits for message in self.messages)

    def rounds_of_interaction(self) -> int:
        """Number of direction alternations plus one (maximal turns).

        Consecutive messages in the same direction can be concatenated into
        a single message, so this is the effective message count used when
        comparing against Theorem 5.
        """
        if not self.messages:
            return 0
        turns = 1
        for previous, current in zip(self.messages, self.messages[1:]):
            if current.direction != previous.direction:
                turns += 1
        return turns
