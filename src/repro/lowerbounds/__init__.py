"""Lower-bound machinery: reductions, two-party simulations and bounds.

The paper's lower bounds (Theorems 2 and 3) follow the classical recipe --
reduce two-party set disjointness to diameter computation over a carefully
constructed network -- with two quantum twists: the bounded-round quantum
communication lower bound for disjointness of [BGK+15] (Theorem 5), and the
register-level simulation argument (Theorem 11) needed to handle quantum
information that cannot be copied.

This subpackage implements the machinery concretely:

* :mod:`repro.lowerbounds.disjointness` -- the ``DISJ_k`` function and
  instance generators;
* :mod:`repro.lowerbounds.reductions` -- the ``(b, k, d1, d2)``-reduction
  framework of Definition 3, with verifiers for the HW12 and ACHK-style
  gadget constructions (Theorems 8 and 9);
* :mod:`repro.lowerbounds.two_party` -- two-party protocols with message /
  communication accounting;
* :mod:`repro.lowerbounds.congest_to_two_party` -- Theorem 10: converting a
  CONGEST diameter algorithm run on a gadget graph into a two-party
  protocol for disjointness, with measured message and qubit counts;
* :mod:`repro.lowerbounds.simulation` -- Theorem 11: the path network
  ``G_d`` and the block-staircase simulation turning an ``r``-round
  distributed protocol into an ``O(r/d)``-message two-party protocol of
  ``O(r (bw + s))`` qubits;
* :mod:`repro.lowerbounds.bounds` -- numeric evaluation of the implied
  round lower bounds.
"""

from repro.lowerbounds.bounds import (
    theorem2_lower_bound,
    theorem3_lower_bound,
    theorem5_communication_lower_bound,
    theorem10_lower_bound,
)
from repro.lowerbounds.congest_to_two_party import (
    TwoPartyReductionOutcome,
    simulate_congest_algorithm_as_two_party_protocol,
)
from repro.lowerbounds.disjointness import (
    disjointness,
    random_disjoint_instance,
    random_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.reductions import (
    DisjointnessReduction,
    achk_reduction,
    hw12_reduction,
    verify_reduction_on_instance,
)
from repro.lowerbounds.simulation import (
    PathNetworkProtocol,
    PathSimulationResult,
    simulate_path_protocol_as_two_party,
)
from repro.lowerbounds.two_party import TwoPartyTranscript

__all__ = [
    "disjointness",
    "random_instance",
    "random_disjoint_instance",
    "random_intersecting_instance",
    "DisjointnessReduction",
    "hw12_reduction",
    "achk_reduction",
    "verify_reduction_on_instance",
    "TwoPartyTranscript",
    "simulate_congest_algorithm_as_two_party_protocol",
    "TwoPartyReductionOutcome",
    "PathNetworkProtocol",
    "PathSimulationResult",
    "simulate_path_protocol_as_two_party",
    "theorem2_lower_bound",
    "theorem3_lower_bound",
    "theorem5_communication_lower_bound",
    "theorem10_lower_bound",
]
