"""The ``(b, k, d1, d2)``-reduction framework of Definition 3.

A reduction from disjointness to diameter computation is a family of
bipartite-cut graphs ``G_n`` together with input maps ``g_n`` (Alice) and
``h_n`` (Bob) such that the graph ``G_n(x, y)`` has diameter at most ``d1``
when ``DISJ_k(x, y) = 1`` and at least ``d2`` when ``DISJ_k(x, y) = 0``.
The four parameters that matter downstream are ``b`` (cut edges), ``k``
(input length) and the thresholds ``d1 < d2``.

This module wraps the concrete gadget constructions of
:mod:`repro.graphs.gadgets_hw12` (Theorem 8) and
:mod:`repro.graphs.gadgets_achk` (Theorem 9) behind a common
:class:`DisjointnessReduction` interface, and provides the brute-force
verifier used by the tests and by the gadget benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.graphs.gadgets_achk import ACHKGadget
from repro.graphs.gadgets_hw12 import HW12Gadget
from repro.graphs.gadgets_path import PathSubdividedGadget
from repro.graphs.graph import Graph, NodeId
from repro.lowerbounds.disjointness import disjointness

GadgetLike = Union[HW12Gadget, ACHKGadget, PathSubdividedGadget]


@dataclass
class DisjointnessReduction:
    """A concrete ``(b, k, d1, d2)``-reduction (Definition 3)."""

    name: str
    gadget: GadgetLike
    cut_edges: int          # b
    input_length: int       # k
    diameter_if_disjoint: int      # d1
    diameter_if_intersecting: int  # d2
    num_nodes: int

    def graph_for_inputs(self, x: Sequence[int], y: Sequence[int]) -> Graph:
        """The graph ``G_n(x, y)``."""
        return self.gadget.graph_for_inputs(x, y)

    def left_nodes(self) -> List[NodeId]:
        """Alice's side ``U_n``."""
        return self.gadget.left_nodes()

    def right_nodes(self) -> List[NodeId]:
        """Bob's side ``V_n``."""
        return self.gadget.right_nodes()

    def decide_disjointness_from_diameter(self, diameter: int) -> int:
        """Translate a diameter value back into a DISJ answer.

        Diameters at most ``d1`` mean "disjoint" (1), at least ``d2`` mean
        "intersecting" (0).  Values strictly between the thresholds violate
        the reduction's promise and raise ``ValueError``.
        """
        if diameter <= self.diameter_if_disjoint:
            return 1
        if diameter >= self.diameter_if_intersecting:
            return 0
        raise ValueError(
            f"diameter {diameter} falls between the thresholds "
            f"{self.diameter_if_disjoint} and {self.diameter_if_intersecting}"
        )


def hw12_reduction(s: int) -> DisjointnessReduction:
    """The Theorem-8 reduction: ``(Theta(n), Theta(n^2), 2, 3)``."""
    gadget = HW12Gadget(s)
    return DisjointnessReduction(
        name="HW12",
        gadget=gadget,
        cut_edges=gadget.cut_size,
        input_length=gadget.input_length,
        diameter_if_disjoint=gadget.diameter_if_disjoint,
        diameter_if_intersecting=gadget.diameter_if_intersecting,
        num_nodes=gadget.num_nodes,
    )


def achk_reduction(k: int) -> DisjointnessReduction:
    """The Theorem-9-style reduction: ``(Theta(log n), Theta(n), 4, 5)``."""
    gadget = ACHKGadget(k)
    return DisjointnessReduction(
        name="ACHK",
        gadget=gadget,
        cut_edges=gadget.cut_size,
        input_length=gadget.input_length,
        diameter_if_disjoint=gadget.diameter_if_disjoint,
        diameter_if_intersecting=gadget.diameter_if_intersecting,
        num_nodes=gadget.num_nodes,
    )


def path_subdivided_reduction(k: int, d: int) -> DisjointnessReduction:
    """The Section-6.2 reduction: ACHK with every cut edge subdivided into a
    path of ``d`` dummy nodes (thresholds ``d + 4`` / ``d + 5``)."""
    gadget = PathSubdividedGadget(ACHKGadget(k), d)
    return DisjointnessReduction(
        name=f"ACHK-path-{d}",
        gadget=gadget,
        cut_edges=gadget.cut_size,
        input_length=gadget.input_length,
        diameter_if_disjoint=gadget.diameter_if_disjoint,
        diameter_if_intersecting=gadget.diameter_if_intersecting,
        num_nodes=gadget.num_nodes,
    )


@dataclass
class ReductionCheck:
    """Outcome of verifying Definition 3 on one input pair."""

    disjoint: bool
    diameter: int
    cross_distance: int
    satisfied: bool


def verify_reduction_on_instance(
    reduction: DisjointnessReduction,
    x: Sequence[int],
    y: Sequence[int],
) -> ReductionCheck:
    """Brute-force check of conditions (i)/(ii) of Definition 3.

    Builds ``G_n(x, y)``, computes its diameter and the largest cross
    distance ``Delta`` exactly, and checks them against the thresholds.
    """
    graph = reduction.graph_for_inputs(x, y)
    # Both oracle queries run on one compiled CSR view of the gadget.
    indexed = graph.compile()
    diameter = indexed.diameter()
    cross = indexed.max_cross_distance(
        reduction.left_nodes(), reduction.right_nodes()
    )
    disjoint = disjointness(x, y) == 1
    if disjoint:
        satisfied = (
            cross <= reduction.diameter_if_disjoint
            and diameter <= reduction.diameter_if_disjoint
        )
    else:
        satisfied = (
            cross >= reduction.diameter_if_intersecting
            and diameter >= reduction.diameter_if_intersecting
        )
    return ReductionCheck(
        disjoint=disjoint,
        diameter=diameter,
        cross_distance=cross,
        satisfied=satisfied,
    )
