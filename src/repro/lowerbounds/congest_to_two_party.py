"""Theorem 10: a CONGEST diameter algorithm yields a two-party DISJ protocol.

Given a ``(b, k, d1, d2)``-reduction and an ``r``-round distributed
algorithm that decides whether the diameter is at most ``d1`` or at least
``d2``, Alice and Bob can decide ``DISJ_k(x, y)``: each builds her/his side
of ``G_n(x, y)`` locally and they jointly simulate the distributed
algorithm, exchanging -- per simulated round -- one message in each
direction containing whatever the algorithm sent across the ``b`` cut edges
that round (``O(b log n)`` qubits).  The resulting protocol uses ``2 r``
messages and ``O(r b log n)`` qubits, and plugging it into the [BGK+15]
bound gives ``r = Omega~(sqrt(k / b))``.

:func:`simulate_congest_algorithm_as_two_party_protocol` performs this
construction concretely: it runs a (classical) distributed diameter
algorithm on the gadget graph while recording per-round cut traffic, builds
the corresponding two-party transcript, and checks that the answer decoded
from the computed diameter equals ``DISJ_k(x, y)``.  The benchmark harness
then compares the measured ``(messages, qubits)`` against the Theorem-5
lower-bound curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Set, Tuple

from repro.algorithms.diameter_exact import run_classical_exact_diameter
from repro.congest.network import Network
from repro.engine import StitchedTrafficObserver
from repro.graphs.graph import Graph, NodeId
from repro.lowerbounds.disjointness import disjointness
from repro.lowerbounds.reductions import DisjointnessReduction
from repro.lowerbounds.two_party import (
    ALICE_TO_BOB,
    BOB_TO_ALICE,
    TwoPartyTranscript,
)

#: Signature of a distributed diameter solver usable in the reduction: it
#: takes a network and returns ``(diameter, rounds, traffic)`` where
#: ``traffic`` lists ``(round, sender, receiver, bits)`` tuples.
DiameterSolver = Callable[[Network], Tuple[int, int, list]]


@dataclass
class TwoPartyReductionOutcome:
    """Outcome of the Theorem-10 construction on one instance."""

    disjointness_answer: int
    expected_answer: int
    diameter: int
    rounds: int
    transcript: TwoPartyTranscript
    cut_bits_per_round_max: int

    @property
    def correct(self) -> bool:
        """Whether the protocol computed ``DISJ`` correctly."""
        return self.disjointness_answer == self.expected_answer


class _RecordingDiameterSolver:
    """Runs the classical exact-diameter algorithm phase by phase while
    keeping the traffic of every phase."""

    def __call__(self, network: Network) -> Tuple[int, int, list]:
        # The composed classical algorithm issues one ``Network.run`` per
        # phase; a stitched traffic observer attached to the network's
        # metrics pipeline records all of them, re-basing rounds so that
        # phase i starts after the last traffic-carrying round of phases
        # < i (a single sequential transcript, as Theorem 10 requires).
        recorder = StitchedTrafficObserver()
        network.add_observer(recorder)
        try:
            outcome = run_classical_exact_diameter(network)
        finally:
            network.remove_observer(recorder)
        return outcome.diameter, outcome.metrics.rounds, recorder.traffic


def simulate_congest_algorithm_as_two_party_protocol(
    reduction: DisjointnessReduction,
    x: Sequence[int],
    y: Sequence[int],
    solver: Optional[DiameterSolver] = None,
    bandwidth_bits: Optional[int] = None,
) -> TwoPartyReductionOutcome:
    """Run the Theorem-10 construction on the instance ``(x, y)``.

    Parameters
    ----------
    reduction:
        The ``(b, k, d1, d2)``-reduction providing the gadget graph and the
        left/right partition.
    x, y:
        Alice's and Bob's inputs (length ``k``).
    solver:
        The distributed diameter algorithm to simulate; defaults to the
        classical ``O(n)``-round exact algorithm.
    bandwidth_bits:
        Optional bandwidth override for the gadget network.

    Returns
    -------
    TwoPartyReductionOutcome
        The decoded DISJ answer, the expected answer, and the two-party
        transcript whose messages aggregate the per-round cut traffic.
    """
    graph = reduction.graph_for_inputs(x, y)
    network = Network(graph, bandwidth_bits=bandwidth_bits)
    if solver is None:
        solver = _RecordingDiameterSolver()
    diameter, rounds, traffic = solver(network)

    left: Set[NodeId] = set(reduction.left_nodes())
    right: Set[NodeId] = set(reduction.right_nodes())

    # Aggregate, per round, the bits that crossed the cut in each direction.
    per_round: dict = {}
    for round_number, sender, receiver, bits in traffic:
        sender_side = _side_of(sender, left, right)
        receiver_side = _side_of(receiver, left, right)
        if sender_side == receiver_side or sender_side is None or receiver_side is None:
            continue
        direction = ALICE_TO_BOB if sender_side == "left" else BOB_TO_ALICE
        key = (round_number, direction)
        per_round[key] = per_round.get(key, 0) + bits

    transcript = TwoPartyTranscript()
    max_cut_bits = 0
    for round_number in sorted({key[0] for key in per_round}):
        for direction in (ALICE_TO_BOB, BOB_TO_ALICE):
            bits = per_round.get((round_number, direction), 0)
            # Theorem 10 sends one message per direction per simulated round
            # even when the algorithm happened to send nothing across the
            # cut (the simulation cannot know that in advance); we charge at
            # least one bit for such messages.
            transcript.send(direction, max(1, bits), label=f"round {round_number}")
            max_cut_bits = max(max_cut_bits, bits)
    # Final exchange of the decoded answer.
    answer = reduction.decide_disjointness_from_diameter(diameter)
    transcript.send(ALICE_TO_BOB, 1, label="answer")
    transcript.output = answer

    return TwoPartyReductionOutcome(
        disjointness_answer=answer,
        expected_answer=disjointness(x, y),
        diameter=diameter,
        rounds=rounds,
        transcript=transcript,
        cut_bits_per_round_max=max_cut_bits,
    )


def _side_of(node: NodeId, left: Set[NodeId], right: Set[NodeId]) -> Optional[str]:
    if node in left:
        return "left"
    if node in right:
        return "right"
    return None
