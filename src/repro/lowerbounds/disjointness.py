"""The set-disjointness function ``DISJ_k`` and instance generators.

``DISJ_k(x, y) = 0`` iff there is an index ``i`` with ``x_i = y_i = 1``
(Section 2.2 of the paper).  Its randomized classical two-party
communication complexity is ``Theta(k)`` bits and its quantum communication
complexity is ``Theta(sqrt(k))`` qubits; the bounded-round bound of
Theorem 5 ([BGK+15]) -- ``Omega~(k / r + r)`` for ``r``-message protocols --
is what powers the paper's quantum round lower bounds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

BitString = Tuple[int, ...]


def disjointness(x: Sequence[int], y: Sequence[int]) -> int:
    """``DISJ_k``: 1 when the supports are disjoint, 0 when they intersect."""
    if len(x) != len(y):
        raise ValueError(
            f"inputs must have the same length, got {len(x)} and {len(y)}"
        )
    _check_bits(x)
    _check_bits(y)
    return 0 if any(a == 1 and b == 1 for a, b in zip(x, y)) else 1


def intersection_witness(x: Sequence[int], y: Sequence[int]) -> Optional[int]:
    """The smallest intersecting index, or ``None`` if the supports are disjoint."""
    if len(x) != len(y):
        raise ValueError("inputs must have the same length")
    for index, (a, b) in enumerate(zip(x, y)):
        if a == 1 and b == 1:
            return index
    return None


def random_instance(
    k: int, density: float = 0.5, seed: Optional[int] = None
) -> Tuple[BitString, BitString]:
    """A random pair of ``k``-bit inputs with i.i.d. Bernoulli(density) bits."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must lie in [0, 1], got {density}")
    rng = random.Random(seed)
    x = tuple(1 if rng.random() < density else 0 for _ in range(k))
    y = tuple(1 if rng.random() < density else 0 for _ in range(k))
    return x, y


def random_disjoint_instance(
    k: int, density: float = 0.5, seed: Optional[int] = None
) -> Tuple[BitString, BitString]:
    """A random pair of inputs guaranteed to be disjoint (``DISJ = 1``).

    Every index independently receives one of the patterns ``00``, ``01`` or
    ``10`` (never ``11``), with the 1-patterns appearing with probability
    ``density`` each.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = random.Random(seed)
    x: List[int] = []
    y: List[int] = []
    for _ in range(k):
        roll = rng.random()
        if roll < density / 2:
            x.append(1)
            y.append(0)
        elif roll < density:
            x.append(0)
            y.append(1)
        else:
            x.append(0)
            y.append(0)
    return tuple(x), tuple(y)


def random_intersecting_instance(
    k: int, density: float = 0.5, seed: Optional[int] = None
) -> Tuple[BitString, BitString]:
    """A random pair of inputs guaranteed to intersect (``DISJ = 0``).

    A random disjoint instance is drawn and a single uniformly random index
    is planted with ``x_i = y_i = 1``.
    """
    rng = random.Random(seed)
    x, y = random_disjoint_instance(k, density=density, seed=rng.randrange(2 ** 30))
    planted = rng.randrange(k)
    x = x[:planted] + (1,) + x[planted + 1:]
    y = y[:planted] + (1,) + y[planted + 1:]
    return x, y


def _check_bits(bits: Sequence[int]) -> None:
    if any(bit not in (0, 1) for bit in bits):
        raise ValueError("inputs must be 0/1 sequences")
