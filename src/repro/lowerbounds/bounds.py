"""Numeric evaluation of the paper's lower bounds (Theorems 2, 3, 5, 10).

These functions evaluate the *functional form* of each bound (suppressing
polylogarithmic factors, exactly as the paper's ``Omega~`` notation does) so
the benchmark harnesses can place measured upper-bound round counts next to
the corresponding lower-bound curves and verify that (a) the upper bounds
respect the lower bounds, and (b) the gap closes where the paper says it
does (Theorems 1 + 3 match for polylog memory).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


def theorem5_communication_lower_bound(k: int, messages: int) -> float:
    """[BGK+15]: ``r``-message quantum protocols for ``DISJ_k`` need
    ``Omega~(k / r + r)`` qubits of communication."""
    if k < 1 or messages < 1:
        raise ValueError("k and messages must be >= 1")
    return k / messages + messages


def theorem10_lower_bound(k: int, b: int) -> float:
    """Theorem 10: a ``(b, k, d1, d2)``-reduction forces
    ``Omega~(sqrt(k / b))`` rounds for deciding diameter ``<= d1`` vs ``>= d2``.

    Derivation: an ``r``-round algorithm gives a ``2r``-message protocol with
    ``O(r b log n)`` qubits; Theorem 5 forces
    ``r b = Omega~(k / r + r)``, hence ``r = Omega~(sqrt(k / b))``.
    """
    if k < 1 or b < 1:
        raise ValueError("k and b must be >= 1")
    return math.sqrt(k / b)


def theorem2_lower_bound(n: int, diameter: int = 0) -> float:
    """Theorem 2: deciding diameter 2 vs 3 needs ``Omega~(sqrt(n))`` rounds.

    Instantiates Theorem 10 with the HW12 reduction
    (``b = Theta(n)``, ``k = Theta(n^2)``); the additive ``D`` term accounts
    for the trivial ``Omega(D)`` bound.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.sqrt(n) + max(0, diameter)


def theorem3_lower_bound(
    n: int, diameter: int, memory_qubits: int, cut_edges: Optional[int] = None
) -> float:
    """Theorem 3: with ``s`` qubits of memory per node, exact diameter needs
    ``Omega~(sqrt(n D) / s + D)`` rounds.

    Derivation (Section 6.2): the path-subdivided ACHK gadget with parameter
    ``d = Theta(D)`` has ``k = Theta(n)`` and ``b = Theta(log n)`` cut
    edges; Theorem 11 turns an ``r``-round algorithm into an
    ``O(r/d)``-message protocol with ``O(r (b log n + s))`` qubits, and
    Theorem 5 then forces ``r = Omega~(sqrt(k d / (b + s)))``.  With
    ``k = Theta(n)``, ``d = Theta(D)`` and polylogarithmic ``b`` this is
    ``Omega~(sqrt(n D) / s)`` for ``s`` above polylog, plus the trivial
    ``Omega(D)``.
    """
    if n < 1 or diameter < 0 or memory_qubits < 1:
        raise ValueError("invalid parameters")
    b = cut_edges if cut_edges is not None else max(1, math.ceil(math.log2(n + 1)))
    d = max(1, diameter)
    return math.sqrt(n * d / (b + memory_qubits)) + diameter


@dataclass
class LowerBoundComparison:
    """A (lower bound, upper bound) pair for one parameter setting."""

    n: int
    diameter: int
    lower_bound: float
    upper_bound: float
    label: str

    @property
    def consistent(self) -> bool:
        """Whether the upper bound is at least the lower bound (up to the
        polylog slack both sides suppress).

        Because both sides drop polylogarithmic factors, we only require the
        upper bound not to be asymptotically *below* the lower bound; a
        multiplicative ``log^2 n`` tolerance captures that.
        """
        slack = max(1.0, math.log2(self.n + 1) ** 2)
        return self.upper_bound * slack >= self.lower_bound

    @property
    def ratio(self) -> float:
        """Upper bound divided by lower bound (the 'tightness' of the pair)."""
        if self.lower_bound <= 0:
            return float("inf")
        return self.upper_bound / self.lower_bound
