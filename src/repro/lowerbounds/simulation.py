"""Theorem 11: simulating a path-network protocol by a two-party protocol.

The network ``G_d`` (Figure 5) is a path ``A - P_1 - ... - P_d - B``.  Node
``A`` holds ``x``, node ``B`` holds ``y``, the ``d`` intermediate nodes hold
nothing, and the extremities must compute ``f(x, y)``.  Theorem 11: an
``r``-round distributed protocol over ``G_d`` in which every intermediate
node uses at most ``s`` qubits of memory can be converted into an
``O(r/d)``-message two-party protocol with ``O(r (bw + s))`` qubits of
communication.

**Register model.**  Following Section 6.1 (and Figure 6), protocols over
``G_d`` are normalised so that messages alternate direction: every node
``P_i`` owns a private register ``R_i``, every edge ``(P_i, P_{i+1})`` has a
message register ``T_i`` (initially held by ``P_i``), and

* at odd rounds every ``P_i`` with ``i <= d`` applies a local map to
  ``(R_i, T_i)`` and sends ``T_i`` to ``P_{i+1}``;
* at even rounds every ``P_i`` with ``i >= 1`` applies a local map to
  ``(R_i, T_{i-1})`` and sends ``T_{i-1}`` back to ``P_{i-1}``.

Any protocol can be put in this form at the cost of a factor 2 in the round
count (the paper makes the same normalisation).

**Block-staircase simulation (Figures 6-7).**  Alice and Bob alternate
turns.  On his turn ``s`` (odd) Bob advances ``P_i`` to round
``(s-1) d + i`` (and ``B`` to ``s d``); on her turn ``s`` (even) Alice
advances ``P_i`` to round ``s d - i + 1`` (and ``A`` to ``s d``).  Because
information needs a full round to cross each edge, every register a player
needs during her turn is either one she already produced or one contained in
the other player's previous hand-off.  At the end of a turn the active
player sends every register she holds except her own extremity's private
register: ``d`` relay registers of at most ``s`` bits plus ``d + 1`` message
registers of at most ``bw`` bits, i.e. ``O(d (bw + s))`` bits per hand-off
and ``O(r / d)`` hand-offs in total.  The implementation tracks register
ownership explicitly and verifies, before every simulated node-round, that
the active player owns every register it consumes -- so the produced
transcript is a genuine two-party protocol, not just an accounting exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.congest.message import message_size_bits
from repro.lowerbounds.disjointness import disjointness
from repro.lowerbounds.two_party import (
    ALICE_TO_BOB,
    BOB_TO_ALICE,
    TwoPartyTranscript,
)


class PathNodeProcess:
    """One node of a normalised (alternating-direction) path protocol.

    Subclasses define the node's initial private state and its local map
    ``act``; the private state and the message-register contents may be any
    value measurable by
    :func:`repro.congest.message.message_size_bits`.
    """

    def initial_state(self):
        """The initial content of the node's private register ``R_i``."""
        return None

    def act(self, round_number: int, state, message) -> Tuple[object, object]:
        """The local map applied to ``(R_i, T)`` at an active round.

        ``message`` is the current content of the message register the node
        holds this round (``T_i`` at odd rounds, ``T_{i-1}`` at even
        rounds).  Returns ``(new_state, new_message)``.
        """
        raise NotImplementedError

    def output(self, state):
        """The node's output after the last round (extremities only)."""
        return None


@dataclass
class PathNetworkProtocol:
    """A protocol over ``G_d``: the processes and global parameters."""

    path_length: int                      # d: number of intermediate nodes
    rounds: int                           # r: total number of rounds
    alice: PathNodeProcess
    bob: PathNodeProcess
    relays: List[PathNodeProcess]         # one per intermediate node
    bandwidth_bits: int

    def __post_init__(self) -> None:
        if self.path_length < 1:
            raise ValueError("the path must contain at least one relay node")
        if len(self.relays) != self.path_length:
            raise ValueError(
                f"expected {self.path_length} relay processes, got {len(self.relays)}"
            )
        if self.rounds < 1:
            raise ValueError("the protocol must run at least one round")


@dataclass
class PathSimulationResult:
    """Outcome of the Theorem-11 block-staircase simulation."""

    alice_output: object
    bob_output: object
    distributed_rounds: int
    transcript: TwoPartyTranscript
    max_relay_memory_bits: int
    max_message_register_bits: int
    bandwidth_bits: int

    @property
    def num_messages(self) -> int:
        """Number of two-party messages (the ``O(r/d)`` of Theorem 11)."""
        return self.transcript.num_messages

    @property
    def total_communication_bits(self) -> int:
        """Total two-party communication (the ``O(r (bw+s))`` of Theorem 11)."""
        return self.transcript.total_bits


def run_path_protocol_directly(protocol: PathNetworkProtocol) -> Tuple[object, object]:
    """Reference execution of the path protocol without any simulation.

    Used by the tests to check that the two-party simulation produces the
    same outputs as the plain distributed execution.
    """
    d = protocol.path_length
    processes = [protocol.alice] + list(protocol.relays) + [protocol.bob]
    states = [process.initial_state() for process in processes]
    registers: List[object] = [None] * (d + 1)       # T_0 .. T_d contents
    holder = list(range(d + 1))                       # T_i currently at node holder[i]

    for round_number in range(1, protocol.rounds + 1):
        if round_number % 2 == 1:
            for i in range(0, d + 1):
                if holder[i] != i:
                    continue
                states[i], registers[i] = processes[i].act(
                    round_number, states[i], registers[i]
                )
                holder[i] = i + 1
        else:
            for i in range(1, d + 2):
                if holder[i - 1] != i:
                    continue
                states[i], registers[i - 1] = processes[i].act(
                    round_number, states[i], registers[i - 1]
                )
                holder[i - 1] = i - 1
    return processes[0].output(states[0]), processes[-1].output(states[-1])


def simulate_path_protocol_as_two_party(
    protocol: PathNetworkProtocol,
) -> PathSimulationResult:
    """Run the block-staircase simulation of Theorem 11.

    The distributed protocol is executed exactly (same outputs as
    :func:`run_path_protocol_directly`), with every node-round execution
    assigned to Alice or to Bob according to the staircase schedule and
    every inter-player register hand-off recorded as a two-party message.
    """
    d = protocol.path_length
    r = protocol.rounds
    num_nodes = d + 2
    processes = [protocol.alice] + list(protocol.relays) + [protocol.bob]

    states: List[object] = [process.initial_state() for process in processes]
    registers: List[object] = [None] * (d + 1)
    completed = [0] * num_nodes

    # Ownership of registers.  Private registers: "R", i.  Message
    # registers: "T", i.  Bob plays the first turn, so he initially owns all
    # relay private registers and all message registers except T_0 (which
    # starts at node A).
    ownership: Dict[Tuple[str, int], str] = {("R", 0): "alice", ("R", num_nodes - 1): "bob"}
    for i in range(1, d + 1):
        ownership[("R", i)] = "bob"
    ownership[("T", 0)] = "alice"
    for i in range(1, d + 1):
        ownership[("T", i)] = "bob"

    transcript = TwoPartyTranscript()
    max_relay_memory = 1
    max_register_bits = 1

    def is_active(node: int, round_number: int) -> bool:
        if round_number % 2 == 1:
            return node <= d
        return node >= 1

    def register_index(node: int, round_number: int) -> int:
        return node if round_number % 2 == 1 else node - 1

    def dependency_satisfied(node: int, round_number: int) -> bool:
        """Whether the register the node needs has been produced already."""
        if not is_active(node, round_number):
            return True
        if round_number == 1:
            return True
        if round_number % 2 == 1:
            # Needs T_node, last touched by node+1 at round round_number - 1.
            return completed[node + 1] >= round_number - 1
        return completed[node - 1] >= round_number - 1

    def execute(player: str, node: int) -> None:
        nonlocal max_relay_memory, max_register_bits
        round_number = completed[node] + 1
        if not is_active(node, round_number):
            completed[node] = round_number
            return
        if ownership[("R", node)] != player:
            raise RuntimeError(
                f"{player} does not own the private register of node {node}; "
                "the staircase schedule is invalid"
            )
        t_index = register_index(node, round_number)
        if ownership[("T", t_index)] != player:
            raise RuntimeError(
                f"{player} does not own message register T_{t_index}; "
                "the staircase schedule is invalid"
            )
        new_state, new_message = processes[node].act(
            round_number, states[node], registers[t_index]
        )
        message_bits = message_size_bits(new_message) if new_message is not None else 1
        if message_bits > protocol.bandwidth_bits:
            raise ValueError(
                f"node {node} wrote {message_bits} bits into a message register "
                f"(bandwidth budget {protocol.bandwidth_bits} bits)"
            )
        states[node] = new_state
        registers[t_index] = new_message
        completed[node] = round_number
        if 1 <= node <= d:
            state_bits = message_size_bits(new_state) if new_state is not None else 1
            max_relay_memory = max(max_relay_memory, state_bits)
        max_register_bits = max(max_register_bits, message_bits)

    def handoff(sender: str, turn: int) -> None:
        receiver = "alice" if sender == "bob" else "bob"
        bits = 0
        for register, owner in list(ownership.items()):
            if owner != sender:
                continue
            kind, index = register
            if kind == "R" and index in (0, num_nodes - 1):
                continue
            if kind == "R":
                content = states[index]
            else:
                content = registers[index]
            bits += max(1, message_size_bits(content) if content is not None else 1)
            ownership[register] = receiver
        direction = ALICE_TO_BOB if sender == "alice" else BOB_TO_ALICE
        transcript.send(direction, max(1, bits), label=f"turn {turn}")

    turn = 0
    while min(completed) < r:
        turn += 1
        bob_turn = turn % 2 == 1
        player = "bob" if bob_turn else "alice"
        targets = list(completed)
        if bob_turn:
            for i in range(1, d + 1):
                targets[i] = min(r, max(completed[i], (turn - 1) * d + i))
            targets[num_nodes - 1] = min(r, max(completed[num_nodes - 1], turn * d))
        else:
            for i in range(1, d + 1):
                targets[i] = min(r, max(completed[i], turn * d - i + 1))
            targets[0] = min(r, max(completed[0], turn * d))

        progressed = True
        while progressed:
            progressed = False
            pending = [
                node for node in range(num_nodes) if completed[node] < targets[node]
            ]
            pending.sort(key=lambda node: completed[node])
            for node in pending:
                if dependency_satisfied(node, completed[node] + 1):
                    execute(player, node)
                    progressed = True
                    break
        unmet = [
            node for node in range(num_nodes) if completed[node] < targets[node]
        ]
        if unmet:
            raise RuntimeError(
                f"turn {turn}: the staircase schedule could not reach its "
                f"targets for nodes {unmet} (completed={completed}, targets={targets})"
            )
        if min(completed) < r:
            handoff(player, turn)

    alice_output = protocol.alice.output(states[0])
    bob_output = protocol.bob.output(states[num_nodes - 1])
    transcript.send(BOB_TO_ALICE, 1, label="final answer")
    transcript.output = bob_output if bob_output is not None else alice_output

    return PathSimulationResult(
        alice_output=alice_output,
        bob_output=bob_output,
        distributed_rounds=r,
        transcript=transcript,
        max_relay_memory_bits=max_relay_memory,
        max_message_register_bits=max_register_bits,
        bandwidth_bits=protocol.bandwidth_bits,
    )


# ----------------------------------------------------------------------
# A concrete path protocol: computing DISJ_k over G_d.
# ----------------------------------------------------------------------
class _StreamingAlice(PathNodeProcess):
    """Alice streams her input rightwards, one bandwidth-sized chunk per write."""

    def __init__(self, x: Sequence[int], chunk_bits: int) -> None:
        self.x = tuple(x)
        self.chunk_bits = chunk_bits
        self.num_chunks = math.ceil(len(self.x) / chunk_bits) if self.x else 0

    def initial_state(self):
        return {"next_chunk": 0, "answer": None}

    def act(self, round_number, state, message):
        state = dict(state)
        if isinstance(message, tuple) and message and message[0] == "ans":
            state["answer"] = message[1]
        index = state["next_chunk"]
        if index < self.num_chunks:
            chunk = self.x[index * self.chunk_bits: (index + 1) * self.chunk_bits]
            state["next_chunk"] = index + 1
            return state, ("x", index, chunk)
        return state, ("idle",)

    def output(self, state):
        return state["answer"]


class _StoreAndForwardRelay(PathNodeProcess):
    """A relay buffering one item per direction (``O(bw)`` bits of memory)."""

    def initial_state(self):
        return {"right": None, "left": None}

    def act(self, round_number, state, message):
        state = dict(state)
        if round_number % 2 == 1:
            # Holding T_i: its content came from the right; capture it and
            # write the pending rightward item before sending T_i right.
            if _is_payload(message):
                state["left"] = message
            outgoing = state["right"] if state["right"] is not None else ("idle",)
            state["right"] = None
            return state, outgoing
        # Holding T_{i-1}: its content came from the left; capture it and
        # write the pending leftward item before sending T_{i-1} left.
        if _is_payload(message):
            state["right"] = message
        outgoing = state["left"] if state["left"] is not None else ("idle",)
        state["left"] = None
        return state, outgoing


class _EvaluatingBob(PathNodeProcess):
    """Bob reassembles ``x``, evaluates DISJ against ``y``, replies leftwards."""

    def __init__(self, y: Sequence[int], chunk_bits: int) -> None:
        self.y = tuple(y)
        self.chunk_bits = chunk_bits
        self.num_chunks = math.ceil(len(self.y) / chunk_bits) if self.y else 0

    def initial_state(self):
        return {"chunks": {}, "answer": None}

    def act(self, round_number, state, message):
        state = {"chunks": dict(state["chunks"]), "answer": state["answer"]}
        if isinstance(message, tuple) and message and message[0] == "x":
            _, index, chunk = message
            state["chunks"][index] = tuple(chunk)
        if state["answer"] is None and len(state["chunks"]) == self.num_chunks:
            bits: List[int] = []
            for index in range(self.num_chunks):
                bits.extend(state["chunks"][index])
            state["answer"] = disjointness(tuple(bits[: len(self.y)]), self.y)
        if state["answer"] is not None:
            return state, ("ans", state["answer"])
        return state, ("idle",)

    def output(self, state):
        return state["answer"]


def _is_payload(message) -> bool:
    return (
        isinstance(message, tuple)
        and bool(message)
        and message[0] in ("x", "ans")
    )


def make_disjointness_path_protocol(
    x: Sequence[int],
    y: Sequence[int],
    path_length: int,
    bandwidth_bits: int = 64,
) -> PathNetworkProtocol:
    """A concrete protocol over ``G_d`` computing ``DISJ_k(x, y)``.

    Alice streams ``x`` rightwards in bandwidth-sized chunks (one hop per
    two rounds in the alternating normal form), Bob evaluates and streams
    the one-bit answer back.  The round count is
    ``2 * ceil(k / chunk) + 4 (d + 2)``, i.e. ``Theta(k + d)`` for constant
    bandwidth.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if bandwidth_bits < 48:
        raise ValueError(
            "the bandwidth must be at least 48 bits to fit a framed chunk"
        )
    chunk_bits = max(1, (bandwidth_bits - 32) // 3)
    num_chunks = math.ceil(len(x) / chunk_bits) if x else 0
    rounds = 2 * num_chunks + 4 * (path_length + 2)
    return PathNetworkProtocol(
        path_length=path_length,
        rounds=rounds,
        alice=_StreamingAlice(x, chunk_bits),
        bob=_EvaluatingBob(y, chunk_bits),
        relays=[_StoreAndForwardRelay() for _ in range(path_length)],
        bandwidth_bits=bandwidth_bits,
    )
