"""Workload generators: graph families with controllable size and diameter.

The benchmark harnesses (``benchmarks/``) sweep the number of nodes ``n`` and
the diameter ``D`` independently, because the paper's round complexities
(Table 1) depend on both: the quantum exact algorithm runs in
``O~(sqrt(n * D))`` rounds, the classical baseline in ``O(n)`` rounds, the
quantum 3/2-approximation in ``O~((n * D)**(1/3) + D)`` rounds, and so on.
The families below make it possible to hold one parameter fixed while
sweeping the other.

All generators take a ``seed`` (or none when deterministic) and return a
:class:`repro.graphs.graph.Graph` with integer node labels ``0..n-1``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph


def path_graph(n: int) -> Graph:
    """Path on ``n`` nodes; diameter ``n - 1``."""
    _require_positive(n)
    graph = Graph(nodes=range(n))
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` nodes; diameter ``floor(n / 2)``."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 nodes, got {n}")
    graph = Graph(nodes=range(n))
    graph.add_edges_from((i, (i + 1) % n) for i in range(n))
    return graph


def star_graph(n: int) -> Graph:
    """Star with one hub and ``n - 1`` leaves; diameter 2 (for ``n >= 3``)."""
    _require_positive(n)
    graph = Graph(nodes=range(n))
    graph.add_edges_from((0, i) for i in range(1, n))
    return graph


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes; diameter 1 (for ``n >= 2``)."""
    _require_positive(n)
    graph = Graph(nodes=range(n))
    graph.add_edges_from((i, j) for i in range(n) for j in range(i + 1, n))
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid; diameter ``rows + cols - 2``."""
    _require_positive(rows)
    _require_positive(cols)
    graph = Graph(nodes=range(rows * cols))

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(node(r, c), node(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(node(r, c), node(r + 1, c))
    return graph


def balanced_tree(branching: int, depth: int) -> Graph:
    """Complete ``branching``-ary tree of the given ``depth``.

    Diameter is ``2 * depth`` and the number of nodes is
    ``(branching**(depth+1) - 1) / (branching - 1)`` for ``branching > 1``.
    """
    if branching < 1:
        raise ValueError(f"branching factor must be >= 1, got {branching}")
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    graph = Graph(nodes=[0])
    frontier = [0]
    next_label = 1
    for _ in range(depth):
        new_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_label)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    return graph


def random_connected_gnp(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """Erdos-Renyi ``G(n, p)`` conditioned on connectivity.

    Connectivity is guaranteed by first laying down a uniformly random
    spanning tree (random-permutation attachment) and then adding each of the
    remaining pairs independently with probability ``p``.  The resulting
    distribution is not exactly ``G(n, p) | connected`` but is a standard,
    well-behaved stand-in with the same density regime; it is used purely as
    a benchmark workload.
    """
    _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    graph = Graph(nodes=range(n))
    for index in range(1, n):
        attach_to = order[rng.randrange(index)]
        graph.add_edge(order[index], attach_to)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def clique_chain(num_cliques: int, clique_size: int) -> Graph:
    """A chain of cliques: ``num_cliques`` cliques of ``clique_size`` nodes.

    Consecutive cliques are joined by a single bridge edge.  This family has
    ``n = num_cliques * clique_size`` nodes and diameter
    ``2 * num_cliques - 1`` (for ``clique_size >= 2``), which makes it ideal
    for sweeping ``n`` while keeping ``D`` proportional to a chosen value --
    exactly the regime where the quantum algorithm's ``sqrt(n * D)`` round
    count separates from the classical ``n``.
    """
    _require_positive(num_cliques)
    _require_positive(clique_size)
    graph = Graph(nodes=range(num_cliques * clique_size))
    for block in range(num_cliques):
        base = block * clique_size
        members = range(base, base + clique_size)
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j)
        if block + 1 < num_cliques:
            graph.add_edge(base + clique_size - 1, base + clique_size)
    return graph


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """A clique of ``clique_size`` nodes with a path of ``path_length`` nodes
    attached; diameter ``path_length + 1``.
    """
    _require_positive(clique_size)
    if path_length < 0:
        raise ValueError(f"path_length must be >= 0, got {path_length}")
    graph = complete_graph(clique_size)
    previous = 0
    for i in range(path_length):
        new_node = clique_size + i
        graph.add_edge(previous, new_node)
        previous = new_node
    return graph


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two cliques of ``clique_size`` nodes joined by a path of
    ``path_length`` intermediate nodes; diameter ``path_length + 3`` for
    ``clique_size >= 2``.
    """
    _require_positive(clique_size)
    if path_length < 0:
        raise ValueError(f"path_length must be >= 0, got {path_length}")
    graph = complete_graph(clique_size)
    offset = clique_size + path_length
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            graph.add_edge(offset + i, offset + j)
    previous = 0
    for i in range(path_length):
        new_node = clique_size + i
        graph.add_edge(previous, new_node)
        previous = new_node
    graph.add_edge(previous, offset)
    return graph


def diameter_controlled_graph(
    n: int, target_diameter: int, seed: Optional[int] = None
) -> Graph:
    """A connected graph on ``n`` nodes with diameter exactly
    ``target_diameter`` (when feasible).

    Construction: a backbone path of ``target_diameter + 1`` nodes fixes a
    lower bound on the diameter; the remaining nodes are attached to backbone
    node 0 (forming a dense cluster around it) so that no eccentricity
    exceeds the backbone's.  Extra random chords are added inside the cluster
    to keep it from being a trivial star.

    Raises ``ValueError`` when ``target_diameter`` is infeasible for ``n``
    (needs ``2 <= target_diameter + 1 <= n``, or ``n == 1`` and diameter 0).
    """
    _require_positive(n)
    if n == 1:
        if target_diameter != 0:
            raise ValueError("a single-node graph has diameter 0")
        return Graph(nodes=[0])
    if target_diameter < 1 or target_diameter + 1 > n:
        raise ValueError(
            f"cannot build an n={n} graph with diameter {target_diameter}"
        )
    if target_diameter == 1:
        return complete_graph(n)
    rng = random.Random(seed)
    graph = path_graph(target_diameter + 1)
    cluster = list(range(target_diameter + 1, n))
    for node in cluster:
        graph.add_node(node)
        graph.add_edge(node, 0)
        # Also connect to backbone node 1 (if any) so cluster nodes do not
        # increase eccentricities beyond the backbone endpoints.
        if target_diameter >= 1:
            graph.add_edge(node, 1)
    for _ in range(len(cluster)):
        if len(cluster) >= 2:
            u, v = rng.sample(cluster, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


def ring_of_cliques(
    num_cliques: int, clique_size: int, bridges: int = 1
) -> Graph:
    """``num_cliques`` cliques arranged in a ring, with ``bridges`` parallel
    bridge edges between consecutive cliques.

    Diameter behaviour: the ring closes the chain, so the farthest cliques
    are ``floor(num_cliques / 2)`` blocks apart and each block crossing
    costs one bridge hop plus at most one intra-clique hop.  With a single
    bridge the diameter is exactly ``2 * floor(num_cliques / 2) + 1`` for
    ``clique_size >= 4`` (equal to ``num_cliques`` when it is odd); a
    second bridge gives even rings a parallel route and shortens them to
    exactly ``num_cliques``.  Either way the diameter is
    ``Theta(num_cliques)`` -- about *half* the ``2 * num_cliques - 1`` of
    :func:`clique_chain` at the same block count.  Bridges beyond the
    second never change the diameter; they widen the inter-block cut,
    which lowers the congestion that bandwidth-limited algorithms pay per
    block crossing -- useful for sweeping bandwidth sensitivity at a
    fixed ``(n, D)``.

    Needs ``num_cliques >= 3`` (a ring) and
    ``1 <= bridges <= clique_size // 2`` so that every bridge uses distinct
    endpoints on both sides.
    """
    if num_cliques < 3:
        raise ValueError(f"a ring needs at least 3 cliques, got {num_cliques}")
    _require_positive(clique_size)
    if not 1 <= bridges <= max(1, clique_size // 2):
        raise ValueError(
            f"bridges must lie in [1, clique_size // 2] = "
            f"[1, {max(1, clique_size // 2)}], got {bridges}"
        )
    graph = Graph(nodes=range(num_cliques * clique_size))
    for block in range(num_cliques):
        base = block * clique_size
        members = range(base, base + clique_size)
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j)
        next_base = ((block + 1) % num_cliques) * clique_size
        # Left endpoints come from the top of this block, right endpoints
        # from the bottom of the next, so all bridges are node-disjoint.
        for bridge in range(bridges):
            graph.add_edge(base + clique_size - 1 - bridge, next_base + bridge)
    return graph


def random_regular_graph(n: int, degree: int, seed: Optional[int] = None) -> Graph:
    """A uniformly sampled connected ``degree``-regular graph on ``n`` nodes.

    Uses the configuration (pairing) model with rejection: each node gets
    ``degree`` stubs, a random perfect matching of the stubs proposes the
    edge set, and the sample is retried until it is simple (no self-loops
    or parallel edges) and connected.  For ``degree >= 3`` random regular
    graphs are expanders with high probability, so the diameter is
    ``Theta(log n / log (degree - 1))`` -- the low-diameter, constant-degree
    regime that complements the polynomial-diameter families above.

    ``n * degree`` must be even and ``degree < n``.
    """
    _require_positive(n)
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if degree >= n:
        raise ValueError(f"degree {degree} needs more than {n} nodes")
    if (n * degree) % 2 != 0:
        raise ValueError(f"n * degree must be even, got {n} * {degree}")
    rng = random.Random(seed)
    stubs = [node for node in range(n) for _ in range(degree)]
    # Rejection sampling terminates fast for the sparse degrees the sweep
    # families use (the simplicity probability tends to a positive constant
    # as n grows); the attempt cap turns pathological parameters into a
    # clear error instead of a hang.
    for _ in range(1000):
        rng.shuffle(stubs)
        edges = set()
        simple = True
        for index in range(0, len(stubs), 2):
            u, v = stubs[index], stubs[index + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                simple = False
                break
            edges.add((min(u, v), max(u, v)))
        if not simple:
            continue
        graph = Graph(nodes=range(n))
        graph.add_edges_from(edges)
        if graph.is_connected():
            return graph
    raise RuntimeError(
        f"could not sample a simple connected {degree}-regular graph "
        f"on {n} nodes after 1000 attempts"
    )


def preferential_attachment(
    n: int, attach: int = 2, seed: Optional[int] = None
) -> Graph:
    """Barabasi-Albert preferential attachment: power-law degree workload.

    Starts from a clique on ``attach + 1`` nodes; every new node connects
    to ``attach`` distinct existing nodes chosen proportionally to their
    current degree (via the repeated-endpoint trick).  Connected by
    construction, heavy-tailed degrees (a few hubs, many leaves), and
    diameter ``Theta(log n / log log n)`` with high probability for
    ``attach >= 2`` -- the small-world regime where ``D`` barely moves as
    ``n`` is swept.

    Needs ``n >= attach + 1`` and ``attach >= 1``.
    """
    if attach < 1:
        raise ValueError(f"attach must be >= 1, got {attach}")
    if n < attach + 1:
        raise ValueError(
            f"preferential attachment needs n >= attach + 1 = {attach + 1}, got {n}"
        )
    rng = random.Random(seed)
    graph = complete_graph(attach + 1)
    # One entry per edge endpoint: sampling uniformly from this list is
    # sampling nodes proportionally to degree.
    endpoints: List[int] = [
        node for edge in graph.edges() for node in edge
    ]
    for node in range(attach + 1, n):
        targets: Set[int] = set()
        while len(targets) < attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        graph.add_node(node)
        for target in targets:
            graph.add_edge(node, target)
            endpoints.append(node)
            endpoints.append(target)
    return graph


def random_tree(n: int, seed: Optional[int] = None) -> Graph:
    """Uniform-attachment random tree on ``n`` nodes."""
    _require_positive(n)
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    for node in range(1, n):
        graph.add_edge(node, rng.randrange(node))
    return graph


def family_for_sweep(
    kind: str, n: int, seed: Optional[int] = None
) -> Graph:
    """Dispatch helper used by the benchmark harnesses.

    ``kind`` is one of :data:`SWEEP_FAMILIES`: ``"path"``, ``"cycle"``,
    ``"star"``, ``"clique_chain"``, ``"ring_of_cliques"``, ``"lollipop"``,
    ``"random_sparse"``, ``"random_dense"``, ``"random_regular"``,
    ``"preferential"``, ``"tree"``.
    """
    if kind == "path":
        return path_graph(n)
    if kind == "cycle":
        return cycle_graph(n)
    if kind == "star":
        return star_graph(n)
    if kind == "clique_chain":
        clique_size = max(2, int(round(n ** 0.5)))
        num_cliques = max(1, n // clique_size)
        return clique_chain(num_cliques, clique_size)
    if kind == "lollipop":
        clique_size = max(2, n // 2)
        return lollipop_graph(clique_size, n - clique_size)
    if kind == "ring_of_cliques":
        clique_size = max(4, int(round(n ** 0.5)))
        num_cliques = max(3, n // clique_size)
        return ring_of_cliques(num_cliques, clique_size, bridges=2)
    if kind == "random_sparse":
        return random_connected_gnp(n, p=2.0 / max(n, 2), seed=seed)
    if kind == "random_dense":
        return random_connected_gnp(n, p=0.3, seed=seed)
    if kind == "random_regular":
        # Degree 4 for every size: n * degree stays even regardless of the
        # parity of n, so one sweep never mixes degree regimes.
        return random_regular_graph(n, degree=4, seed=seed)
    if kind == "preferential":
        return preferential_attachment(n, attach=2, seed=seed)
    if kind == "tree":
        return random_tree(n, seed=seed)
    raise ValueError(f"unknown graph family {kind!r}")


SWEEP_FAMILIES: Tuple[str, ...] = (
    "path",
    "cycle",
    "star",
    "clique_chain",
    "ring_of_cliques",
    "lollipop",
    "random_sparse",
    "random_dense",
    "random_regular",
    "preferential",
    "tree",
)


def _require_positive(value: int) -> None:
    if value < 1:
        raise ValueError(f"expected a positive integer, got {value}")
