"""Vectorized (numpy-tier) graph kernels over the CSR arrays.

This module is the ``numpy`` compute tier's implementation of the
all-pairs BFS oracles (:mod:`repro.tier`): batched multi-source BFS and
all-eccentricities kernels that operate directly on the ``offsets`` /
``targets`` CSR arrays of :class:`repro.graphs.indexed.IndexedGraph`,
64 sources at a time, with one uint64 *reach word* per node -- bit ``j``
of ``reach[v]`` means "``v`` has been reached from source ``j`` of the
current block".  One BFS level over all 64 sources costs either a single
edge gather plus ``bitwise_or.reduceat`` over the whole target array
(wide frontiers) or a sorted scatter of only the *changed* reach words
along the frontier's out-edges (narrow frontiers), amortising the
per-edge Python interpreter cost the stdlib kernels pay.

Why not a straight translation of ``_all_ecc_bitparallel``?  CPython
big-int ``|=`` already runs near memory bandwidth, so a numpy rewrite of
the same n-wide bitset algorithm is *slower* (the gather materialises an
``m x n/64``-word intermediate per level).  The vector tier instead runs
**batched Takes-Kosters**: exact 64-source BFS blocks (cheap in numpy)
drive the classical eccentricity bound updates
``max(d, ecc_u - d) <= ecc_v <= ecc_u + d`` for *all* nodes at once, so
structured moderate-diameter graphs -- exactly the regime where the
big-int bitset degrades (its cost is linear in the diameter) -- resolve
in a handful of blocks.  Block sources are diversified by their distance
to every previously swept source, which keeps a batch of 64 stale-bound
picks from clustering in one region of the graph.

Like the stdlib ``_all_ecc_pruned``, the batched pruning loop watches
its own convergence: every block resolves its 64 sources exactly, so
termination is guaranteed, but when the *bound* updates stop resolving
bystander nodes (tie-heavy topologies such as rings of cliques) the
kernel bails out to a caller-supplied fallback -- the dispatching oracle
passes the stdlib strategy it would otherwise have run -- rather than
degenerate into a brute-force block sweep.

All kernels are exact and raise
:class:`repro.graphs.graph.GraphError` on disconnected inputs, so the
dispatching oracle (:meth:`IndexedGraph._eccentricities_indexed`)
returns byte-identical values, dict orders and exceptions on every tier;
``tests/test_vector_tier.py`` proves this differentially across the
generator families.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro._numpy import require_numpy
from repro.graphs.graph import GraphError

#: Sources per multi-source BFS block: one bit of a uint64 reach word each.
BLOCK_SOURCES = 64

#: Below this double-sweep diameter bound the stdlib big-int bitset is
#: already near memory bandwidth (its cost is ``O(D * m * n/64)`` word
#: ops and tiny diameters mean few levels), so the tier dispatcher keeps
#: it; from this bound upward the batched Takes-Kosters kernel wins.
VECTOR_MIN_BOUND = 48

#: After this many post-landmark blocks the pruning loop checks its
#: resolution rate (like ``IndexedGraph._PRUNE_PATIENCE``): if bound
#: updates are resolving fewer than :data:`PRUNE_MIN_RESOLVED_PER_BLOCK`
#: bystanders per block on average, the bounds are not converging and
#: the kernel invokes its fallback.
PRUNE_PATIENCE_BLOCKS = 2
PRUNE_MIN_RESOLVED_PER_BLOCK = 3 * BLOCK_SOURCES

_DISCONNECTED = "eccentricity is undefined on a disconnected graph"


def _csr_arrays(indexed, np):
    """Zero-copy int64 views of the CSR ``offsets`` / ``targets`` arrays."""
    offsets = np.frombuffer(indexed.offsets, dtype=np.int64)
    targets = np.frombuffer(indexed.targets, dtype=np.int64)
    return offsets, targets


def msbfs_levels(indexed, sources: Sequence[int], np=None):
    """Batched multi-source BFS levels from up to 64 distinct sources.

    Returns an ``(len(sources), n)`` int64 matrix of BFS distances
    (``-1`` for unreached nodes).  Row ``j`` is exactly the distance
    vector a stdlib BFS from ``sources[j]`` would produce; the batching
    is a pure execution strategy.

    ``sources`` are node *indices* (``0..n-1``), must be distinct, and
    at most :data:`BLOCK_SOURCES` of them fit one block (one uint64 bit
    each).

    Each level is advanced one of two ways, picked by frontier width:

    * **full pass** -- gather every edge's reach word and
      ``bitwise_or.reduceat`` per CSR row (bandwidth-bound, best when
      most nodes changed last level);
    * **delta scatter** -- expand only the frontier's out-edges, sort by
      head node and ``reduceat`` the segments (best when few nodes
      changed; the total scatter work over a whole run is proportional
      to the number of (node, reach-change) events, not ``D * m``).

    Both compute the same fixpoint step, so the switch is invisible.
    """
    if np is None:
        np = require_numpy("the batched multi-source BFS kernel")
    n = len(indexed.labels)
    src = np.asarray(sources, dtype=np.int64)
    count = int(src.size)
    if count == 0:
        return np.empty((0, n), dtype=np.int64)
    if count > BLOCK_SOURCES:
        raise ValueError(
            f"at most {BLOCK_SOURCES} sources per block, got {count}"
        )
    if int(np.unique(src).size) != count:
        raise ValueError("multi-source BFS sources must be distinct")
    if int(src.min()) < 0 or int(src.max()) >= n:
        raise IndexError("source index out of range")

    offsets, targets = _csr_arrays(indexed, np)
    starts = offsets[:-1]
    degrees = np.frombuffer(indexed.degrees, dtype=np.int64)
    # ``reduceat`` guards for the full pass: an empty row would otherwise
    # reduce a stray single element, and the clamp keeps every index in
    # bounds when trailing rows are empty.
    empty_rows = np.nonzero(degrees == 0)[0]
    safe_starts = np.minimum(starts, max(int(targets.size) - 1, 0))
    num_edges = int(targets.size)

    reach = np.zeros(n, dtype=np.uint64)
    bits = np.uint64(1) << np.arange(count, dtype=np.uint64)
    reach[src] = bits  # distinct sources: plain fancy assignment is safe
    dist = np.full((count, n), -1, dtype=np.int64)
    dist[np.arange(count), src] = 0

    frontier = src
    frontier_words = bits
    level = 0
    while num_edges and frontier.size:
        level += 1
        if level > n:  # pragma: no cover - the frontier always empties
            break
        frontier_edges = int(degrees[frontier].sum())
        if 4 * frontier_edges >= num_edges:
            # Wide frontier: one bandwidth-bound pass over every edge.
            acc = np.bitwise_or.reduceat(reach[targets], safe_starts)
            if empty_rows.size:
                acc[empty_rows] = 0
            new = reach | acc
            delta = new ^ reach
            frontier = np.nonzero(delta)[0]
            frontier_words = delta[frontier]
            reach = new
        else:
            # Narrow frontier: push only the changed words along the
            # frontier's out-edges, then OR per head node via a sorted
            # segmented reduction.
            row_starts = starts[frontier]
            cum = np.cumsum(degrees[frontier])
            positions = np.arange(frontier_edges) + np.repeat(
                row_starts - (cum - degrees[frontier]), degrees[frontier]
            )
            heads = targets[positions]
            words = np.repeat(frontier_words, degrees[frontier])
            order = np.argsort(heads)
            heads = heads[order]
            words = words[order]
            seg = np.concatenate(
                ([0], np.nonzero(np.diff(heads))[0] + 1)
            )
            unique_heads = heads[seg]
            old_words = reach[unique_heads]
            merged = old_words | np.bitwise_or.reduceat(words, seg)
            changed = merged != old_words
            frontier = unique_heads[changed]
            frontier_words = merged[changed] ^ old_words[changed]
            reach[frontier] = merged[changed]
        if not frontier.size:
            break
        # Expand the newly-set bits into (source, node) level stamps.
        # ``astype('<u8')`` pins little-endian byte order so the uint8
        # view enumerates bits 0..63 regardless of platform.
        bitmat = np.unpackbits(
            frontier_words.astype("<u8").view(np.uint8).reshape(
                frontier.size, 8
            ),
            axis=1,
            bitorder="little",
        )
        rows, cols = np.nonzero(bitmat[:, :count])
        dist[cols, frontier[rows]] = level
    return dist


def _pick_block(np, candidates, lower, upper, mindist, degrees):
    """Select the next BFS block: half max-upper, half min-lower sources.

    The classical Takes-Kosters alternation, batched: sources with the
    largest upper bounds pin down the diameter-side eccentricities,
    sources with the smallest lower bounds the radius side; running 32
    of each per block tightens both ends of every node's interval at
    once.  Because all 64 picks share the *same* stale bounds, ties are
    broken by distance to every previously swept source (``mindist``,
    descending) and then degree -- without that, tie-heavy graphs make a
    batch cluster in one region and the 64 BFS trees carry redundant
    information.  The choice only affects speed, never values: every
    strategy here is exact.
    """
    if candidates.size <= BLOCK_SOURCES:
        return candidates
    half = BLOCK_SOURCES // 2
    upper_rank = np.lexsort(
        (candidates, -degrees[candidates], -mindist[candidates],
         -upper[candidates])
    )
    by_upper = candidates[upper_rank[:half]]
    rest = np.setdiff1d(candidates, by_upper, assume_unique=True)
    lower_rank = np.lexsort(
        (rest, -degrees[rest], -mindist[rest], lower[rest])
    )
    by_lower = rest[lower_rank[: BLOCK_SOURCES - half]]
    return np.concatenate([by_upper, by_lower])


def all_eccentricities_vector(
    indexed,
    np=None,
    fallback: Optional[Callable[[], List[int]]] = None,
) -> List[int]:
    """Exact all-eccentricities via batched Takes-Kosters (numpy tier).

    Returns the index-ordered eccentricity list -- plain Python ints,
    value-identical to ``_all_ecc_plain`` / ``_all_ecc_bitparallel`` /
    ``_all_ecc_pruned`` -- and raises
    :class:`~repro.graphs.graph.GraphError` on disconnected graphs.

    ``fallback`` is invoked (and its result returned verbatim) when the
    bound updates stop resolving nodes; the tier dispatcher passes the
    stdlib strategy it would otherwise have run.  Without a fallback the
    block loop simply runs to completion -- every block resolves its own
    sources, so the worst case is a brute-force 64-wide BFS sweep.
    """
    if np is None:
        np = require_numpy("the vectorized all-eccentricities kernel")
    n = len(indexed.labels)
    if n == 0:
        return []
    degrees = np.frombuffer(indexed.degrees, dtype=np.int64)
    eccs = np.full(n, -1, dtype=np.int64)
    lower = np.zeros(n, dtype=np.int64)
    upper = np.full(n, n, dtype=np.int64)
    mindist = np.full(n, n, dtype=np.int64)
    blocks_done = 0
    while True:
        candidates = np.nonzero(eccs < 0)[0]
        if not candidates.size:
            break
        if blocks_done == 0:
            # Landmark block: sources spread evenly across the index
            # range seed the bounds with globally-distributed BFS trees
            # (indices correlate with generator geometry for the sweep
            # families, e.g. chain position in clique chains).
            k = min(BLOCK_SOURCES, int(candidates.size))
            picks = np.unique(
                np.linspace(0, candidates.size - 1, num=k).astype(np.int64)
            )
            block = candidates[picks]
        else:
            block = _pick_block(np, candidates, lower, upper, mindist, degrees)
        dist = msbfs_levels(indexed, block, np)
        if bool((dist < 0).any()):
            raise GraphError(_DISCONNECTED)
        block_ecc = dist.max(axis=1)
        eccs[block] = block_ecc
        # Vectorized Takes-Kosters interval updates from all block
        # sources at once: for source u at distance d,
        # max(d, ecc_u - d) <= ecc_v <= ecc_u + d.
        lower = np.maximum(
            lower, np.maximum(dist, block_ecc[:, None] - dist).max(axis=0)
        )
        upper = np.minimum(upper, (block_ecc[:, None] + dist).min(axis=0))
        mindist = np.minimum(mindist, dist.min(axis=0))
        met = (eccs < 0) & (lower == upper)
        eccs[met] = lower[met]
        blocks_done += 1
        if fallback is not None and blocks_done >= PRUNE_PATIENCE_BLOCKS:
            swept = blocks_done * BLOCK_SOURCES
            resolved = n - int((eccs < 0).sum())
            if resolved - swept < PRUNE_MIN_RESOLVED_PER_BLOCK * blocks_done:
                # Bounds are not converging (e.g. tie-heavy rings of
                # cliques): hand the whole problem to the stdlib
                # strategy rather than brute-force n/64 blocks.
                return fallback()
    return eccs.tolist()


def bfs_levels_single(indexed, source: int, np=None):
    """Distance vector from one source (``-1`` unreached), as int64 array.

    A convenience wrapper over :func:`msbfs_levels` used by tests and
    ad-hoc tooling; the production oracles batch their sources.
    """
    return msbfs_levels(indexed, [source], np)[0]
