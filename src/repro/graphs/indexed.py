"""Frozen, integer-indexed CSR view of a :class:`~repro.graphs.graph.Graph`.

:class:`IndexedGraph` is the hot-path representation of a topology: node
labels are mapped to dense integers ``0..n-1`` (in insertion order) and the
neighbourhoods are stored in compressed sparse rows -- one ``offsets``
array of length ``n + 1`` and one ``targets`` array of length ``2m``, both
stdlib :mod:`array` instances, plus a ``degrees`` array.  The BFS-based
oracles below run on plain integer lists instead of label-keyed dicts and
hash probes, which makes the all-pairs oracles (``all_eccentricities``,
``diameter``, ``radius``) several times faster than the adjacency-map
reference implementations while returning **identical** values in
identical iteration order (CSR rows preserve the adjacency insertion
order, so BFS discovery order is unchanged; see the differential tests in
``tests/test_indexed_graph.py``).

Views are *frozen*: they describe the graph at the moment
:meth:`repro.graphs.graph.Graph.compile` was called, recorded in
:attr:`IndexedGraph.version`.  ``compile()`` re-checks that version, so
mutating the source graph transparently yields a fresh view on the next
call -- holders of an old view keep a consistent (if outdated) snapshot.

Derived bindings (per-node neighbour tuples for algorithm factories,
per-node neighbour frozensets for the transport's CONGEST check) are built
lazily and cached on the view, so rebinding an unchanged topology across
engine runs is free.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph, GraphError, NodeId


class IndexedGraph:
    """Immutable CSR snapshot of a graph, with fast integer-index oracles.

    Build via :meth:`repro.graphs.graph.Graph.compile`, which caches the
    view and invalidates it on mutation; direct construction via
    :meth:`from_graph` bypasses that cache.

    Attributes
    ----------
    labels:
        Tuple mapping index -> original node label (insertion order).
    index_of:
        Dict mapping label -> index (inverse of ``labels``).
    offsets / targets:
        CSR arrays: the neighbours of index ``i`` are
        ``targets[offsets[i]:offsets[i + 1]]``, in edge insertion order.
    degrees:
        ``degrees[i] == offsets[i + 1] - offsets[i]``.
    version:
        The source graph's mutation counter at compile time.
    """

    __slots__ = (
        "labels",
        "index_of",
        "offsets",
        "targets",
        "degrees",
        "version",
        "_slices",
        "_label_neighbors",
        "_neighbor_sets",
        "_ecc_cache",
    )

    def __init__(
        self,
        labels: Tuple[NodeId, ...],
        index_of: Dict[NodeId, int],
        offsets: array,
        targets: array,
        degrees: array,
        version: int,
    ) -> None:
        self.labels = labels
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.degrees = degrees
        self.version = version
        # Lazy derived bindings (see module docstring).
        self._slices: Optional[List[Tuple[int, ...]]] = None
        self._label_neighbors: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = None
        self._neighbor_sets: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None
        #: Index-ordered eccentricity list, filled by all_eccentricities().
        #: Safe to cache because the view is frozen.
        self._ecc_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "IndexedGraph":
        """Compile ``graph`` into a fresh CSR view (no caching)."""
        adjacency = graph.adjacency()
        labels = tuple(adjacency)
        index_of = {label: index for index, label in enumerate(labels)}
        n = len(labels)
        offsets = array("q", bytes(8 * (n + 1)))
        degrees = array("q", bytes(8 * n))
        total = 0
        for index, neighbours in enumerate(adjacency.values()):
            degree = len(neighbours)
            degrees[index] = degree
            total += degree
            offsets[index + 1] = total
        targets = array("q", bytes(8 * total))
        cursor = 0
        for neighbours in adjacency.values():
            for neighbour in neighbours:
                targets[cursor] = index_of[neighbour]
                cursor += 1
        return cls(labels, index_of, offsets, targets, degrees, graph.version)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.targets) // 2

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: NodeId) -> bool:
        return label in self.index_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"version={self.version})"
        )

    def degree(self, label: NodeId) -> int:
        """Degree of the node with this ``label``."""
        return self.degrees[self.index_of[label]]

    # ------------------------------------------------------------------
    # Prebound neighbour views
    # ------------------------------------------------------------------
    def neighbor_slices(self) -> List[Tuple[int, ...]]:
        """Per-index neighbour tuples (CSR row slices), cached.

        ``neighbor_slices()[i]`` is the tuple of neighbour *indices* of
        index ``i``.  This is the innermost data structure of every oracle
        below: tuple iteration over pre-boxed ints beats re-slicing the
        ``targets`` array on each BFS visit.
        """
        slices = self._slices
        if slices is None:
            targets = self.targets.tolist()
            offsets = self.offsets
            slices = [
                tuple(targets[offsets[i] : offsets[i + 1]])
                for i in range(len(self.labels))
            ]
            self._slices = slices
        return slices

    def neighbors(self, label: NodeId) -> Tuple[NodeId, ...]:
        """Neighbour *labels* of ``label`` as a cached tuple (no copy).

        The engine's algorithm factories use this instead of
        :meth:`Graph.neighbors`, which builds a fresh list per call.
        """
        table = self._label_neighbors
        if table is None:
            labels = self.labels
            table = {
                label: tuple(labels[j] for j in row)
                for label, row in zip(labels, self.neighbor_slices())
            }
            self._label_neighbors = table
        return table[label]

    def neighbor_sets(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """Per-label neighbour frozensets, cached.

        The transport binds this once per topology for its CONGEST
        neighbour check (one frozenset membership test per message).
        """
        sets = self._neighbor_sets
        if sets is None:
            labels = self.labels
            sets = {
                label: frozenset(labels[j] for j in row)
                for label, row in zip(labels, self.neighbor_slices())
            }
            self._neighbor_sets = sets
        return sets

    # ------------------------------------------------------------------
    # Index-level BFS primitives
    # ------------------------------------------------------------------
    def _eccentricity_indexed(
        self,
        source: int,
        seen: List[int],
        stamp: int,
        neighbors: List[Tuple[int, ...]],
    ) -> Tuple[int, int]:
        """``(eccentricity, reached)`` from ``source``.

        ``seen`` is a reusable stamp array: ``seen[v] == stamp`` marks ``v``
        visited in *this* BFS, so no O(n) reset is needed between the n
        source sweeps of ``all_eccentricities`` (stamps are unique per
        source).
        """
        seen[source] = stamp
        frontier = [source]
        ecc = 0
        reached = 1
        while frontier:
            nxt: List[int] = []
            append = nxt.append
            for u in frontier:
                for v in neighbors[u]:
                    if seen[v] != stamp:
                        seen[v] = stamp
                        append(v)
            if not nxt:
                break
            ecc += 1
            reached += len(nxt)
            frontier = nxt
        return ecc, reached

    # ------------------------------------------------------------------
    # Distance oracles (CSR fast paths; values identical to Graph's)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: NodeId) -> Dict[NodeId, int]:
        """Label-keyed BFS distances, identical (incl. dict order) to
        :meth:`Graph.bfs_distances`.

        Unreachable nodes are absent from the result (same sentinel
        contract as the reference oracle).
        """
        index = self.index_of.get(source)
        if index is None:
            raise KeyError(f"node {source!r} not in graph")
        labels = self.labels
        neighbors = self.neighbor_slices()
        dist_by_label: Dict[NodeId, int] = {source: 0}
        dist = [-1] * len(labels)
        dist[index] = 0
        frontier = [index]
        depth = 0
        while frontier:
            depth += 1
            nxt: List[int] = []
            append = nxt.append
            for u in frontier:
                for v in neighbors[u]:
                    if dist[v] < 0:
                        dist[v] = depth
                        dist_by_label[labels[v]] = depth
                        append(v)
            frontier = nxt
        return dist_by_label

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Exact distance between ``u`` and ``v``.

        Raises :class:`~repro.graphs.graph.GraphError` if unreachable.
        """
        dist = self.bfs_distances(u)
        if v not in dist:
            raise GraphError(f"node {v!r} is not reachable from {u!r}")
        return dist[v]

    def eccentricity(self, node: NodeId) -> int:
        """Eccentricity of ``node``; :class:`~repro.graphs.graph.GraphError`
        on a disconnected graph."""
        index = self.index_of.get(node)
        if index is None:
            raise KeyError(f"node {node!r} not in graph")
        seen = [-1] * len(self.labels)
        ecc, reached = self._eccentricity_indexed(
            index, seen, 0, self.neighbor_slices()
        )
        if reached != len(self.labels):
            raise GraphError(
                "eccentricity is undefined on a disconnected graph"
            )
        return ecc

    # -- all-pairs eccentricity engine ---------------------------------
    #
    # Three exact strategies, dispatched on a double-sweep diameter
    # estimate (every strategy returns byte-identical values; the
    # differential tests in tests/test_indexed_graph.py exercise all
    # three through the public oracle):
    #
    # * ``_all_ecc_plain``   -- one stamped BFS per node.  Baseline and
    #   bailout target; already ~2-3x the adjacency-map oracle.
    # * ``_all_ecc_bitparallel`` -- level-synchronous BFS from *all*
    #   sources at once over big-int bitsets: ``reach[v]`` is the bitset
    #   of nodes within distance ``t`` of ``v``; one level costs one
    #   ``|=`` per directed edge on n-bit ints (n/64 machine words), so
    #   the whole oracle is O(D * m * n/64) word-ops.  Dominant on
    #   small-diameter graphs (the 100x+ regime of BENCH_graphcore).
    # * ``_all_ecc_pruned``  -- Takes-Kosters bound pruning: BFS from an
    #   alternating max-upper-bound / min-lower-bound candidate, tighten
    #   ``max(d, ecc_u - d) <= ecc_v <= ecc_u + d`` for every unresolved
    #   node, and stop BFS-ing nodes whose bounds meet.  Excellent on
    #   high-diameter structured graphs (a path resolves in ~4 sweeps);
    #   bails out to the plain loop when bounds stop resolving (e.g. the
    #   even cycle, where every eccentricity ties).
    # ------------------------------------------------------------------

    #: Above this size the bit-parallel bitsets (n^2 bits) are no longer
    #: comfortably cache/memory-resident; larger graphs use pruning.
    _BITPARALLEL_MAX_NODES = 32768

    def _double_sweep(self) -> int:
        """A diameter lower bound from two stamped BFS sweeps.

        BFS from the maximum-degree node, then BFS from the farthest node
        found; the second eccentricity is the classical double-sweep
        bound.  Deterministic: ties break on the lowest index.
        """
        n = len(self.labels)
        neighbors = self.neighbor_slices()
        seen = [-1] * n
        degrees = self.degrees
        start = max(range(n), key=lambda i: (degrees[i], -i))
        _, reached, far = self._bfs_far(start, seen, 0, neighbors)
        if reached != n:
            raise GraphError(
                "eccentricity is undefined on a disconnected graph"
            )
        ecc_far, _, _ = self._bfs_far(far, seen, 1, neighbors)
        return ecc_far

    def _bfs_far(
        self,
        source: int,
        seen: List[int],
        stamp: int,
        neighbors: List[Tuple[int, ...]],
    ) -> Tuple[int, int, int]:
        """``(eccentricity, reached, farthest_node)`` from ``source``."""
        seen[source] = stamp
        frontier = [source]
        ecc = 0
        reached = 1
        far = source
        while frontier:
            nxt: List[int] = []
            append = nxt.append
            for u in frontier:
                for v in neighbors[u]:
                    if seen[v] != stamp:
                        seen[v] = stamp
                        append(v)
            if not nxt:
                break
            ecc += 1
            reached += len(nxt)
            far = nxt[0]
            frontier = nxt
        return ecc, reached, far

    def _all_ecc_plain(self) -> List[int]:
        n = len(self.labels)
        neighbors = self.neighbor_slices()
        seen = [-1] * n
        ecc_of = self._eccentricity_indexed
        result = [0] * n
        for index in range(n):
            ecc, reached = ecc_of(index, seen, index, neighbors)
            if reached != n:
                raise GraphError(
                    "eccentricity is undefined on a disconnected graph"
                )
            result[index] = ecc
        return result

    def _all_ecc_bitparallel(self) -> List[int]:
        n = len(self.labels)
        neighbors = self.neighbor_slices()
        full = (1 << n) - 1
        reach = [1 << i for i in range(n)]
        ecc = [0] * n
        active = [i for i in range(n) if reach[i] != full]
        level = 0
        while active:
            level += 1
            if level > n:  # pragma: no cover - connectivity is pre-checked
                raise GraphError(
                    "eccentricity is undefined on a disconnected graph"
                )
            prev = reach[:]
            still: List[int] = []
            append = still.append
            for v in active:
                acc = prev[v]
                for u in neighbors[v]:
                    acc |= prev[u]
                if acc == full:
                    ecc[v] = level
                    reach[v] = full
                else:
                    reach[v] = acc
                    append(v)
            active = still
        return ecc

    #: Pruning gives up when, after this many sweeps, fewer than
    #: ``_PRUNE_MIN_RATE`` nodes per sweep have been resolved.
    _PRUNE_PATIENCE = 32
    _PRUNE_MIN_RATE = 2

    def _all_ecc_pruned(self) -> List[int]:
        labels = self.labels
        n = len(labels)
        neighbors = self.neighbor_slices()
        degrees = self.degrees
        ecc = [-1] * n
        lower = [0] * n
        upper = [n] * n
        seen = [-1] * n
        dist = [0] * n
        candidates = list(range(n))
        pick_max_upper = True
        sweeps = 0
        resolved = 0
        while candidates:
            if (
                sweeps >= self._PRUNE_PATIENCE
                and resolved < self._PRUNE_MIN_RATE * sweeps
            ):
                # Bounds are not converging (e.g. an even cycle, where
                # every eccentricity ties): finish with plain BFS.
                ecc_of = self._eccentricity_indexed
                for v in candidates:
                    sweeps += 1
                    value, reached = ecc_of(v, seen, sweeps, neighbors)
                    if reached != n:
                        raise GraphError(
                            "eccentricity is undefined on a disconnected graph"
                        )
                    ecc[v] = value
                break
            if pick_max_upper:
                u = max(candidates, key=lambda v: (upper[v], degrees[v], -v))
            else:
                u = min(candidates, key=lambda v: (lower[v], -degrees[v], v))
            pick_max_upper = not pick_max_upper
            stamp = sweeps
            sweeps += 1
            # BFS from u, recording distances for the bound update.
            seen[u] = stamp
            dist[u] = 0
            frontier = [u]
            depth = 0
            reached = 1
            while frontier:
                depth += 1
                nxt: List[int] = []
                append = nxt.append
                for x in frontier:
                    for y in neighbors[x]:
                        if seen[y] != stamp:
                            seen[y] = stamp
                            dist[y] = depth
                            append(y)
                if not nxt:
                    depth -= 1
                    break
                reached += len(nxt)
                frontier = nxt
            if reached != n:
                raise GraphError(
                    "eccentricity is undefined on a disconnected graph"
                )
            ecc_u = depth
            ecc[u] = ecc_u
            resolved += 1
            remaining: List[int] = []
            keep = remaining.append
            for v in candidates:
                if v == u:
                    continue
                d = dist[v]
                low = lower[v]
                high = upper[v]
                bound = ecc_u - d
                if d > bound:
                    bound = d
                if bound > low:
                    low = bound
                bound = ecc_u + d
                if bound < high:
                    high = bound
                if low == high:
                    ecc[v] = low
                    resolved += 1
                else:
                    lower[v] = low
                    upper[v] = high
                    keep(v)
            candidates = remaining
        return ecc

    def _eccentricities_indexed(self) -> List[int]:
        """Index-ordered eccentricities, computed once and cached.

        Strategy dispatch is tier-aware: under the ``numpy`` compute
        tier (:mod:`repro.tier`) the moderate-diameter band of the
        bitset regime goes to the batched Takes-Kosters kernel of
        :mod:`repro.graphs.vector` (see :meth:`_all_ecc_vector_dispatch`);
        every strategy is exact, so the tier can never change the
        result -- only how fast it is computed.
        """
        cached = self._ecc_cache
        if cached is not None:
            return cached
        n = len(self.labels)
        if n == 0:
            result: List[int] = []
        elif n <= 64:
            result = self._all_ecc_plain()
        else:
            diameter_bound = self._double_sweep()
            result = None
            from repro.tier import active_numpy

            np = active_numpy()
            if np is not None:
                result = self._all_ecc_vector_dispatch(np, diameter_bound)
            if result is None:
                if (
                    n <= self._BITPARALLEL_MAX_NODES
                    and diameter_bound * 8 <= n
                ):
                    result = self._all_ecc_bitparallel()
                else:
                    result = self._all_ecc_pruned()
        self._ecc_cache = result
        return result

    def _all_ecc_vector_dispatch(
        self, np, diameter_bound: int
    ) -> Optional[List[int]]:
        """numpy-tier strategy selection; ``None`` defers to stdlib.

        The vector kernel (batched 64-source Takes-Kosters over the CSR
        arrays, :mod:`repro.graphs.vector`) takes over exactly where the
        stdlib choices degrade:

        * the *moderate-diameter* band of the bitset regime
          (``VECTOR_MIN_BOUND <= bound`` and ``bound * 8 <= n``), where
          the big-int bitset pays one full edge pass per level and the
          diameter makes that expensive -- the kernel keeps the stdlib
          bitset as its stall fallback, so tie-heavy topologies where
          the batched bounds cannot converge cost at most two probe
          blocks extra;
        * small-diameter graphs *above* ``_BITPARALLEL_MAX_NODES``,
          where the n^2-bit bitset no longer fits and stdlib falls back
          to pruning (which degrades to n BFS sweeps on unstructured
          graphs); brute-force 64-wide BFS blocks are the memory-frugal
          equivalent of the bitset and need no fallback.

        Tiny diameters stay on the big-int bitset (already near memory
        bandwidth) and the high-diameter regime stays on Takes-Kosters
        pruning; the tier only ever changes execution speed.
        """
        from repro.graphs import vector

        n = len(self.labels)
        if diameter_bound * 8 > n:
            return None
        if n > self._BITPARALLEL_MAX_NODES:
            return vector.all_eccentricities_vector(self, np)
        if diameter_bound >= vector.VECTOR_MIN_BOUND:
            return vector.all_eccentricities_vector(
                self, np, fallback=self._all_ecc_bitparallel
            )
        return None

    def all_eccentricities(self) -> Dict[NodeId, int]:
        """Eccentricity of every node (insertion order), CSR fast path.

        Raises :class:`~repro.graphs.graph.GraphError` on a disconnected
        graph.  Values and iteration order are identical to
        :meth:`Graph.all_eccentricities`; this is the headline oracle of
        ``BENCH_graphcore.json``.  The result is computed once per view
        (the view is frozen, so caching is safe) and returned as a fresh
        dict per call.
        """
        eccentricities = self._eccentricities_indexed()
        labels = self.labels
        return {labels[i]: eccentricities[i] for i in range(len(labels))}

    def diameter(self) -> int:
        """Exact diameter; :class:`~repro.graphs.graph.GraphError` on the
        empty graph and on disconnected graphs."""
        if not self.labels:
            raise GraphError("diameter is undefined on the empty graph")
        return max(self._eccentricities_indexed())

    def radius(self) -> int:
        """Exact radius; :class:`~repro.graphs.graph.GraphError` on the
        empty graph and on disconnected graphs."""
        if not self.labels:
            raise GraphError("radius is undefined on the empty graph")
        return min(self._eccentricities_indexed())

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        n = len(self.labels)
        if n == 0:
            return True
        seen = [-1] * n
        _, reached = self._eccentricity_indexed(
            0, seen, 0, self.neighbor_slices()
        )
        return reached == n

    def connected_components(self) -> List[Set[NodeId]]:
        """Connected components (insertion order of their first node)."""
        labels = self.labels
        n = len(labels)
        neighbors = self.neighbor_slices()
        assigned = [False] * n
        components: List[Set[NodeId]] = []
        for source in range(n):
            if assigned[source]:
                continue
            assigned[source] = True
            component = {labels[source]}
            frontier = [source]
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for v in neighbors[u]:
                        if not assigned[v]:
                            assigned[v] = True
                            component.add(labels[v])
                            nxt.append(v)
                frontier = nxt
            components.append(component)
        return components

    def max_cross_distance(
        self, left: Sequence[NodeId], right: Sequence[NodeId]
    ) -> int:
        """Maximum distance between a ``left`` node and a ``right`` node.

        Identical semantics to :meth:`Graph.max_cross_distance`, including
        the :class:`~repro.graphs.graph.GraphError` on unreachable pairs.
        """
        index_of = self.index_of
        neighbors = self.neighbor_slices()
        n = len(self.labels)
        right_unique = dict.fromkeys(right)
        right_indexed = [(index_of.get(v), v) for v in right_unique]
        seen = [-1] * n
        dist = [0] * n
        best = 0
        for stamp, u in enumerate(left):
            source = index_of[u]
            seen[source] = stamp
            dist[source] = 0
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                nxt: List[int] = []
                append = nxt.append
                for x in frontier:
                    for y in neighbors[x]:
                        if seen[y] != stamp:
                            seen[y] = stamp
                            dist[y] = depth
                            append(y)
                frontier = nxt
            for target, v_label in right_indexed:
                if target is None or seen[target] != stamp:
                    raise GraphError(f"node {v_label!r} unreachable from {u!r}")
                d = dist[target]
                if d > best:
                    best = d
        return best
