"""The Holzer-Wattenhofer gadget (Theorem 8 / Figure 4 of the paper).

This module builds, for a size parameter ``s``, the bipartite-cut graph
``G_n`` of the proof of Theorem 8 and the input-dependent graphs
``G_n(x, y)``.  The construction realises a
``(Theta(n), Theta(n^2), 2, 3)``-reduction from two-party set disjointness to
diameter computation (Definition 3 of the paper):

* the two sides are ``U = L + L' + {a}`` and ``V = R + R' + {b}``, with
  ``|L| = |L'| = |R| = |R'| = s``;
* each of ``L``, ``L'``, ``R``, ``R'`` is an ``s``-clique, ``a`` is adjacent
  to all of ``L + L'``, ``b`` to all of ``R + R'``;
* the cut edges are ``{l_i, r_i}``, ``{l'_i, r'_i}`` for every ``i`` and the
  edge ``{a, b}`` -- ``2s + 1`` cut edges in total;
* Alice's input ``x in {0,1}^(s*s)`` adds the edge ``{l_i, l'_j}`` whenever
  ``x[i, j] = 0``; Bob's input ``y`` adds ``{r_i, r'_j}`` whenever
  ``y[i, j] = 0``.

Then ``d(l_i, r'_j) = 3`` exactly when ``x[i, j] = y[i, j] = 1`` and 2
otherwise, so the graph has diameter 3 when the inputs intersect
(``DISJ = 0``) and diameter 2 when they are disjoint (``DISJ = 1``).

Node labels are tuples such as ``("l", 3)``, ``("lp", 0)``, ``("a",)`` so
that tests and benchmarks can address the two sides symbolically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.graphs.graph import Graph, NodeId


class HW12Gadget:
    """Factory for the Theorem-8 gadget graphs.

    Parameters
    ----------
    s:
        Size parameter: each of the four cliques has ``s`` nodes, the input
        length is ``k = s * s`` bits and the total number of nodes is
        ``n = 4 s + 2``.
    """

    def __init__(self, s: int) -> None:
        if s < 1:
            raise ValueError(f"s must be >= 1, got {s}")
        self.s = s

    # ------------------------------------------------------------------
    # Reduction parameters (Definition 3)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``n = 4s + 2``."""
        return 4 * self.s + 2

    @property
    def input_length(self) -> int:
        """Length ``k = s^2`` of each player's input."""
        return self.s * self.s

    @property
    def cut_size(self) -> int:
        """Number of edges crossing the cut: ``b = 2s + 1``."""
        return 2 * self.s + 1

    @property
    def diameter_if_disjoint(self) -> int:
        """``d1 = 2`` in Definition 3."""
        return 2

    @property
    def diameter_if_intersecting(self) -> int:
        """``d2 = 3`` in Definition 3."""
        return 3

    # ------------------------------------------------------------------
    # Node sets
    # ------------------------------------------------------------------
    def left_nodes(self) -> List[NodeId]:
        """The side ``U = L + L' + {a}`` (Alice's side)."""
        side: List[NodeId] = [("l", i) for i in range(self.s)]
        side += [("lp", i) for i in range(self.s)]
        side.append(("a",))
        return side

    def right_nodes(self) -> List[NodeId]:
        """The side ``V = R + R' + {b}`` (Bob's side)."""
        side: List[NodeId] = [("r", i) for i in range(self.s)]
        side += [("rp", i) for i in range(self.s)]
        side.append(("b",))
        return side

    def cut_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """The ``2s + 1`` edges crossing between the two sides."""
        edges: List[Tuple[NodeId, NodeId]] = []
        for i in range(self.s):
            edges.append((("l", i), ("r", i)))
            edges.append((("lp", i), ("rp", i)))
        edges.append((("a",), ("b",)))
        return edges

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def base_graph(self) -> Graph:
        """The input-independent part of the gadget."""
        graph = Graph(nodes=self.left_nodes() + self.right_nodes())
        # The four cliques.
        for prefix in ("l", "lp", "r", "rp"):
            for i in range(self.s):
                for j in range(i + 1, self.s):
                    graph.add_edge((prefix, i), (prefix, j))
        # Hubs a and b.
        for i in range(self.s):
            graph.add_edge(("a",), ("l", i))
            graph.add_edge(("a",), ("lp", i))
            graph.add_edge(("b",), ("r", i))
            graph.add_edge(("b",), ("rp", i))
        graph.add_edges_from(self.cut_edges())
        return graph

    def alice_edges(self, x: Sequence[int]) -> List[Tuple[NodeId, NodeId]]:
        """Edges added on Alice's side for input ``x`` (length ``s^2``)."""
        self._check_input(x)
        edges = []
        for i in range(self.s):
            for j in range(self.s):
                if x[i * self.s + j] == 0:
                    edges.append((("l", i), ("lp", j)))
        return edges

    def bob_edges(self, y: Sequence[int]) -> List[Tuple[NodeId, NodeId]]:
        """Edges added on Bob's side for input ``y`` (length ``s^2``)."""
        self._check_input(y)
        edges = []
        for i in range(self.s):
            for j in range(self.s):
                if y[i * self.s + j] == 0:
                    edges.append((("r", i), ("rp", j)))
        return edges

    def graph_for_inputs(self, x: Sequence[int], y: Sequence[int]) -> Graph:
        """The graph ``G_n(x, y)`` of Definition 3."""
        graph = self.base_graph()
        graph.add_edges_from(self.alice_edges(x))
        graph.add_edges_from(self.bob_edges(y))
        return graph

    # ------------------------------------------------------------------
    # Reference predictions
    # ------------------------------------------------------------------
    def predicted_diameter(self, x: Sequence[int], y: Sequence[int]) -> int:
        """Diameter predicted by the reduction for inputs ``x`` and ``y``.

        It is 3 when the inputs intersect (``DISJ = 0``) and 2 otherwise,
        except in the degenerate single-clique corner where ``s = 1`` and the
        inputs are disjoint: there the prediction is still 2 as long as at
        least two distinct nodes exist, which always holds.
        """
        self._check_input(x)
        self._check_input(y)
        intersects = any(a == 1 and b == 1 for a, b in zip(x, y))
        return (
            self.diameter_if_intersecting
            if intersects
            else self.diameter_if_disjoint
        )

    def _check_input(self, bits: Sequence[int]) -> None:
        if len(bits) != self.input_length:
            raise ValueError(
                f"input must have length {self.input_length}, got {len(bits)}"
            )
        if any(bit not in (0, 1) for bit in bits):
            raise ValueError("input must be a 0/1 sequence")
