"""A small undirected graph type with exact distance oracles.

The distributed algorithms in this library run on a
:class:`repro.congest.network.Network`, which wraps a :class:`Graph`.  The
:class:`Graph` itself also serves as the *sequential reference oracle*: its
BFS-based ``distances`` / ``eccentricity`` / ``diameter`` methods are the
ground truth used by the test-suite and by the benchmark harnesses to check
the answers produced by the distributed (classical and quantum) algorithms.

Nodes are identified by arbitrary hashable labels.  Most generators use
consecutive integers, while the lower-bound gadgets use descriptive tuples
such as ``("l", 3)``.

Determinism.  The adjacency structure is **insertion-ordered**: neighbours
are reported in the order their edges were added, never in hash order.
This makes every downstream consumer -- BFS discovery order, the engine's
delivery order, sweep records -- reproducible across processes and across
``PYTHONHASHSEED`` values even for tuple or string node labels (an earlier
revision stored neighbours in a ``set``, whose iteration order for such
labels is randomised per process).

Compiled views.  :meth:`Graph.compile` freezes the current topology into a
:class:`repro.graphs.indexed.IndexedGraph` -- a CSR (compressed sparse row)
representation over dense integer indices whose oracles are several times
faster than the adjacency-map implementations below.  The adjacency-map API
remains the mutable construction surface (generators, gadget builders);
every hot consumer (engine transport, sweeps, benchmark harnesses) runs on
the compiled view.  The view is cached on the graph and invalidated by a
version counter that every mutation bumps, so ``compile()`` is O(1) on an
unchanged graph and never serves a stale topology.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (indexed -> graph)
    from repro.graphs.indexed import IndexedGraph

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class GraphError(ValueError):
    """An oracle was asked a question the graph cannot answer.

    Raised for distance / eccentricity / diameter / radius queries on
    disconnected graphs (or on the empty graph), and for cross-distance
    queries between mutually unreachable nodes.  Subclasses ``ValueError``
    so that pre-existing callers catching the historical exception keep
    working.
    """


class Graph:
    """An undirected, unweighted graph stored as an adjacency map.

    Parameters
    ----------
    nodes:
        Optional iterable of node identifiers to pre-populate.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added
        automatically if missing.
    """

    def __init__(
        self,
        nodes: Optional[Iterable[NodeId]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        # Inner dicts map neighbour -> None and exist purely for their
        # insertion order + O(1) membership; a set would reintroduce
        # hash-order nondeterminism for tuple/string labels.
        self._adj: Dict[NodeId, Dict[NodeId, None]] = {}
        #: Bumped on every structural mutation; the compiled view records
        #: the version it was built from, so a stale view is never served.
        self._version: int = 0
        self._compiled: Optional["IndexedGraph"] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _mutated(self) -> None:
        self._version += 1
        self._compiled = None

    @property
    def version(self) -> int:
        """Mutation counter; compiled views are valid for one version only."""
        return self._version

    def add_node(self, node: NodeId) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = {}
            self._mutated()

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``.  Self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u][v] = None
            self._adj[v][u] = None
            self._mutated()

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every edge from ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises ``KeyError`` if the edge is not present.
        """
        if v not in self._adj.get(u, ()):  # pragma: no branch - symmetric
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._mutated()

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        other = Graph()
        other._adj = {node: dict(neigh) for node, neigh in self._adj.items()}
        other._version = 1
        return other

    def relabelled(self) -> Tuple["Graph", Dict[NodeId, int]]:
        """Return a copy with nodes relabelled ``0..n-1`` plus the mapping.

        The mapping sends original labels to the new integer labels.  Labels
        are assigned in the (deterministic) insertion order of the nodes.
        """
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabelled = Graph(nodes=range(len(mapping)))
        for u, neighbours in self._adj.items():
            for v in neighbours:
                if mapping[u] < mapping[v]:
                    relabelled.add_edge(mapping[u], mapping[v])
        return relabelled, mapping

    # ------------------------------------------------------------------
    # Compiled (indexed) view
    # ------------------------------------------------------------------
    def compile(self) -> "IndexedGraph":
        """Freeze the current topology into an indexed CSR view.

        The view (:class:`repro.graphs.indexed.IndexedGraph`) maps node
        labels to dense integers and stores neighbourhoods in compressed
        sparse rows, which makes its BFS-based oracles several times faster
        than the adjacency-map implementations on this class while
        returning identical values.

        The compiled view is cached: repeated calls on an unmutated graph
        return the same object, and any mutation (``add_node`` /
        ``add_edge`` / ``remove_edge``) invalidates the cache via the
        version counter, so a stale view is never returned.
        """
        compiled = self._compiled
        if compiled is not None and compiled.version == self._version:
            return compiled
        from repro.graphs.indexed import IndexedGraph

        compiled = IndexedGraph.from_graph(self)
        self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def nodes(self) -> List[NodeId]:
        """List of node identifiers, in insertion order."""
        return list(self._adj)

    def edges(self) -> List[Edge]:
        """List of edges, each reported once."""
        seen: Set[frozenset] = set()
        result: List[Edge] = []
        for u, neighbours in self._adj.items():
            for v in neighbours:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbours of ``node`` (raises ``KeyError`` if absent).

        The list is a fresh copy in edge insertion order; hot paths should
        prefer :meth:`repro.graphs.indexed.IndexedGraph.neighbors` on the
        compiled view, which returns a cached tuple without copying.
        """
        return list(self._adj[node])

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        return len(self._adj[node])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(neigh) for neigh in self._adj.values())

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``{u, v}`` is in the graph."""
        return v in self._adj.get(u, ())

    def adjacency(self) -> Dict[NodeId, Dict[NodeId, None]]:
        """The live adjacency mapping ``{node: neighbour -> None}``.

        This is the graph's internal structure, exposed read-only by
        convention (the inner dicts are insertion-ordered neighbour
        "sets"; only their keys are meaningful).  Callers must not mutate
        it; use :meth:`add_edge` / :meth:`remove_edge`.  Because the
        mapping is live, later mutations through the public API are
        visible to holders of the reference.
        """
        return self._adj

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Distance oracles (sequential reference implementations)
    #
    # These adjacency-map implementations are the *reference semantics*:
    # the CSR fast paths on the compiled view are differentially tested
    # against them.  Hot consumers should call the compiled equivalents
    # (``graph.compile().diameter()`` etc.).
    # ------------------------------------------------------------------
    def bfs_distances(self, source: NodeId) -> Dict[NodeId, int]:
        """Return the map ``{v: d(source, v)}`` for all reachable ``v``.

        Unreachable nodes are *absent* from the result (the documented
        sentinel for disconnected graphs): ``len(result) < num_nodes``
        if and only if the graph is disconnected.  Oracles that need the
        whole graph (:meth:`eccentricity`, :meth:`diameter`, ...) raise
        :class:`GraphError` instead.
        """
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        dist: Dict[NodeId, int] = {source: 0}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def bfs_tree(self, source: NodeId) -> Dict[NodeId, Optional[NodeId]]:
        """Return a BFS tree rooted at ``source`` as a parent map.

        The root maps to ``None``.  Ties between potential parents are
        broken by ``repr`` order, which makes the output deterministic for
        a deterministically-built graph.
        """
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        parent: Dict[NodeId, Optional[NodeId]] = {source: None}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self._adj[u], key=repr):
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        return parent

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Exact distance between ``u`` and ``v``.

        Raises :class:`GraphError` if ``v`` is unreachable from ``u``.
        """
        dist = self.bfs_distances(u)
        if v not in dist:
            raise GraphError(f"node {v!r} is not reachable from {u!r}")
        return dist[v]

    def eccentricity(self, node: NodeId) -> int:
        """Eccentricity of ``node`` (max distance to any other node).

        Raises :class:`GraphError` if the graph is disconnected.
        """
        dist = self.bfs_distances(node)
        if len(dist) != self.num_nodes:
            raise GraphError(
                "eccentricity is undefined on a disconnected graph"
            )
        return max(dist.values())

    def all_eccentricities(self) -> Dict[NodeId, int]:
        """Eccentricity of every node.

        Raises :class:`GraphError` on a disconnected graph.
        """
        return {node: self.eccentricity(node) for node in self._adj}

    def diameter(self) -> int:
        """Exact diameter (max eccentricity).

        Raises :class:`GraphError` on the empty graph and on disconnected
        graphs.
        """
        if self.num_nodes == 0:
            raise GraphError("diameter is undefined on the empty graph")
        return max(self.all_eccentricities().values())

    def radius(self) -> int:
        """Exact radius (min eccentricity).

        Raises :class:`GraphError` on the empty graph and on disconnected
        graphs.
        """
        if self.num_nodes == 0:
            raise GraphError("radius is undefined on the empty graph")
        return min(self.all_eccentricities().values())

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        if self.num_nodes == 0:
            return True
        first = next(iter(self._adj))
        return len(self.bfs_distances(first)) == self.num_nodes

    def connected_components(self) -> List[Set[NodeId]]:
        """List of connected components, each as a set of nodes.

        Components are reported in insertion order of their first node,
        independent of ``PYTHONHASHSEED`` (an earlier revision popped
        sources from a ``set``, whose order is hash-randomised for tuple
        and string labels).
        """
        seen: Set[NodeId] = set()
        components: List[Set[NodeId]] = []
        for source in self._adj:
            if source in seen:
                continue
            component = set(self.bfs_distances(source))
            components.append(component)
            seen |= component
        return components

    def max_cross_distance(
        self, left: Sequence[NodeId], right: Sequence[NodeId]
    ) -> int:
        """Maximum distance between a node of ``left`` and a node of ``right``.

        This is the quantity written ``Delta(G)`` in Section 5 of the paper
        (used by the lower-bound reductions of Definition 3).  Raises
        :class:`GraphError` when a right node is unreachable from a left
        node.
        """
        best = 0
        right_unique = dict.fromkeys(right)
        for u in left:
            dist = self.bfs_distances(u)
            for v in right_unique:
                if v not in dist:
                    raise GraphError(f"node {v!r} unreachable from {u!r}")
                if dist[v] > best:
                    best = dist[v]
        return best

    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by ``nodes``.

        Nodes keep the order of the ``nodes`` argument (first occurrence),
        so the result is deterministic for a deterministic input order.
        """
        keep = dict.fromkeys(nodes)
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub
