"""A small undirected graph type with exact distance oracles.

The distributed algorithms in this library run on a
:class:`repro.congest.network.Network`, which wraps a :class:`Graph`.  The
:class:`Graph` itself also serves as the *sequential reference oracle*: its
BFS-based ``distances`` / ``eccentricity`` / ``diameter`` methods are the
ground truth used by the test-suite and by the benchmark harnesses to check
the answers produced by the distributed (classical and quantum) algorithms.

Nodes are identified by arbitrary hashable labels.  Most generators use
consecutive integers, while the lower-bound gadgets use descriptive tuples
such as ``("l", 3)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class Graph:
    """An undirected, unweighted graph stored as an adjacency map.

    Parameters
    ----------
    nodes:
        Optional iterable of node identifiers to pre-populate.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added
        automatically if missing.
    """

    def __init__(
        self,
        nodes: Optional[Iterable[NodeId]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``.  Self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every edge from ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises ``KeyError`` if the edge is not present.
        """
        if v not in self._adj.get(u, ()):  # pragma: no branch - symmetric
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        other = Graph()
        other._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return other

    def relabelled(self) -> Tuple["Graph", Dict[NodeId, int]]:
        """Return a copy with nodes relabelled ``0..n-1`` plus the mapping.

        The mapping sends original labels to the new integer labels.  Labels
        are assigned in the (deterministic) insertion order of the nodes.
        """
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabelled = Graph(nodes=range(len(mapping)))
        for u, neighbours in self._adj.items():
            for v in neighbours:
                if mapping[u] < mapping[v]:
                    relabelled.add_edge(mapping[u], mapping[v])
        return relabelled, mapping

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def nodes(self) -> List[NodeId]:
        """List of node identifiers, in insertion order."""
        return list(self._adj)

    def edges(self) -> List[Edge]:
        """List of edges, each reported once."""
        seen: Set[frozenset] = set()
        result: List[Edge] = []
        for u, neighbours in self._adj.items():
            for v in neighbours:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbours of ``node`` (raises ``KeyError`` if absent)."""
        return list(self._adj[node])

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        return len(self._adj[node])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(neigh) for neigh in self._adj.values())

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``{u, v}`` is in the graph."""
        return v in self._adj.get(u, ())

    def adjacency(self) -> Dict[NodeId, Set[NodeId]]:
        """The live adjacency mapping ``{node: set of neighbours}``.

        This is the graph's internal structure, exposed read-only by
        convention for hot paths (the transport's neighbour check binds it
        once instead of calling :meth:`has_edge` per message).  Callers
        must not mutate it; use :meth:`add_edge` / :meth:`remove_edge`.
        Because the mapping is live, later mutations through the public
        API are visible to holders of the reference.
        """
        return self._adj

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Distance oracles (sequential reference implementations)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: NodeId) -> Dict[NodeId, int]:
        """Return the map ``{v: d(source, v)}`` for all reachable ``v``."""
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        dist: Dict[NodeId, int] = {source: 0}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def bfs_tree(self, source: NodeId) -> Dict[NodeId, Optional[NodeId]]:
        """Return a BFS tree rooted at ``source`` as a parent map.

        The root maps to ``None``.  Ties between potential parents are
        broken by insertion order of the adjacency sets, which makes the
        output deterministic for a deterministically-built graph.
        """
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        parent: Dict[NodeId, Optional[NodeId]] = {source: None}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self._adj[u], key=repr):
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        return parent

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Exact distance between ``u`` and ``v``.

        Raises ``ValueError`` if ``v`` is unreachable from ``u``.
        """
        dist = self.bfs_distances(u)
        if v not in dist:
            raise ValueError(f"node {v!r} is not reachable from {u!r}")
        return dist[v]

    def eccentricity(self, node: NodeId) -> int:
        """Eccentricity of ``node`` (max distance to any other node).

        Raises ``ValueError`` if the graph is disconnected.
        """
        dist = self.bfs_distances(node)
        if len(dist) != self.num_nodes:
            raise ValueError("eccentricity is undefined on a disconnected graph")
        return max(dist.values())

    def all_eccentricities(self) -> Dict[NodeId, int]:
        """Eccentricity of every node (requires a connected graph)."""
        return {node: self.eccentricity(node) for node in self._adj}

    def diameter(self) -> int:
        """Exact diameter (max eccentricity).  Requires a connected graph."""
        if self.num_nodes == 0:
            raise ValueError("diameter is undefined on the empty graph")
        return max(self.all_eccentricities().values())

    def radius(self) -> int:
        """Exact radius (min eccentricity).  Requires a connected graph."""
        if self.num_nodes == 0:
            raise ValueError("radius is undefined on the empty graph")
        return min(self.all_eccentricities().values())

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        if self.num_nodes == 0:
            return True
        first = next(iter(self._adj))
        return len(self.bfs_distances(first)) == self.num_nodes

    def connected_components(self) -> List[Set[NodeId]]:
        """List of connected components, each as a set of nodes."""
        remaining = set(self._adj)
        components: List[Set[NodeId]] = []
        while remaining:
            source = next(iter(remaining))
            component = set(self.bfs_distances(source))
            components.append(component)
            remaining -= component
        return components

    def max_cross_distance(
        self, left: Sequence[NodeId], right: Sequence[NodeId]
    ) -> int:
        """Maximum distance between a node of ``left`` and a node of ``right``.

        This is the quantity written ``Delta(G)`` in Section 5 of the paper
        (used by the lower-bound reductions of Definition 3).
        """
        best = 0
        right_set = set(right)
        for u in left:
            dist = self.bfs_distances(u)
            for v in right_set:
                if v not in dist:
                    raise ValueError(f"node {v!r} unreachable from {u!r}")
                if dist[v] > best:
                    best = dist[v]
        return best

    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub
