"""Path-subdivided gadgets: the graphs ``G'_n(x, y)`` of Section 6.2 (Figure 8).

To make the diameter appear in the lower bound of Theorem 3, the paper takes
the sparse-cut reduction of Theorem 9 and replaces every edge crossing the
cut by a path of ``d`` intermediate ("dummy") nodes.  The resulting graph
``G'_n(x, y)`` has ``n' = n + b * d`` nodes, its left and right parts are now
``d + 1`` hops apart, and deciding whether its diameter is ``d + 4`` or
``d + 5`` is exactly as hard as the original ``4`` versus ``5`` question --
but any algorithm now needs ``d`` rounds to move a single (qu)bit across,
which is what drives the ``Omega~(sqrt(n D) / s)`` bound.

:class:`PathSubdividedGadget` wraps any of the base gadgets
(:class:`repro.graphs.gadgets_achk.ACHKGadget` by default, or
:class:`repro.graphs.gadgets_hw12.HW12Gadget`) and performs the subdivision.
The intermediate nodes on the path replacing the cut edge ``(u, v)`` are
labelled ``("path", u, v, t)`` for ``t = 1 .. d``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.graphs.gadgets_achk import ACHKGadget
from repro.graphs.gadgets_hw12 import HW12Gadget
from repro.graphs.graph import Graph, NodeId

BaseGadget = Union[ACHKGadget, HW12Gadget]


class PathSubdividedGadget:
    """Subdivide the cut edges of a disjointness gadget into length-(d+1) paths.

    Parameters
    ----------
    base:
        The underlying gadget providing ``base_graph``, ``cut_edges``,
        ``alice_edges``, ``bob_edges`` and the Definition-3 parameters.
    path_length:
        The number ``d >= 1`` of intermediate nodes inserted on every cut
        edge.  The diameter guarantees (``d + d1`` versus ``d + d2``) hold
        for ``d >= 3``; smaller values are accepted but the caller should
        check diameters explicitly (the test-suite does).
    """

    def __init__(self, base: BaseGadget, path_length: int) -> None:
        if path_length < 1:
            raise ValueError(f"path_length must be >= 1, got {path_length}")
        self.base = base
        self.path_length = path_length

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def input_length(self) -> int:
        """Input length inherited from the base gadget."""
        return self.base.input_length

    @property
    def cut_size(self) -> int:
        """Number of subdivided cut edges (``b`` of the base gadget)."""
        return self.base.cut_size

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``n' = n + b * d``."""
        return self.base.num_nodes + self.base.cut_size * self.path_length

    @property
    def diameter_if_disjoint(self) -> int:
        """``d + d1``: the diameter threshold when the inputs are disjoint."""
        return self.path_length + self.base.diameter_if_disjoint

    @property
    def diameter_if_intersecting(self) -> int:
        """``d + d2``: the diameter threshold when the inputs intersect."""
        return self.path_length + self.base.diameter_if_intersecting

    # ------------------------------------------------------------------
    # Node ownership: which of the d+2 simulated parties owns which node.
    # ------------------------------------------------------------------
    def left_nodes(self) -> List[NodeId]:
        """Nodes owned by the left extremity (Alice / node ``A`` of ``G_d``)."""
        return list(self.base.left_nodes())

    def right_nodes(self) -> List[NodeId]:
        """Nodes owned by the right extremity (Bob / node ``B`` of ``G_d``)."""
        return list(self.base.right_nodes())

    def layer_nodes(self, layer: int) -> List[NodeId]:
        """Intermediate nodes in vertical layer ``layer`` (1-based, up to d).

        Layer ``t`` contains, for every subdivided cut edge, the ``t``-th
        dummy node counted from the left side.  This is the partition used by
        the players ``P_1 .. P_d`` in the proof of Theorem 3 (Figure 8).
        """
        if not 1 <= layer <= self.path_length:
            raise ValueError(
                f"layer must be in [1, {self.path_length}], got {layer}"
            )
        return [
            ("path", u, v, layer) for u, v in self.base.cut_edges()
        ]

    def ownership(self) -> Dict[NodeId, int]:
        """Map each node to its owner: 0 for Alice, d+1 for Bob, t for layer t."""
        owner: Dict[NodeId, int] = {}
        for node in self.left_nodes():
            owner[node] = 0
        for node in self.right_nodes():
            owner[node] = self.path_length + 1
        for layer in range(1, self.path_length + 1):
            for node in self.layer_nodes(layer):
                owner[node] = layer
        return owner

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def graph_for_inputs(self, x: Sequence[int], y: Sequence[int]) -> Graph:
        """The subdivided graph ``G'_n(x, y)``."""
        original = self.base.graph_for_inputs(x, y)
        graph = Graph(nodes=original.nodes())
        cut = {frozenset(edge) for edge in self.base.cut_edges()}
        for u, v in original.edges():
            if frozenset((u, v)) in cut:
                continue
            graph.add_edge(u, v)
        for u, v in self.base.cut_edges():
            previous = u
            for t in range(1, self.path_length + 1):
                dummy = ("path", u, v, t)
                graph.add_edge(previous, dummy)
                previous = dummy
            graph.add_edge(previous, v)
        return graph

    def predicted_diameter(self, x: Sequence[int], y: Sequence[int]) -> int:
        """Diameter threshold predicted by the reduction.

        Returns ``d + d2`` when the inputs intersect and ``d + d1``
        otherwise.  For intersecting inputs the actual diameter equals the
        returned value (for ``d >= 3``); for disjoint inputs the actual
        diameter is at most the returned value.
        """
        intersects = any(
            a == 1 and b == 1 for a, b in zip(x, y)
        )
        return (
            self.diameter_if_intersecting
            if intersects
            else self.diameter_if_disjoint
        )
