"""A sparse-cut disjointness gadget in the style of Abboud et al. (ACHK16).

Theorem 9 of the paper cites [ACHK16] for the existence of a
``(Theta(log n), Theta(n), 4, 5)``-reduction from set disjointness to
diameter computation: a family of graphs with only ``Theta(log n)`` edges
crossing between Alice's side and Bob's side, input length ``k = Theta(n)``,
and the property that the graph has diameter at most 4 when the inputs are
disjoint and at least 5 when they intersect.

The paper uses that reduction purely as a black box (only the four
parameters matter for Theorems 3 and 10), and does not reproduce the
construction.  We therefore implement a self-contained *bit-gadget*
construction with exactly those parameters and verify its correctness by
brute force in the test-suite.  The construction follows the standard
ACHK16/orthogonal-vectors recipe:

* Alice's side holds one node ``l_i`` per input index ``i``, a pair of
  bit-nodes ``f_{p,0}, f_{p,1}`` per bit position ``p`` of the index, and a
  hub ``u*``.  Node ``l_i`` is wired to ``f_{p, bit_p(i)}`` for every ``p``,
  and the hub ``u*`` is wired to every bit-node.
* Bob's side mirrors this with nodes ``r_i``, bit-nodes ``h_{p,c}`` and a
  hub ``v*``.
* The only edges crossing the cut are ``f_{p,c} -- h_{p,1-c}`` (complementary
  bit values) and ``u* -- v*``: that is ``2 * ceil(log2 k) + 1`` cut edges.
* Alice's input ``x`` adds the edge ``{l_i, u*}`` whenever ``x_i = 0``;
  Bob's input adds ``{r_i, v*}`` whenever ``y_i = 0``.

For two distinct indices ``i != j`` the nodes ``l_i`` and ``r_j`` disagree on
some bit position and are therefore at distance 3 through the complementary
bit-nodes.  For ``i = j`` the only short routes go through a hub, which
requires ``x_i = 0`` or ``y_i = 0``; when ``x_i = y_i = 1`` the distance
``d(l_i, r_i)`` rises to 5.  All remaining pairs are within distance 4
regardless of the inputs, so the diameter is 4 when ``DISJ(x, y) = 1`` and
5 when ``DISJ(x, y) = 0``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graphs.graph import Graph, NodeId


def _num_bits(k: int) -> int:
    """Number of bits used to index ``k`` items (at least 1)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    bits = 1
    while (1 << bits) < k:
        bits += 1
    return bits


class ACHKGadget:
    """Factory for the sparse-cut (``Theta(log n)`` cut edges) gadget.

    Parameters
    ----------
    k:
        Input length for each player.  The graph has ``2k + 4B + 2`` nodes
        where ``B = ceil(log2 k)`` (with ``B >= 1``), i.e. ``n = Theta(k)``.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.num_index_bits = _num_bits(k)

    # ------------------------------------------------------------------
    # Reduction parameters (Definition 3)
    # ------------------------------------------------------------------
    @property
    def input_length(self) -> int:
        """Each player's input length ``k``."""
        return self.k

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``2k + 4B + 2``."""
        return 2 * self.k + 4 * self.num_index_bits + 2

    @property
    def cut_size(self) -> int:
        """Number of cut edges ``b = 2B + 1 = Theta(log n)``."""
        return 2 * self.num_index_bits + 1

    @property
    def diameter_if_disjoint(self) -> int:
        """``d1 = 4`` in Definition 3."""
        return 4

    @property
    def diameter_if_intersecting(self) -> int:
        """``d2 = 5`` in Definition 3."""
        return 5

    # ------------------------------------------------------------------
    # Node sets
    # ------------------------------------------------------------------
    def left_nodes(self) -> List[NodeId]:
        """Alice's side: ``l_i`` nodes, ``f`` bit-nodes and the hub ``u*``."""
        side: List[NodeId] = [("l", i) for i in range(self.k)]
        for p in range(self.num_index_bits):
            side.append(("f", p, 0))
            side.append(("f", p, 1))
        side.append(("ustar",))
        return side

    def right_nodes(self) -> List[NodeId]:
        """Bob's side: ``r_i`` nodes, ``h`` bit-nodes and the hub ``v*``."""
        side: List[NodeId] = [("r", i) for i in range(self.k)]
        for p in range(self.num_index_bits):
            side.append(("h", p, 0))
            side.append(("h", p, 1))
        side.append(("vstar",))
        return side

    def cut_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """The ``2B + 1`` edges crossing between the two sides."""
        edges: List[Tuple[NodeId, NodeId]] = []
        for p in range(self.num_index_bits):
            edges.append((("f", p, 0), ("h", p, 1)))
            edges.append((("f", p, 1), ("h", p, 0)))
        edges.append((("ustar",), ("vstar",)))
        return edges

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def base_graph(self) -> Graph:
        """The input-independent part of the gadget."""
        graph = Graph(nodes=self.left_nodes() + self.right_nodes())
        for i in range(self.k):
            for p in range(self.num_index_bits):
                bit = (i >> p) & 1
                graph.add_edge(("l", i), ("f", p, bit))
                graph.add_edge(("r", i), ("h", p, bit))
        for p in range(self.num_index_bits):
            for value in (0, 1):
                graph.add_edge(("ustar",), ("f", p, value))
                graph.add_edge(("vstar",), ("h", p, value))
        graph.add_edges_from(self.cut_edges())
        return graph

    def alice_edges(self, x: Sequence[int]) -> List[Tuple[NodeId, NodeId]]:
        """Edges added on Alice's side: ``{l_i, u*}`` whenever ``x_i = 0``."""
        self._check_input(x)
        return [(("l", i), ("ustar",)) for i in range(self.k) if x[i] == 0]

    def bob_edges(self, y: Sequence[int]) -> List[Tuple[NodeId, NodeId]]:
        """Edges added on Bob's side: ``{r_i, v*}`` whenever ``y_i = 0``."""
        self._check_input(y)
        return [(("r", i), ("vstar",)) for i in range(self.k) if y[i] == 0]

    def graph_for_inputs(self, x: Sequence[int], y: Sequence[int]) -> Graph:
        """The graph ``G_n(x, y)`` of Definition 3."""
        graph = self.base_graph()
        graph.add_edges_from(self.alice_edges(x))
        graph.add_edges_from(self.bob_edges(y))
        return graph

    # ------------------------------------------------------------------
    # Reference predictions
    # ------------------------------------------------------------------
    def predicted_diameter(self, x: Sequence[int], y: Sequence[int]) -> int:
        """Diameter predicted by the reduction (4 if disjoint, 5 otherwise)."""
        self._check_input(x)
        self._check_input(y)
        intersects = any(a == 1 and b == 1 for a, b in zip(x, y))
        return (
            self.diameter_if_intersecting
            if intersects
            else self.diameter_if_disjoint
        )

    def witness_pair(self, x: Sequence[int], y: Sequence[int]) -> Tuple[NodeId, NodeId]:
        """A cross pair witnessing distance >= 5 when the inputs intersect.

        Raises ``ValueError`` when the inputs are disjoint (no witness
        exists).
        """
        self._check_input(x)
        self._check_input(y)
        for i in range(self.k):
            if x[i] == 1 and y[i] == 1:
                return (("l", i), ("r", i))
        raise ValueError("inputs are disjoint: no witness pair exists")

    def _check_input(self, bits: Sequence[int]) -> None:
        if len(bits) != self.k:
            raise ValueError(f"input must have length {self.k}, got {len(bits)}")
        if any(bit not in (0, 1) for bit in bits):
            raise ValueError("input must be a 0/1 sequence")
