"""Graph substrate: data structure, generators and lower-bound gadget graphs.

This subpackage provides everything the rest of the library needs to talk
about *static network topologies*:

* :class:`repro.graphs.graph.Graph` -- a small, dependency-free undirected
  graph with exact BFS-based distance / eccentricity / diameter oracles.
  These oracles are the ground truth against which every distributed
  algorithm in the library is validated.
* :class:`repro.graphs.indexed.IndexedGraph` -- the frozen CSR view
  produced by :meth:`Graph.compile`: integer-indexed neighbourhoods and
  fast-path implementations of the same oracles, used by every hot
  consumer (engine transport, sweeps, benchmark harnesses).
* :mod:`repro.graphs.generators` -- workload generators (paths, cycles,
  trees, grids, random graphs, and families with controlled diameter) used
  by the benchmark harnesses.
* :mod:`repro.graphs.gadgets_hw12`, :mod:`repro.graphs.gadgets_achk`,
  :mod:`repro.graphs.gadgets_path` -- the graph constructions used by the
  paper's lower bounds (Theorems 8 and 9, and Section 6.2).
"""

from repro.graphs.graph import Graph, GraphError
from repro.graphs.indexed import IndexedGraph
from repro.graphs import generators
from repro.graphs.gadgets_hw12 import HW12Gadget
from repro.graphs.gadgets_achk import ACHKGadget
from repro.graphs.gadgets_path import PathSubdividedGadget

__all__ = [
    "Graph",
    "GraphError",
    "IndexedGraph",
    "generators",
    "HW12Gadget",
    "ACHKGadget",
    "PathSubdividedGadget",
]
