"""Deterministic fault injection for the CONGEST simulator.

The paper assumes a static, lossless, synchronous network.  Real networks
are none of those things, so this module adds a *seeded, deterministic*
fault layer the engine consults while delivering messages and scheduling
nodes:

* **message loss** -- every (round, sender, receiver) message is dropped
  independently with probability :attr:`FaultModel.loss`;
* **message delay** -- with probability :attr:`FaultModel.delay` a message
  takes ``1 + d`` rounds instead of one, ``d`` uniform in
  ``[1, max_delay]``; delayed messages re-enter the inbox at the scheduled
  arrival round (the engine keeps an in-flight map and the sparse
  scheduler's termination logic counts it);
* **node crashes** -- each node independently crashes with probability
  :attr:`FaultModel.crash` at a round uniform in ``[1, crash_window]``
  (never round 0, so initiators always get to start the algorithm).  The
  failure mode is *fail-pause*: a down node neither runs nor receives,
  but keeps its local state; with ``down_rounds > 0`` it restarts after
  that many rounds, otherwise it stays down forever;
* **edge churn** -- every edge is independently *down* in each round with
  probability :attr:`FaultModel.churn`; messages crossing a down edge are
  dropped (the topology itself is unchanged, so the CONGEST neighbour
  contract still holds).

Determinism.  Fault decisions are **stateless hashes**, not draws from a
sequential RNG stream: each decision is a pure function of the fault seed
and the event's coordinates (round, sender, receiver / node / edge),
computed with the same CRC idiom as :func:`repro.runner.batch.task_seed`.
This makes faulty executions independent of *evaluation order* -- the
dense, sparse and vector engines consult the plan in different orders yet
produce identical executions -- and independent of
``PYTHONHASHSEED``.  The fault seed itself is derived from the network
seed, the model's :attr:`FaultModel.seed` and a per-engine run counter,
so it is isolated from the graph-construction and algorithm seed streams
(faults never replay algorithm randomness) while multi-phase algorithms
(one ``Network.run`` per phase) see fresh, reproducible draws per phase.

Selection follows the engine/backend/tier idiom
(:func:`repro.engine.set_default_engine`,
:func:`repro.tier.set_default_tier`): a process-wide default fault model
(the null model unless changed), toggled by the CLI
``--loss/--crash/--churn`` flags, re-applied in
:class:`repro.runner.batch.BatchRunner` pool workers and stamped into
:func:`repro.store.provenance.collect_provenance`.  The null model is
guaranteed byte-identical to the fault-free path: the engine only enters
its fault-aware loop when :attr:`FaultModel.is_null` is false.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.graphs.graph import NodeId
from repro.graphs.indexed import IndexedGraph

#: Scale of the CRC-to-unit-interval map: ``crc32`` is uniform on
#: ``[0, 2**32)``, so dividing by ``2**32`` yields a value in ``[0, 1)``.
_UNIT_SCALE = 4294967296.0


def _unit(seed: int, *coordinates) -> float:
    """A deterministic pseudo-uniform value in ``[0, 1)`` for an event.

    A pure function of the seed and the event coordinates (hashed through
    ``repr`` like :func:`repro.runner.batch.task_seed`), so fault
    decisions do not depend on the order in which the engine evaluates
    them or on ``PYTHONHASHSEED``.
    """
    text = "|".join([str(seed)] + [repr(item) for item in coordinates])
    return zlib.crc32(text.encode("utf-8")) / _UNIT_SCALE


def fault_stream_seed(network_seed: int, model_seed: int, run_index: int) -> int:
    """The seed of one run's fault stream.

    Mixes the network seed, the model's own seed component and the
    engine's per-run counter with the :func:`repro.runner.batch.task_seed`
    CRC idiom.  The ``"fault-stream"`` salt keeps the stream disjoint
    from the graph-construction and algorithm streams even when the raw
    seeds coincide.
    """
    text = f"fault-stream|{network_seed}|{model_seed}|{run_index}"
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class FaultModel:
    """A declarative description of the faults to inject.

    All probabilities are per-event and independent; see the module
    docstring for the exact semantics of each field.  The default
    instance (all probabilities zero, no timeout) is the **null model**:
    it injects nothing and the engine bypasses the fault layer entirely.

    Parameters
    ----------
    loss:
        Per-message drop probability.
    delay:
        Per-message delay probability; a delayed message arrives after
        ``1 + d`` rounds, ``d`` uniform in ``[1, max_delay]``.
    max_delay:
        Largest extra latency (in rounds) of a delayed message.
    crash:
        Per-node probability of crashing during the run.
    crash_window:
        Crash rounds are uniform in ``[1, crash_window]`` (round 0 never
        crashes, so every initiator runs at least once).
    down_rounds:
        Rounds a crashed node stays down before restarting (fail-pause:
        state is kept).  ``0`` means crashed nodes never restart.
    churn:
        Per-edge per-round probability that the edge is down.
    timeout:
        Optional round cap for faulty runs, tighter than the network's
        ``default_max_rounds``: algorithms stuck because of lost messages
        fail fast with :class:`repro.congest.errors.RoundLimitExceededError`
        (which the sweep layer converts into ``success=False`` records).
    seed:
        Extra seed component of the fault stream, so two sweeps over the
        same graphs and seeds can draw different fault patterns.
    """

    loss: float = 0.0
    delay: float = 0.0
    max_delay: int = 1
    crash: float = 0.0
    crash_window: int = 32
    down_rounds: int = 0
    churn: float = 0.0
    timeout: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "delay", "crash", "churn"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault probability {name!r} must be in [0, 1], got {value!r}"
                )
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay!r}")
        if self.crash_window < 1:
            raise ValueError(
                f"crash_window must be >= 1, got {self.crash_window!r}"
            )
        if self.down_rounds < 0:
            raise ValueError(
                f"down_rounds must be >= 0, got {self.down_rounds!r}"
            )
        if self.timeout is not None and self.timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {self.timeout!r}")

    @property
    def is_null(self) -> bool:
        """Whether this model injects nothing (the fault-free fast path).

        A model whose probabilities are all zero but whose ``timeout`` is
        set is *not* null: the timeout must still cap the run.
        """
        return (
            self.loss == 0.0
            and self.delay == 0.0
            and self.crash == 0.0
            and self.churn == 0.0
            and self.timeout is None
        )

    def describe(self) -> str:
        """A stable, compact textual form for task keys and provenance.

        ``"none"`` for the null model; otherwise every field in
        declaration order, so two distinct models can never collide and
        the string is reproducible across processes.
        """
        if self.is_null:
            return "none"
        parts = [f"{item.name}={getattr(self, item.name)!r}" for item in fields(self)]
        return ",".join(parts)

    def resolve(
        self, network_seed: int, indexed: IndexedGraph, run_index: int = 0
    ) -> "FaultPlan":
        """Materialise this model into a seeded per-run :class:`FaultPlan`."""
        return FaultPlan(
            self,
            fault_stream_seed(network_seed, self.seed, run_index),
            indexed,
        )


#: The null model: no faults, the behaviour of the seed simulator.
NULL_FAULT_MODEL = FaultModel()

#: Named fault models, selectable wherever a model is accepted (the
#: registry mirrors ``SCHEDULERS`` / ``TIER_NAMES``).  ``register_fault_model``
#: adds entries at runtime.
FAULT_MODELS: Dict[str, FaultModel] = {
    "none": NULL_FAULT_MODEL,
    # A mildly lossy network: ~2% of messages vanish.
    "lossy": FaultModel(loss=0.02),
    # Loss plus latency jitter: the shape of a congested WAN.
    "flaky": FaultModel(loss=0.01, delay=0.1, max_delay=3),
    # Fail-pause outages with recovery plus light churn.
    "brownout": FaultModel(crash=0.2, crash_window=16, down_rounds=8, churn=0.01),
}


def register_fault_model(name: str, model: FaultModel) -> None:
    """Register a named fault model (rejects overwriting a different one)."""
    existing = FAULT_MODELS.get(name)
    if existing is not None and existing != model:
        raise ValueError(
            f"fault model name {name!r} is already registered with a "
            "different configuration"
        )
    FAULT_MODELS[name] = model


#: Process-wide default, toggled by :func:`set_default_fault_model`.
_DEFAULT_FAULT_MODEL = NULL_FAULT_MODEL


def validate_fault_model(value) -> FaultModel:
    """Coerce a model instance or registry name to a :class:`FaultModel`."""
    if isinstance(value, FaultModel):
        return value
    if isinstance(value, str):
        model = FAULT_MODELS.get(value)
        if model is None:
            known = ", ".join(sorted(FAULT_MODELS))
            raise ValueError(
                f"unknown fault model {value!r} (available: {known})"
            )
        return model
    raise TypeError(
        f"expected a FaultModel or registry name, got {type(value).__name__}"
    )


def set_default_fault_model(value) -> FaultModel:
    """Set the process-wide default fault model; returns the previous one.

    Mirrors :func:`repro.engine.set_default_engine` /
    :func:`repro.tier.set_default_tier`: the CLI flags toggle it, the
    batch runner re-applies it in pool workers, and
    :class:`repro.congest.network.Network` resolves ``fault_model=None``
    against it.
    """
    global _DEFAULT_FAULT_MODEL
    model = validate_fault_model(value)
    previous = _DEFAULT_FAULT_MODEL
    _DEFAULT_FAULT_MODEL = model
    return previous


def get_default_fault_model() -> FaultModel:
    """The current process-wide default fault model."""
    return _DEFAULT_FAULT_MODEL


def resolve_fault_model(value=None) -> FaultModel:
    """Map ``None`` to the process default; validate names/instances."""
    if value is None:
        return _DEFAULT_FAULT_MODEL
    return validate_fault_model(value)


def _edge_key(u: NodeId, v: NodeId) -> Tuple[str, str]:
    """Canonical, hash-randomisation-free identity of an undirected edge."""
    a, b = repr(u), repr(v)
    return (a, b) if a <= b else (b, a)


class FaultPlan:
    """One run's resolved fault decisions.

    Built by the engine at the start of a faulty run from the model, the
    run's fault-stream seed and the compiled topology.  Crash/restart
    schedules are precomputed (they are per-node, O(n)); message fates
    and churn are decided lazily via stateless hashes of their
    coordinates, with a one-round memo for the churned-edge set.
    """

    __slots__ = (
        "model",
        "seed",
        "crash_round",
        "restart_round",
        "_edges",
        "_max_restart",
        "_churn_round",
        "_churn_keys",
        "_churn_edges",
    )

    def __init__(self, model: FaultModel, seed: int, indexed: IndexedGraph) -> None:
        self.model = model
        self.seed = seed
        #: node -> round at which it crashes (absent: never crashes).
        self.crash_round: Dict[NodeId, int] = {}
        #: node -> round at which it restarts (absent: down forever).
        self.restart_round: Dict[NodeId, int] = {}
        if model.crash > 0.0:
            for label in indexed.labels:
                if _unit(seed, "crash?", label) < model.crash:
                    at = 1 + int(
                        _unit(seed, "crash@", label) * model.crash_window
                    )
                    self.crash_round[label] = at
                    if model.down_rounds > 0:
                        self.restart_round[label] = at + model.down_rounds
        self._max_restart = max(self.restart_round.values(), default=-1)
        #: Canonical undirected edge list in CSR order (u-index < v-index),
        #: built only when churn can occur.
        self._edges: Tuple[Tuple[NodeId, NodeId], ...] = ()
        if model.churn > 0.0:
            labels = indexed.labels
            offsets = indexed.offsets
            targets = indexed.targets
            edges: List[Tuple[NodeId, NodeId]] = []
            for i in range(len(labels)):
                for cursor in range(offsets[i], offsets[i + 1]):
                    j = targets[cursor]
                    if i < j:
                        edges.append((labels[i], labels[j]))
            self._edges = tuple(edges)
        self._churn_round = -1
        self._churn_keys: FrozenSet[Tuple[str, str]] = frozenset()
        self._churn_edges: Tuple[Tuple[NodeId, NodeId], ...] = ()

    # ------------------------------------------------------------------
    def node_down(self, round_number: int, node: NodeId) -> bool:
        """Whether ``node`` is down (crashed, not yet restarted) in a round."""
        crashed = self.crash_round.get(node)
        if crashed is None or round_number < crashed:
            return False
        restart = self.restart_round.get(node)
        return restart is None or round_number < restart

    def restarts_pending(self, round_number: int) -> bool:
        """Whether any node restarts at ``round_number`` or later.

        Termination input: a quiescent network with a restart still ahead
        must keep running (the restarted node may produce new work)."""
        return round_number <= self._max_restart

    def message_fate(
        self, round_number: int, sender: NodeId, receiver: NodeId
    ) -> int:
        """Decide one message's fate: ``-1`` lost, ``0`` on time, ``d > 0``
        delayed by ``d`` extra rounds (arrival at ``round + 1 + d``)."""
        model = self.model
        if model.loss > 0.0 and (
            _unit(self.seed, "loss", round_number, sender, receiver) < model.loss
        ):
            return -1
        if model.delay > 0.0 and (
            _unit(self.seed, "delay?", round_number, sender, receiver)
            < model.delay
        ):
            if model.max_delay == 1:
                return 1
            return 1 + int(
                _unit(self.seed, "delay+", round_number, sender, receiver)
                * model.max_delay
            )
        return 0

    # ------------------------------------------------------------------
    def churned_edges(self, round_number: int) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """The edges down in ``round_number``, in CSR edge order."""
        if self.model.churn <= 0.0:
            return ()
        self._refresh_churn(round_number)
        return self._churn_edges

    def edge_down(self, round_number: int, u: NodeId, v: NodeId) -> bool:
        """Whether the (undirected) edge ``{u, v}`` is down in a round."""
        if self.model.churn <= 0.0:
            return False
        self._refresh_churn(round_number)
        return _edge_key(u, v) in self._churn_keys

    def _refresh_churn(self, round_number: int) -> None:
        if round_number == self._churn_round:
            return
        churn = self.model.churn
        seed = self.seed
        down: List[Tuple[NodeId, NodeId]] = []
        keys: List[Tuple[str, str]] = []
        for u, v in self._edges:
            key = _edge_key(u, v)
            if _unit(seed, "churn", round_number, key) < churn:
                down.append((u, v))
                keys.append(key)
        self._churn_round = round_number
        self._churn_edges = tuple(down)
        self._churn_keys = frozenset(keys)
