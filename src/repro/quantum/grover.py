"""Grover search over an explicit item collection.

A thin convenience layer over the schedule-backend API
(:mod:`repro.quantum.backend`) for the common case of a uniform
superposition over a finite collection and a boolean oracle.  It exists
mostly for the unit tests and the quickstart example; the distributed
algorithms use the maximum-finding routine of
:mod:`repro.quantum.maximum_finding` directly.

Earlier revisions carried their own copy of the uniform-amplitude
construction and a private result dataclass that drifted from
:class:`repro.quantum.amplitude_amplification.AmplificationOutcome`; the
module is now a pure re-export: amplitudes come from
:func:`repro.quantum.maximum_finding.uniform_amplitudes`, the search runs
through whichever :class:`~repro.quantum.backend.ScheduleBackend` the
caller (or the process default) selects, and the result *is* an
``AmplificationOutcome`` under its historical name.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Optional, Sequence, Union

from repro.quantum.amplitude_amplification import AmplificationOutcome
from repro.quantum.backend import ScheduleBackend, resolve_schedule_backend
from repro.quantum.maximum_finding import uniform_amplitudes

Item = Hashable

#: The historical result type of :func:`grover_search`.  A Grover search
#: *is* one amplitude-amplification search, so the result type is the
#: same dataclass (``found`` / ``setup_calls`` / ``oracle_calls`` /
#: ``measurements`` / ``succeeded``); the alias keeps the public name.
GroverSearchResult = AmplificationOutcome


def grover_search(
    items: Sequence[Item],
    oracle: Callable[[Item], bool],
    rng: Optional[random.Random] = None,
    delta: float = 0.05,
    backend: Optional[Union[str, ScheduleBackend]] = None,
) -> GroverSearchResult:
    """Search ``items`` for an element satisfying ``oracle``.

    Uses a uniform initial superposition, so the promise parameter of
    Theorem 6 is ``eps = 1 / len(items)`` (a single marked item).  With
    ``m`` marked items the expected number of oracle calls is
    ``O(sqrt(len(items) / m))``.

    ``backend`` selects the schedule simulator (name, instance, or
    ``None`` for the process default); all backends return identical
    results for a fixed ``rng`` seed.
    """
    if not items:
        raise ValueError("the item collection must be non-empty")
    rng = rng if rng is not None else random.Random(0)
    return resolve_schedule_backend(backend).run_search(
        uniform_amplitudes(items),
        is_marked=oracle,
        rng=rng,
        eps=1.0 / len(items),
        delta=delta,
    )
