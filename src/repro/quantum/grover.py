"""Grover search over an explicit item collection.

A thin convenience layer over
:func:`repro.quantum.amplitude_amplification.amplitude_amplification_search`
for the common case of a uniform superposition over a finite collection and
a boolean oracle.  It exists mostly for the unit tests and the quickstart
example; the distributed algorithms use the maximum-finding routine of
:mod:`repro.quantum.maximum_finding` directly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

from repro.quantum.amplitude_amplification import (
    AmplificationOutcome,
    amplitude_amplification_search,
)

Item = Hashable


@dataclass
class GroverSearchResult:
    """Result of one Grover search."""

    found: Optional[Item]
    setup_calls: int
    oracle_calls: int
    measurements: int

    @property
    def succeeded(self) -> bool:
        """Whether a marked item was found."""
        return self.found is not None


def grover_search(
    items: Sequence[Item],
    oracle: Callable[[Item], bool],
    rng: Optional[random.Random] = None,
    delta: float = 0.05,
) -> GroverSearchResult:
    """Search ``items`` for an element satisfying ``oracle``.

    Uses a uniform initial superposition, so the promise parameter of
    Theorem 6 is ``eps = 1 / len(items)`` (a single marked item).  With
    ``m`` marked items the expected number of oracle calls is
    ``O(sqrt(len(items) / m))``.
    """
    if not items:
        raise ValueError("the item collection must be non-empty")
    rng = rng if rng is not None else random.Random(0)
    amplitude = 1.0 / math.sqrt(len(items))
    amplitudes = {item: amplitude for item in items}
    outcome: AmplificationOutcome = amplitude_amplification_search(
        amplitudes,
        is_marked=oracle,
        rng=rng,
        eps=1.0 / len(items),
        delta=delta,
    )
    return GroverSearchResult(
        found=outcome.found,
        setup_calls=outcome.setup_calls,
        oracle_calls=outcome.oracle_calls,
        measurements=outcome.measurements,
    )
