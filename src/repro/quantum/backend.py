"""Pluggable schedule backends for the quantum simulation layer.

The amplitude-amplification / maximum-finding schedule (Theorem 6 and
Corollary 1) is the hot loop of every Theorem-7 run: the *measurement
statistics* it produces are what the distributed layer converts into
CONGEST rounds, so the simulation must be exact -- but *how* the exact
statistics are computed is an implementation choice.  Mirroring the
dense/sparse execution-engine split of the CONGEST simulator
(:mod:`repro.engine`), this module makes that choice pluggable:

* ``"sampling"`` -- the reference backend.  Each amplification round
  re-derives the marked probability mass by applying the Checking
  predicate to every element of the search space (one Python call per
  element per round), exactly as written in
  :func:`repro.quantum.maximum_finding.find_maximum` and
  :func:`repro.quantum.amplitude_amplification.amplitude_amplification_search`.

* ``"batched"`` -- the fast backend.  It first evaluates the whole search
  space in one vectorized pass (a single tight loop producing the value
  vector), then serves every amplification round's Grover rotation
  statistics -- marked mass, conditioned sampling lists, attempt schedule
  -- from per-threshold tables computed at most once per distinct
  threshold.  Because the maximum-finding schedule only raises its
  threshold on success, almost every round is a table hit, turning the
  ``O(|X|)`` per-round scan into ``O(1)``.

**Byte-identical results.**  The batched backend consumes the supplied
``random.Random`` stream in exactly the same order as the sampling
backend and performs every floating-point reduction in the same
element order (marked masses are summed in Setup-superposition order,
conditioned draws go through :meth:`random.Random.choices` with the same
item/weight lists), so for a fixed seed the two backends return
**identical** :class:`~repro.quantum.maximum_finding.MaximumFindingResult`
and :class:`~repro.quantum.amplitude_amplification.AmplificationOutcome`
objects -- values, call counts, measurements, everything.  The
differential test-suite (``tests/test_quantum_backends.py``) proves this
across every registered problem and graph family, the same way the
dense/sparse engines are proven equal.

Backend selection follows the engine idiom: pass ``backend=`` (a name or
a :class:`ScheduleBackend` instance) to the quantum entry points, or flip
the process-wide default with :func:`set_default_schedule_backend` (used
by the CLI ``--backend`` flag and the benchmark harnesses; the batch
runner re-applies the parent's default in its pool workers).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple, Union

from repro.quantum.amplitude_amplification import (
    SCHEDULE_GROWTH,
    AmplificationOutcome,
    _check_normalised,
    amplitude_amplification_search,
    grover_success_probability,
    theorem6_query_budget,
)
from repro.quantum.maximum_finding import (
    MaximumFindingResult,
    find_maximum,
)

Item = Hashable


class ScheduleBackend:
    """Interface of a quantum schedule simulator.

    A backend knows how to run the two schedules of Section 2.3/2.4:

    * :meth:`run_search` -- one amplitude-amplification search for a marked
      item (Theorem 6, the exponential schedule for unknown ``P_M``);
    * :meth:`run_maximum_finding` -- the full maximum-finding procedure of
      Corollary 1 (repeated amplification against a rising threshold).

    Implementations must reproduce the reference measurement statistics
    exactly: same ``random.Random`` consumption, same floating-point
    reductions, same results.  ``name`` identifies the backend in CLI
    flags, benchmark reports and store provenance.
    """

    name: str = "abstract"

    def run_search(
        self,
        amplitudes: Mapping[Item, float],
        is_marked: Callable[[Item], bool],
        rng: random.Random,
        eps: float,
        delta: float,
        budget_constant: float = 4.0,
    ) -> AmplificationOutcome:
        """Simulate one amplitude-amplification search (Theorem 6)."""
        raise NotImplementedError

    def run_maximum_finding(
        self,
        amplitudes: Mapping[Item, float],
        value_of: Callable[[Item], float],
        eps: float,
        delta: float = 0.1,
        rng: Optional[random.Random] = None,
        budget_constant: float = 4.0,
    ) -> MaximumFindingResult:
        """Simulate the maximum-finding schedule (Corollary 1)."""
        raise NotImplementedError


class SamplingScheduleBackend(ScheduleBackend):
    """The reference per-call sampling simulation (the seed behaviour).

    Delegates to :func:`repro.quantum.maximum_finding.find_maximum` and
    :func:`repro.quantum.amplitude_amplification.amplitude_amplification_search`
    unchanged; every amplification round rescans the search space.
    """

    name = "sampling"

    def run_search(
        self,
        amplitudes: Mapping[Item, float],
        is_marked: Callable[[Item], bool],
        rng: random.Random,
        eps: float,
        delta: float,
        budget_constant: float = 4.0,
    ) -> AmplificationOutcome:
        return amplitude_amplification_search(
            amplitudes,
            is_marked=is_marked,
            rng=rng,
            eps=eps,
            delta=delta,
            budget_constant=budget_constant,
        )

    def run_maximum_finding(
        self,
        amplitudes: Mapping[Item, float],
        value_of: Callable[[Item], float],
        eps: float,
        delta: float = 0.1,
        rng: Optional[random.Random] = None,
        budget_constant: float = 4.0,
    ) -> MaximumFindingResult:
        return find_maximum(
            amplitudes,
            value_of=value_of,
            eps=eps,
            delta=delta,
            rng=rng,
            budget_constant=budget_constant,
        )


class _ThresholdTable:
    """Per-threshold Grover rotation statistics over a fixed value vector.

    For a threshold ``t`` the marked set is ``{x : f(x) > t}``.  The table
    materialises, at most once per distinct threshold, exactly what the
    sampling backend re-derives every round: the marked probability mass
    (summed in Setup-superposition order, so the float is bit-identical to
    the reference ``sum``) and the conditioned item/weight lists that
    :func:`~repro.quantum.amplitude_amplification._sample_conditioned`
    would build for a successful measurement.
    """

    def __init__(
        self,
        items: List[Item],
        weights_sq: List[float],
        values: List[float],
    ) -> None:
        self._items = items
        self._weights_sq = weights_sq
        self._values = values
        self._cache: Dict[float, Tuple[float, List[Item], List[float]]] = {}
        #: The highest threshold materialised so far and its (items,
        #: weights, values) lists.  The maximum-finding threshold only
        #: rises, and ``{f > t2}`` is a subsequence of ``{f > t1}`` for
        #: ``t2 >= t1`` in the *same* Setup-superposition order, so new
        #: thresholds filter the shrinking frontier instead of the full
        #: arrays -- same elements, same order, bit-identical sums.
        self._frontier_threshold: Optional[float] = None
        self._frontier: Tuple[List[Item], List[float], List[float]] = (
            items,
            weights_sq,
            values,
        )
        #: ``(threshold, iterations) -> sin^2((2k+1) asin(sqrt(P_M)))`` --
        #: the precomputed success probabilities; the rotation only depends
        #: on the marked mass and the iteration count, so the cache is
        #: exact (it stores the very float the reference recomputes).
        self._success: Dict[Tuple[float, int], float] = {}

    def stats_above(self, threshold: float) -> Tuple[float, List[Item], List[float]]:
        """``(marked_mass, marked_items, marked_weights)`` for ``f > threshold``."""
        entry = self._cache.get(threshold)
        if entry is None:
            advancing = self._frontier_threshold is None or (
                threshold >= self._frontier_threshold
            )
            if advancing:
                base_items, base_weights, base_values = self._frontier
            else:
                base_items = self._items
                base_weights = self._weights_sq
                base_values = self._values
            marked_items = [
                item
                for item, value in zip(base_items, base_values)
                if value > threshold
            ]
            marked_weights = [
                weight_sq
                for weight_sq, value in zip(base_weights, base_values)
                if value > threshold
            ]
            marked_values = [value for value in base_values if value > threshold]
            # ``sum`` over the prebuilt list adds the same floats in the
            # same (Setup-superposition) order as the reference generator
            # sum, so the mass is bit-identical.
            mass = sum(marked_weights)
            entry = self._cache[threshold] = (mass, marked_items, marked_weights)
            if advancing:
                self._frontier_threshold = threshold
                self._frontier = (marked_items, marked_weights, marked_values)
        return entry

    def success_probability(self, mass: float, iterations: int) -> float:
        """Cached :func:`grover_success_probability` for this schedule."""
        key = (mass, iterations)
        probability = self._success.get(key)
        if probability is None:
            probability = self._success[key] = grover_success_probability(
                mass, iterations
            )
        return probability


def _run_amplification_attempts(
    table: _ThresholdTable,
    mass: float,
    marked_items: List[Item],
    marked_weights: List[float],
    rng: random.Random,
    eps: float,
    budget: int,
) -> Tuple[Optional[Item], int, int, int]:
    """One amplitude-amplification search over precomputed statistics.

    This is the single batched copy of the [BBHT98]-style attempt loop of
    :func:`~repro.quantum.amplitude_amplification.amplitude_amplification_search`
    (iteration draw, counter updates, success draw, ``schedule_bound``
    growth), shared by :meth:`BatchedScheduleBackend.run_search` and every
    round of :meth:`BatchedScheduleBackend.run_maximum_finding` so the
    byte-identity contract has exactly one reference-mirroring loop to
    keep in lockstep.  Returns ``(found, setup_calls, oracle_calls,
    measurements)``.
    """
    setup_calls = 0
    oracle_calls = 0
    measurements = 0
    schedule_bound = 1.0
    while oracle_calls < budget:
        iterations = rng.randint(0, max(0, int(schedule_bound) - 1))
        iterations = min(iterations, budget - oracle_calls)
        setup_calls += 1 + 2 * iterations
        oracle_calls += max(1, iterations)
        measurements += 1
        success_probability = (
            table.success_probability(mass, iterations) if mass > 0.0 else 0.0
        )
        if rng.random() < success_probability:
            found = rng.choices(marked_items, weights=marked_weights)[0]
            return found, setup_calls, oracle_calls, measurements
        schedule_bound = min(
            schedule_bound * (1.0 + SCHEDULE_GROWTH) / 2.0 + 1.0,
            math.sqrt(1.0 / eps) + 1.0,
        )
    return None, setup_calls, oracle_calls, measurements


class BatchedScheduleBackend(ScheduleBackend):
    """Batched schedule simulation: precomputed rotation statistics.

    The value vector is computed in one pass over the search space (the
    sampling backend evaluates the same set during its first marked-mass
    scan, so the evaluation work is identical -- only the per-round rescans
    disappear), and every round's marked mass / conditioned sampling lists
    come from a :class:`_ThresholdTable`.  Randomness consumption and float
    reduction order replicate the reference implementation operation by
    operation; see the module docstring for the byte-identity contract.
    """

    name = "batched"

    def run_search(
        self,
        amplitudes: Mapping[Item, float],
        is_marked: Callable[[Item], bool],
        rng: random.Random,
        eps: float,
        delta: float,
        budget_constant: float = 4.0,
    ) -> AmplificationOutcome:
        _check_normalised(amplitudes)
        items = list(amplitudes)
        weights_sq = [amplitudes[item] ** 2 for item in items]
        # One vectorized predicate pass (the reference applies the predicate
        # to every element too -- inside its marked-mass sum).
        flags = [1.0 if is_marked(item) else 0.0 for item in items]
        table = _ThresholdTable(items, weights_sq, flags)
        mass, marked_items, marked_weights = table.stats_above(0.0)
        budget = theorem6_query_budget(eps, delta, constant=budget_constant)
        found, setup_calls, oracle_calls, measurements = _run_amplification_attempts(
            table, mass, marked_items, marked_weights, rng, eps, budget
        )
        return AmplificationOutcome(
            found=found,
            setup_calls=setup_calls,
            oracle_calls=oracle_calls,
            measurements=measurements,
        )

    def run_maximum_finding(
        self,
        amplitudes: Mapping[Item, float],
        value_of: Callable[[Item], float],
        eps: float,
        delta: float = 0.1,
        rng: Optional[random.Random] = None,
        budget_constant: float = 4.0,
    ) -> MaximumFindingResult:
        if not amplitudes:
            raise ValueError("the amplitude map must be non-empty")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must lie in (0, 1], got {eps}")
        rng = rng if rng is not None else random.Random(0)

        items = list(amplitudes)
        weights_sq = [amplitudes[item] ** 2 for item in items]
        # Equivalent to _check_normalised, reusing the precomputed squares:
        # ``sum(weights_sq)`` adds the same floats in the same dict order
        # as the reference's generator sum, so the acceptance boundary
        # (and the reported total) is bit-identical.
        total = sum(weights_sq)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"amplitudes must be normalised (got total mass {total})")
        if min(amplitudes.values()) < 0:
            raise ValueError("amplitudes must be non-negative reals")

        # Initial Setup sample (same draw as the reference), then the
        # vectorized value pass.  Evaluation order matches the reference
        # exactly: the sampled item first (its value is read out
        # immediately), then every remaining item in Setup-superposition
        # order (the reference touches them in its first marked-mass scan).
        best_item = rng.choices(items, weights=weights_sq)[0]
        value_cache: Dict[Item, float] = {best_item: value_of(best_item)}
        for item in items:
            if item not in value_cache:
                value_cache[item] = value_of(item)
        values = [value_cache[item] for item in items]
        table = _ThresholdTable(items, weights_sq, values)

        best_value = value_cache[best_item]
        setup_calls = 1
        evaluation_calls = 1
        measurements = 1
        amplification_rounds = 0

        overall_budget = max(
            4, 4 * theorem6_query_budget(eps, delta, constant=budget_constant)
        )

        eps_prime = 0.5
        while evaluation_calls < overall_budget:
            mass, marked_items, marked_weights = table.stats_above(best_value)
            round_eps = max(eps_prime, eps)
            budget = theorem6_query_budget(round_eps, delta, constant=budget_constant)
            found, round_setup, round_oracle, round_measurements = (
                _run_amplification_attempts(
                    table, mass, marked_items, marked_weights, rng,
                    round_eps, budget,
                )
            )
            setup_calls += round_setup
            evaluation_calls += round_oracle
            measurements += round_measurements
            amplification_rounds += 1

            if found is not None:
                best_item = found
                best_value = value_cache[best_item]
                # One extra Evaluation to read out the new value.
                evaluation_calls += 1
            else:
                if eps_prime <= eps:
                    break
                eps_prime /= 2.0

        return MaximumFindingResult(
            best_item=best_item,
            best_value=best_value,
            setup_calls=setup_calls,
            evaluation_calls=evaluation_calls,
            measurements=measurements,
            rounds_of_amplification=amplification_rounds,
        )


#: The backend registry the CLI / benchmarks / framework draw from.
SCHEDULE_BACKENDS: Dict[str, ScheduleBackend] = {
    SamplingScheduleBackend.name: SamplingScheduleBackend(),
    BatchedScheduleBackend.name: BatchedScheduleBackend(),
}

#: Stable name tuple for argparse ``choices``.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(SCHEDULE_BACKENDS))

#: Process-wide default, toggled by :func:`set_default_schedule_backend`
#: (the CLI ``--backend`` flag, the benchmark conftest); ``"sampling"``
#: is the seed behaviour.
_DEFAULT_BACKEND = SamplingScheduleBackend.name


def validate_backend_name(name: str) -> str:
    """Return ``name`` if it is a registered backend, else raise."""
    if name not in SCHEDULE_BACKENDS:
        known = ", ".join(BACKEND_NAMES)
        raise ValueError(f"unknown schedule backend {name!r} (available: {known})")
    return name


def set_default_schedule_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous default."""
    global _DEFAULT_BACKEND
    validate_backend_name(name)
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous


def get_default_schedule_backend() -> str:
    """The current process-wide default schedule backend name."""
    return _DEFAULT_BACKEND


def resolve_schedule_backend(
    backend: Optional[Union[str, ScheduleBackend]] = None,
) -> ScheduleBackend:
    """Map a backend name / instance / ``None`` to a backend object.

    ``None`` selects the process-wide default (see
    :func:`set_default_schedule_backend`).
    """
    if backend is None:
        return SCHEDULE_BACKENDS[_DEFAULT_BACKEND]
    if isinstance(backend, ScheduleBackend):
        return backend
    return SCHEDULE_BACKENDS[validate_backend_name(backend)]
