"""Cost model: from quantum query counts to CONGEST round counts (Theorem 7).

Theorem 7 (distributed quantum optimization) states that if Initialization
takes ``T0`` rounds and each application of Setup / Evaluation (or their
inverses) takes ``T`` rounds, then the whole optimization takes
``T0 + O(sqrt(log(1/delta) / eps)) * T`` rounds.  The simulation layer
counts the actual number of Setup and Evaluation applications performed by
the (exactly simulated) amplitude-amplification schedule; this module turns
those counts into round counts, message counts and per-node memory
estimates, which is what the benchmark harnesses report next to the paper's
formulas.

The counts arrive from whichever schedule backend ran the simulation
(:mod:`repro.quantum.backend`); since backends are byte-identical, the
cost model is backend-agnostic by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.congest.metrics import ExecutionMetrics


@dataclass
class QuantumResourceCount:
    """Raw resource counts of one distributed quantum optimization run."""

    setup_calls: int = 0
    evaluation_calls: int = 0
    measurements: int = 0

    def merged(self, other: "QuantumResourceCount") -> "QuantumResourceCount":
        """Sum two resource counts (sequential composition)."""
        return QuantumResourceCount(
            setup_calls=self.setup_calls + other.setup_calls,
            evaluation_calls=self.evaluation_calls + other.evaluation_calls,
            measurements=self.measurements + other.measurements,
        )


@dataclass
class QuantumCostModel:
    """Per-operation CONGEST costs of a distributed quantum optimization.

    ``initialization`` is charged once; ``setup`` and ``evaluation`` are
    charged per application (the inverse of an operation costs the same as
    the operation itself, and the simulation's call counts already include
    inverses).
    """

    initialization: ExecutionMetrics
    setup: ExecutionMetrics
    evaluation: ExecutionMetrics
    internal_register_bits: int = 0

    def total_metrics(self, counts: QuantumResourceCount) -> ExecutionMetrics:
        """Total execution metrics implied by the given call counts."""
        total = ExecutionMetrics(
            rounds=self.initialization.rounds,
            messages=self.initialization.messages,
            total_bits=self.initialization.total_bits,
            max_edge_bits_per_round=self.initialization.max_edge_bits_per_round,
            bandwidth_limit_bits=self.initialization.bandwidth_limit_bits,
            max_node_memory_bits=self.initialization.max_node_memory_bits,
        )
        total.record_phase("initialization", self.initialization.rounds)
        setup_total = self.setup.scaled(counts.setup_calls)
        setup_total.record_phase("setup", setup_total.rounds)
        evaluation_total = self.evaluation.scaled(counts.evaluation_calls)
        evaluation_total.record_phase("evaluation", evaluation_total.rounds)
        total = total.merged(setup_total).merged(evaluation_total)
        total.max_node_memory_bits = max(
            total.max_node_memory_bits, self.internal_register_bits
        )
        return total

    def total_rounds(self, counts: QuantumResourceCount) -> int:
        """Total number of CONGEST rounds implied by the given call counts."""
        return (
            self.initialization.rounds
            + counts.setup_calls * self.setup.rounds
            + counts.evaluation_calls * self.evaluation.rounds
        )


def leader_memory_bits(num_nodes: int, eps: float) -> int:
    """Memory used by the leader node, per the proof of Theorem 7.

    The leader stores the internal register (``O(log |X|)`` qubits, with
    ``|X| <= n``) once per outcome of the ``O(log(1/eps))`` amplitude
    amplification stages: ``O(log n * log(1/eps))`` qubits, which is
    ``O((log n)^2)`` for ``eps >= 1 / poly(n)`` -- the memory bound stated
    in Theorem 1.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must lie in (0, 1], got {eps}")
    log_n = max(1, math.ceil(math.log2(num_nodes + 1)))
    stages = max(1, math.ceil(math.log2(1.0 / eps)))
    return log_n * stages
