"""A small dense state-vector simulator for register-level unit checks.

The distributed algorithms themselves are simulated with the structured
branch representation of :mod:`repro.qcongest.branch_state` (which scales to
hundreds of network nodes); the dense simulator here exists to validate the
register-level building blocks the paper relies on -- in particular the
*CNOT copy* of Section 2 (``|u>|v> -> |u>|u xor v>``), which is how the
Setup procedure of Proposition 2 broadcasts the internal register over the
network, and the phase/diffusion steps of amplitude amplification on tiny
instances.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class StateVector:
    """A dense state vector over ``num_qubits`` qubits.

    Qubit 0 is the most significant bit of the basis-state index, so the
    basis label of index ``i`` is the ``num_qubits``-bit binary expansion of
    ``i`` read left to right.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        if num_qubits > 20:
            raise ValueError(
                "the dense simulator is meant for register-level unit checks; "
                f"{num_qubits} qubits would allocate 2^{num_qubits} amplitudes"
            )
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(2 ** num_qubits, dtype=np.complex128)
        self.amplitudes[0] = 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_basis_state(cls, bits: Sequence[int]) -> "StateVector":
        """A computational-basis state given by a bit sequence."""
        state = cls(len(bits))
        state.amplitudes[0] = 0.0
        state.amplitudes[_bits_to_index(bits)] = 1.0
        return state

    @classmethod
    def uniform_superposition(cls, num_qubits: int) -> "StateVector":
        """The uniform superposition over all basis states."""
        state = cls(num_qubits)
        state.amplitudes[:] = 1.0 / math.sqrt(2 ** num_qubits)
        return state

    def copy(self) -> "StateVector":
        """An independent copy."""
        other = StateVector(self.num_qubits)
        other.amplitudes = self.amplitudes.copy()
        return other

    # ------------------------------------------------------------------
    def probability_of(self, bits: Sequence[int]) -> float:
        """Probability of measuring the given basis state."""
        return float(abs(self.amplitudes[_bits_to_index(bits)]) ** 2)

    def probabilities(self) -> Dict[Tuple[int, ...], float]:
        """Mapping from basis labels to measurement probabilities (> 1e-12)."""
        result: Dict[Tuple[int, ...], float] = {}
        for index, amplitude in enumerate(self.amplitudes):
            probability = float(abs(amplitude) ** 2)
            if probability > 1e-12:
                result[_index_to_bits(index, self.num_qubits)] = probability
        return result

    def is_normalised(self, tolerance: float = 1e-9) -> bool:
        """Whether the squared amplitudes sum to 1."""
        return abs(float(np.sum(np.abs(self.amplitudes) ** 2)) - 1.0) < tolerance

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def apply_hadamard(self, qubit: int) -> None:
        """Apply a Hadamard gate to ``qubit``."""
        self._apply_single_qubit(
            qubit,
            np.array([[1, 1], [1, -1]], dtype=np.complex128) / math.sqrt(2),
        )

    def apply_x(self, qubit: int) -> None:
        """Apply a Pauli-X (NOT) gate to ``qubit``."""
        self._apply_single_qubit(
            qubit, np.array([[0, 1], [1, 0]], dtype=np.complex128)
        )

    def apply_z(self, qubit: int) -> None:
        """Apply a Pauli-Z gate to ``qubit``."""
        self._apply_single_qubit(
            qubit, np.array([[1, 0], [0, -1]], dtype=np.complex128)
        )

    def apply_cnot(self, control: int, target: int) -> None:
        """Apply a controlled-NOT gate."""
        if control == target:
            raise ValueError("control and target must differ")
        self._check_qubit(control)
        self._check_qubit(target)
        new_amplitudes = self.amplitudes.copy()
        for index in range(len(self.amplitudes)):
            if _bit_of(index, control, self.num_qubits) == 1:
                flipped = index ^ (1 << (self.num_qubits - 1 - target))
                new_amplitudes[flipped] = self.amplitudes[index]
        self.amplitudes = new_amplitudes

    def apply_phase_oracle(self, predicate: Callable[[Tuple[int, ...]], bool]) -> None:
        """Flip the sign of every basis state satisfying ``predicate``."""
        for index in range(len(self.amplitudes)):
            if predicate(_index_to_bits(index, self.num_qubits)):
                self.amplitudes[index] *= -1

    def apply_diffusion(self) -> None:
        """Reflect about the uniform superposition (the Grover diffusion)."""
        mean = np.mean(self.amplitudes)
        self.amplitudes = 2 * mean - self.amplitudes

    # ------------------------------------------------------------------
    def measure(self, rng) -> Tuple[int, ...]:
        """Sample a basis state according to the Born rule."""
        probabilities = np.abs(self.amplitudes) ** 2
        probabilities = probabilities / probabilities.sum()
        index = rng.choices(range(len(self.amplitudes)), weights=probabilities)[0]
        return _index_to_bits(index, self.num_qubits)

    # ------------------------------------------------------------------
    def _apply_single_qubit(self, qubit: int, matrix: np.ndarray) -> None:
        self._check_qubit(qubit)
        shift = self.num_qubits - 1 - qubit
        mask = 1 << shift
        amplitudes = self.amplitudes
        new_amplitudes = amplitudes.copy()
        for index in range(len(amplitudes)):
            if index & mask:
                continue
            zero_index, one_index = index, index | mask
            a0, a1 = amplitudes[zero_index], amplitudes[one_index]
            new_amplitudes[zero_index] = matrix[0, 0] * a0 + matrix[0, 1] * a1
            new_amplitudes[one_index] = matrix[1, 0] * a0 + matrix[1, 1] * a1
        self.amplitudes = new_amplitudes

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit index {qubit} out of range for {self.num_qubits} qubits"
            )


def cnot_copy_register(state: StateVector, source: Sequence[int], target: Sequence[int]) -> None:
    """Apply the CNOT-copy operation ``|u>|v> -> |u>|u xor v>``.

    ``source`` and ``target`` are equal-length lists of qubit indices.  This
    is the operation the paper uses to "classically copy" the content of the
    internal register into a neighbour's register during Setup
    (Proposition 2); on a basis state it duplicates the source bits, and on
    a superposition it entangles the target with the source (no cloning).
    """
    if len(source) != len(target):
        raise ValueError("source and target registers must have the same size")
    if set(source) & set(target):
        raise ValueError("source and target registers must be disjoint")
    for control, controlled in zip(source, target):
        state.apply_cnot(control, controlled)


def _bits_to_index(bits: Sequence[int]) -> int:
    index = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit}")
        index = (index << 1) | bit
    return index


def _index_to_bits(index: int, num_qubits: int) -> Tuple[int, ...]:
    return tuple((index >> (num_qubits - 1 - position)) & 1 for position in range(num_qubits))


def _bit_of(index: int, qubit: int, num_qubits: int) -> int:
    return (index >> (num_qubits - 1 - qubit)) & 1
