"""Amplitude amplification (Theorem 6, [BHT98]) -- analytics and simulation.

Amplitude amplification generalises Grover search: given a unitary ``Setup``
preparing ``|psi> = sum_x alpha_x |x>`` and a ``Checking`` oracle marking a
subset ``M``, the Grover iterate ``G = (2|psi><psi| - I) O_M`` rotates the
state inside the two-dimensional subspace spanned by the marked and unmarked
components of ``|psi>``.  Writing ``P_M = sum_{x in M} |alpha_x|^2`` and
``theta = asin(sqrt(P_M))``, after ``k`` iterations the probability of
measuring a marked element is ``sin^2((2k + 1) theta)``.

This module provides:

* the exact rotation algebra (:func:`grover_success_probability`,
  :func:`optimal_grover_iterations`);
* the query budget of Theorem 6 (:func:`theorem6_query_budget`) -- the
  number of ``Setup`` / ``Checking`` applications sufficient to decide
  whether ``M`` is empty with failure probability ``delta`` under the
  promise ``P_M = 0`` or ``P_M >= eps``;
* an exact *sampling* simulation (:func:`amplitude_amplification_search`)
  following the standard exponential-search schedule ([BBHT98]-style) for
  an unknown ``P_M``: it reproduces the measurement statistics exactly
  (success and failure included) while counting every oracle application,
  so the distributed layer can convert the count into CONGEST rounds.

This sampling simulation doubles as the reference implementation of the
``"sampling"`` schedule backend (:mod:`repro.quantum.backend`); the
``"batched"`` backend replays the identical schedule from precomputed
rotation statistics and must stay bit-compatible with the loop in
:func:`amplitude_amplification_search` -- the differential suite enforces
it, but edit the two together.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple

Item = Hashable

#: Growth factor of the exponential-search schedule for unknown ``P_M``
#: (any value in (1, 4/3) works; 6/5 is the classical choice of [BBHT98]).
SCHEDULE_GROWTH = 1.2


def grover_success_probability(initial_probability: float, iterations: int) -> float:
    """Probability of measuring a marked item after ``iterations`` iterations.

    ``initial_probability`` is ``P_M``, the marked mass of the initial
    superposition.  The formula is the exact rotation
    ``sin^2((2k + 1) asin(sqrt(P_M)))``.
    """
    if not 0.0 <= initial_probability <= 1.0:
        raise ValueError(f"P_M must lie in [0, 1], got {initial_probability}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    theta = math.asin(math.sqrt(initial_probability))
    return math.sin((2 * iterations + 1) * theta) ** 2


def optimal_grover_iterations(initial_probability: float) -> int:
    """The iteration count maximising the success probability (~ pi/4 sqrt(1/P_M))."""
    if not 0.0 < initial_probability <= 1.0:
        raise ValueError(f"P_M must lie in (0, 1], got {initial_probability}")
    theta = math.asin(math.sqrt(initial_probability))
    return max(0, int(round(math.pi / (4 * theta) - 0.5)))


def theorem6_query_budget(eps: float, delta: float, constant: float = 4.0) -> int:
    """Setup/Checking applications allowed by Theorem 6.

    Theorem 6 states that ``O(sqrt(log(1/delta) / eps))`` applications of
    ``Setup`` and ``Checking`` (and their inverses) suffice to decide
    whether ``M`` is empty with failure probability at most ``delta`` under
    the promise ``P_M = 0`` or ``P_M >= eps``.  The ``constant`` pins the
    hidden constant of the O-notation; the simulation in
    :func:`amplitude_amplification_search` aborts (declaring ``M`` empty)
    once the budget is exhausted, exactly as the paper's Corollary 1
    prescribes for its worst-case bound.
    """
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must lie in (0, 1], got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return max(1, math.ceil(constant * math.sqrt(math.log(1.0 / delta) / eps)))


@dataclass
class AmplificationOutcome:
    """Result of one amplitude-amplification search."""

    found: Optional[Item]
    setup_calls: int
    oracle_calls: int
    measurements: int

    @property
    def succeeded(self) -> bool:
        """Whether a marked item was produced."""
        return self.found is not None


def amplitude_amplification_search(
    amplitudes: Mapping[Item, float],
    is_marked: Callable[[Item], bool],
    rng: random.Random,
    eps: float,
    delta: float,
    budget_constant: float = 4.0,
) -> AmplificationOutcome:
    """Search for a marked item by exact simulation of amplitude amplification.

    Parameters
    ----------
    amplitudes:
        The (real, non-negative) amplitudes ``alpha_x`` of the initial
        superposition produced by Setup; they must be normalised
        (``sum |alpha_x|^2 = 1``).
    is_marked:
        The Checking predicate.
    rng:
        Source of randomness for the simulated measurements.
    eps, delta:
        The promise and failure-probability parameters of Theorem 6;
        together with ``budget_constant`` they fix the query budget after
        which the search gives up and declares ``M`` empty.

    Returns
    -------
    AmplificationOutcome
        The found item (or ``None``), plus exact counts of Setup
        applications, oracle (Checking) applications and measurements --
        the quantities the distributed cost model converts into rounds.
    """
    _check_normalised(amplitudes)
    marked_mass = sum(
        weight ** 2 for item, weight in amplitudes.items() if is_marked(item)
    )
    budget = theorem6_query_budget(eps, delta, constant=budget_constant)

    setup_calls = 0
    oracle_calls = 0
    measurements = 0
    schedule_bound = 1.0

    while oracle_calls < budget:
        iterations = rng.randint(0, max(0, int(schedule_bound) - 1))
        iterations = min(iterations, budget - oracle_calls)
        # One Setup to prepare |psi>, `iterations` Grover iterates (each uses
        # one oracle call and one reflection built from Setup and its
        # inverse), then a measurement.
        setup_calls += 1 + 2 * iterations
        oracle_calls += max(1, iterations)
        measurements += 1

        success_probability = (
            grover_success_probability(marked_mass, iterations)
            if marked_mass > 0.0
            else 0.0
        )
        if rng.random() < success_probability:
            found = _sample_conditioned(amplitudes, is_marked, True, rng)
            return AmplificationOutcome(
                found=found,
                setup_calls=setup_calls,
                oracle_calls=oracle_calls,
                measurements=measurements,
            )
        schedule_bound = min(
            schedule_bound * (1.0 + SCHEDULE_GROWTH) / 2.0 + 1.0,
            math.sqrt(1.0 / eps) + 1.0,
        )

    return AmplificationOutcome(
        found=None,
        setup_calls=setup_calls,
        oracle_calls=oracle_calls,
        measurements=measurements,
    )


def _sample_conditioned(
    amplitudes: Mapping[Item, float],
    is_marked: Callable[[Item], bool],
    marked: bool,
    rng: random.Random,
) -> Item:
    """Sample an item from the initial distribution conditioned on markedness.

    After the Grover rotation the conditional distribution *within* the
    marked (resp. unmarked) subspace is unchanged, so conditioning the
    original Born distribution is exact.
    """
    items = [item for item in amplitudes if is_marked(item) == marked]
    weights = [amplitudes[item] ** 2 for item in items]
    total = sum(weights)
    if total <= 0.0:
        raise ValueError("cannot sample from an empty subspace")
    return rng.choices(items, weights=weights)[0]


def _check_normalised(amplitudes: Mapping[Item, float]) -> None:
    if not amplitudes:
        raise ValueError("the amplitude map must be non-empty")
    total = sum(weight ** 2 for weight in amplitudes.values())
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"amplitudes must be normalised (got total mass {total})")
    if any(weight < 0 for weight in amplitudes.values()):
        raise ValueError("amplitudes must be non-negative reals")
