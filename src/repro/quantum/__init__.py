"""Centralized quantum primitives: amplitude amplification and optimization.

The paper's distributed algorithms are built on "quantum generic search"
(Section 2.3) and its optimization variant (Section 2.4).  This subpackage
provides those primitives in the *centralized* setting, with two faces:

* **exact analytics** -- the Grover rotation algebra
  (:mod:`repro.quantum.amplitude_amplification`): success probability after
  ``k`` iterations, optimal iteration counts, and the query budgets of
  Theorem 6 and Corollary 1;
* **exact sampling simulation** -- because the states appearing in the
  paper's algorithms always live in the two-dimensional span of the
  "marked" and "unmarked" components of the initial superposition, the
  measurement statistics after any number of Grover iterations can be
  sampled exactly without building exponential state vectors.  The search
  (:mod:`repro.quantum.grover`) and maximum-finding
  (:mod:`repro.quantum.maximum_finding`) routines use this to reproduce the
  paper's algorithms faithfully, including their failure probabilities,
  while counting every oracle (Setup / Evaluation) application so that the
  distributed layer can convert query counts into CONGEST rounds
  (:mod:`repro.quantum.cost_model`).

Both faces are served through a pluggable **schedule backend**
(:mod:`repro.quantum.backend`): the ``"sampling"`` backend is the
per-call reference simulation, the ``"batched"`` backend precomputes the
exact Grover rotation statistics over the whole search space and serves
every amplification round from per-threshold tables.  The two are proven
byte-identical for a fixed seed, so backend choice (CLI ``--backend``,
:func:`~repro.quantum.backend.set_default_schedule_backend`) trades
nothing but wall-clock.

A small dense state-vector simulator (:mod:`repro.quantum.state`) is also
provided for register-level unit checks such as the CNOT-copy operation of
Section 2 (``|u>|v> -> |u>|u xor v>``), which is how the Setup procedure
broadcasts the search register over the network.
"""

from repro.quantum.amplitude_amplification import (
    AmplificationOutcome,
    amplitude_amplification_search,
    grover_success_probability,
    optimal_grover_iterations,
    theorem6_query_budget,
)
from repro.quantum.backend import (
    BACKEND_NAMES,
    SCHEDULE_BACKENDS,
    BatchedScheduleBackend,
    SamplingScheduleBackend,
    ScheduleBackend,
    get_default_schedule_backend,
    resolve_schedule_backend,
    set_default_schedule_backend,
    validate_backend_name,
)
from repro.quantum.cost_model import QuantumCostModel, QuantumResourceCount
from repro.quantum.grover import GroverSearchResult, grover_search
from repro.quantum.maximum_finding import (
    MaximumFindingResult,
    find_maximum,
    uniform_amplitudes,
)
from repro.quantum.state import StateVector, cnot_copy_register

__all__ = [
    "grover_success_probability",
    "optimal_grover_iterations",
    "theorem6_query_budget",
    "amplitude_amplification_search",
    "AmplificationOutcome",
    "ScheduleBackend",
    "SamplingScheduleBackend",
    "BatchedScheduleBackend",
    "SCHEDULE_BACKENDS",
    "BACKEND_NAMES",
    "resolve_schedule_backend",
    "get_default_schedule_backend",
    "set_default_schedule_backend",
    "validate_backend_name",
    "grover_search",
    "GroverSearchResult",
    "find_maximum",
    "uniform_amplitudes",
    "MaximumFindingResult",
    "QuantumCostModel",
    "QuantumResourceCount",
    "StateVector",
    "cnot_copy_register",
]
