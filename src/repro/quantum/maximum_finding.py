"""Quantum maximum finding (Corollary 1, in the style of Durr-Hoyer [DHHM06]).

Corollary 1 of the paper turns amplitude amplification into an optimization
primitive: to maximise ``f`` over the support of the Setup superposition,
repeatedly amplitude-amplify the set ``{x : f(x) > f(a)}`` of elements
beating the current best ``a``, replace ``a`` on success, and halve the
assumed marked mass ``eps'`` on failure; abort once the total resources
exceed the worst-case budget and output the current best.

The implementation simulates the procedure *exactly* (the measurement
statistics of every amplitude-amplification attempt follow the true Grover
rotation), and counts every application of ``Setup`` and of the ``Evaluation``
oracle.  The distributed layer (Theorem 7) multiplies those counts by the
CONGEST round cost of the corresponding distributed procedures.

:func:`find_maximum` is the **reference** schedule simulation -- the
``"sampling"`` backend of :mod:`repro.quantum.backend` delegates here
verbatim, and the ``"batched"`` backend is differentially tested to
replicate its randomness consumption, float reductions and results bit
for bit.  Treat any change to the loop below as a change to the backend
contract: the batched implementation must be updated in lockstep.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.quantum.amplitude_amplification import (
    amplitude_amplification_search,
    theorem6_query_budget,
)

Item = Hashable


@dataclass
class MaximumFindingResult:
    """Result of one run of the quantum maximum-finding procedure."""

    best_item: Item
    best_value: float
    setup_calls: int
    evaluation_calls: int
    measurements: int
    rounds_of_amplification: int

    def is_maximum(self, true_maximum: float) -> bool:
        """Whether the returned value equals the given true maximum."""
        return self.best_value == true_maximum


def find_maximum(
    amplitudes: Mapping[Item, float],
    value_of: Callable[[Item], float],
    eps: float,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    budget_constant: float = 4.0,
) -> MaximumFindingResult:
    """Maximise ``value_of`` over the support of ``amplitudes``.

    Parameters
    ----------
    amplitudes:
        Normalised, non-negative amplitudes of the Setup superposition.
    value_of:
        The function ``f`` to maximise (the Evaluation oracle).  It is
        called at most once per distinct item and the result is cached, so
        an expensive distributed evaluation is only paid once per item; the
        *counts* still reflect every quantum application.
    eps:
        A lower bound on ``P_opt``, the probability mass of the maximisers
        under the Setup distribution (``d / 2n`` for the paper's final
        algorithm, ``1 / n`` for the simpler one).
    delta:
        Target failure probability.
    rng:
        Randomness source for the simulated measurements.
    budget_constant:
        Hidden constant of the O-notation in Theorem 6 / Corollary 1.

    Returns
    -------
    MaximumFindingResult
        The best element found and exact Setup / Evaluation call counts.
    """
    if not amplitudes:
        raise ValueError("the amplitude map must be non-empty")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must lie in (0, 1], got {eps}")
    rng = rng if rng is not None else random.Random(0)

    cache: Dict[Item, float] = {}

    def cached_value(item: Item) -> float:
        if item not in cache:
            cache[item] = value_of(item)
        return cache[item]

    # Start from a sample of the Setup distribution (one Setup application
    # and one Evaluation to learn its value).
    items = list(amplitudes)
    weights = [amplitudes[item] ** 2 for item in items]
    best_item = rng.choices(items, weights=weights)[0]
    best_value = cached_value(best_item)
    setup_calls = 1
    evaluation_calls = 1
    measurements = 1
    amplification_rounds = 0

    # Overall resource cap, as in the proof of Corollary 1: abort and output
    # the current maximum once too many resources have been used.
    overall_budget = max(
        4, 4 * theorem6_query_budget(eps, delta, constant=budget_constant)
    )

    eps_prime = 0.5
    while evaluation_calls < overall_budget:
        def beats_best(item: Item) -> bool:
            return cached_value(item) > best_value

        outcome = amplitude_amplification_search(
            amplitudes,
            is_marked=beats_best,
            rng=rng,
            eps=max(eps_prime, eps),
            delta=delta,
            budget_constant=budget_constant,
        )
        setup_calls += outcome.setup_calls
        evaluation_calls += outcome.oracle_calls
        measurements += outcome.measurements
        amplification_rounds += 1

        if outcome.found is not None:
            best_item = outcome.found
            best_value = cached_value(best_item)
            # One extra Evaluation to read out the new value.
            evaluation_calls += 1
        else:
            if eps_prime <= eps:
                break
            eps_prime /= 2.0

    return MaximumFindingResult(
        best_item=best_item,
        best_value=best_value,
        setup_calls=setup_calls,
        evaluation_calls=evaluation_calls,
        measurements=measurements,
        rounds_of_amplification=amplification_rounds,
    )


def uniform_amplitudes(items) -> Dict[Item, float]:
    """Uniform Setup amplitudes over ``items`` (the paper's choice)."""
    items = list(items)
    if not items:
        raise ValueError("need at least one item")
    weight = 1.0 / math.sqrt(len(items))
    return {item: weight for item in items}


def expected_evaluation_calls(eps: float, delta: float = 0.1, constant: float = 4.0) -> int:
    """The worst-case Evaluation budget of Corollary 1: ``O(sqrt(log(1/delta)/eps))``.

    Used by the analytic cost model and by the benchmark fits.
    """
    return 4 * theorem6_query_budget(eps, delta, constant=constant)
