"""Command-line interface: run the paper's algorithms from a shell.

Examples
--------
Compute the diameter of a generated graph with every algorithm::

    python -m repro diameter --family clique_chain --nodes 24 --seed 1

Run only the quantum 3/2-approximation::

    python -m repro approx --family random_sparse --nodes 60 --quantum

Print Table 1 evaluated at a given size::

    python -m repro table1 --nodes 100000 --diameter 50

Run on the event-driven execution engine (idle nodes are skipped; same
results, asymptotically faster for wave-style algorithms)::

    python -m repro diameter --family clique_chain --nodes 24 --engine sparse

Sweep a grid of graph families and sizes over the standard algorithms,
fanned out over 4 worker processes (records are byte-identical to a
serial run)::

    python -m repro sweep --families cycle,clique_chain --sizes 24,48,96 \
        --algorithms classical_exact,two_approx --jobs 4

Persist the records (plus run provenance) to an append-only JSONL store,
resume it after an interruption, and export the result::

    python -m repro sweep --families cycle --sizes 48,96 --out run.jsonl
    python -m repro sweep --families cycle --sizes 48,96 --out run.jsonl --resume
    python -m repro export --store run.jsonl --format csv --out run.csv

Run every registered Theorem-7 quantum problem (exact diameter, the
3/2-approximation, exact radius, single-source eccentricity) on the
batched schedule backend, persisting records like a sweep (the stores of
``quantum`` and ``sweep`` are interoperable -- same task keys, same seed
streams)::

    python -m repro quantum --list
    python -m repro quantum --families clique_chain --sizes 24,48 \
        --backend batched --out quantum.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.algorithms import (
    run_classical_exact_diameter,
    run_classical_two_approximation,
    run_hprw_three_halves_approximation,
)
from repro.analysis.sweep import run_sweep_grid, sweep_table
from repro.analysis.tables import render_table, render_table1
from repro.congest import Network
from repro.core import quantum_exact_diameter, quantum_three_halves_diameter
from repro.core.problems import QUANTUM_PROBLEMS, quantum_problem_names
from repro.engine import ENGINE_NAMES
from repro.faults import FaultModel, set_default_fault_model
from repro.graphs import generators
from repro.quantum.backend import BACKEND_NAMES, set_default_schedule_backend
from repro.runner import (
    BatchRunner,
    SWEEP_ALGORITHMS,
    grid,
    resolve_algorithms,
    sweep_algorithm_for_problem,
    task_seed,
)
from repro.store import (
    EXPORT_FORMATS,
    ExperimentStore,
    ExperimentStoreError,
    export_records,
    render_records,
)
from repro.tier import TIER_NAMES, set_default_tier


def _build_graph(args: argparse.Namespace):
    if args.diameter is not None and args.family == "controlled":
        return generators.diameter_controlled_graph(
            args.nodes, args.diameter, seed=args.seed
        )
    return generators.family_for_sweep(args.family, args.nodes, seed=args.seed)


@contextlib.contextmanager
def _schedule_backend(name: Optional[str]):
    """Temporarily select the process-wide quantum schedule backend.

    Process-wide so that the batch runner ships the selection to its pool
    workers; restored afterwards so in-process callers of :func:`main`
    (tests, notebooks) do not inherit a leaked default.  Results are
    backend-independent (byte-identical), so the flag only affects
    wall-clock.
    """
    if name is None:
        yield
        return
    previous = set_default_schedule_backend(name)
    try:
        yield
    finally:
        set_default_schedule_backend(previous)


@contextlib.contextmanager
def _compute_tier(name: Optional[str]):
    """Temporarily select the process-wide compute tier.

    Mirrors :func:`_schedule_backend`: process-wide so the batch runner
    ships the selection to its pool workers, restored afterwards so
    in-process callers of :func:`main` do not inherit a leaked default.
    Results are tier-independent (byte-identical), so the flag only
    affects wall-clock.
    """
    if name is None:
        yield
        return
    previous = set_default_tier(name)
    try:
        yield
    finally:
        set_default_tier(previous)


@contextlib.contextmanager
def _fault_model(model: Optional[FaultModel]):
    """Temporarily select the process-wide default fault model.

    Mirrors :func:`_schedule_backend`: process-wide so the batch runner
    ships the model to its pool workers, restored afterwards so
    in-process callers of :func:`main` do not inherit a leaked default.
    Unlike the backend/tier selections this one *changes* results -- that
    is the point -- but deterministically: the same flags and seeds
    reproduce the same faulty records.
    """
    if model is None:
        yield
        return
    previous = set_default_fault_model(model)
    try:
        yield
    finally:
        set_default_fault_model(previous)


def _fault_model_from_args(args: argparse.Namespace) -> Optional[FaultModel]:
    """Build the fault model selected by the ``--loss/--crash/...`` flags.

    Returns ``None`` (leave the process default alone) when no flag asks
    for an actual fault: probabilities at zero and no fault timeout.  May
    raise ``ValueError`` for out-of-range values (reported as usage
    errors by the caller).
    """
    if not (
        args.loss or args.delay or args.crash or args.churn
        or args.fault_timeout is not None
    ):
        return None
    return FaultModel(
        loss=args.loss,
        delay=args.delay,
        max_delay=args.max_delay,
        crash=args.crash,
        crash_window=args.crash_window,
        down_rounds=args.down_rounds,
        churn=args.churn,
        timeout=args.fault_timeout,
        seed=args.fault_seed,
    )


def _quantum_seeds(seed: int):
    """Independent network / schedule seed streams for a quantum run.

    One user-facing ``--seed`` must not feed the graph construction, the
    CONGEST node randomness *and* the quantum measurement randomness with
    the same raw value (the streams would replay each other); mirror the
    sweep command's graph-vs-algorithm split.
    """
    return (
        task_seed(seed, "quantum-network-stream"),
        task_seed(seed, "quantum-schedule-stream"),
    )


def _cmd_diameter(args: argparse.Namespace) -> int:
    with _compute_tier(args.tier):
        graph = _build_graph(args)
        truth = graph.compile().diameter()
        rows = []

        classical = run_classical_exact_diameter(
            Network(graph, seed=args.seed, engine=args.engine)
        )
        rows.append(
            ["classical exact [PRT12/HW12]", classical.diameter, classical.rounds]
        )

        network_seed, schedule_seed = _quantum_seeds(args.seed)
        quantum = quantum_exact_diameter(
            Network(graph, seed=network_seed, engine=args.engine),
            oracle_mode=args.oracle_mode, seed=schedule_seed, backend=args.backend,
        )
        rows.append(["quantum exact (Theorem 1)", quantum.diameter, quantum.rounds])

    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}, true diameter={truth}")
    print(render_table(rows, header=["algorithm", "answer", "rounds"]))
    return 0 if classical.diameter == truth == quantum.diameter else 1


def _cmd_approx(args: argparse.Namespace) -> int:
    with _compute_tier(args.tier):
        graph = _build_graph(args)
        truth = graph.compile().diameter()
        rows = []

        two = run_classical_two_approximation(
            Network(graph, seed=args.seed, engine=args.engine)
        )
        rows.append(["2-approximation", two.estimate, two.rounds])
        classical = run_hprw_three_halves_approximation(
            Network(graph, seed=args.seed, engine=args.engine), seed=args.seed
        )
        rows.append(
            ["classical 3/2-approx [HPRW14]", classical.estimate, classical.rounds]
        )
        if args.quantum:
            network_seed, schedule_seed = _quantum_seeds(args.seed)
            quantum = quantum_three_halves_diameter(
                Network(graph, seed=network_seed, engine=args.engine),
                oracle_mode=args.oracle_mode, seed=schedule_seed,
                backend=args.backend,
            )
            rows.append(
                ["quantum 3/2-approx (Theorem 4)", quantum.estimate, quantum.rounds]
            )

    print(f"graph: n={graph.num_nodes}, true diameter={truth}")
    print(render_table(rows, header=["algorithm", "estimate", "rounds"]))
    valid = all(row[1] <= truth for row in rows)
    return 0 if valid else 1


def _parse_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _run_grid_command(args: argparse.Namespace, algorithms) -> int:
    """The shared execution path of the ``sweep`` and ``quantum`` commands.

    Both commands run a ``(families x sizes) x algorithms`` grid with
    identical validation, seed streams, store semantics and exit codes --
    sharing the body is what keeps their task keys interoperable (a store
    written by one can be resumed by the other).
    """
    families = _parse_csv(args.families)
    for family in families:
        if family not in generators.SWEEP_FAMILIES and family != "controlled":
            known = ", ".join(sorted(set(generators.SWEEP_FAMILIES) | {"controlled"}))
            print(f"unknown family {family!r} (available: {known})", file=sys.stderr)
            return 2
    if "controlled" in families and args.diameter is None:
        print("family 'controlled' requires --diameter", file=sys.stderr)
        return 2
    if args.resume and args.out is None:
        print("--resume requires --out (the store file to continue)", file=sys.stderr)
        return 2
    try:
        sizes = [int(item) for item in _parse_csv(args.sizes)]
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    # One user-facing --seed feeds two *independent* streams: the graph
    # construction seed and the per-cell algorithm seed.  Passing the raw
    # seed to both (the historical behaviour) correlated graph randomness
    # with algorithm randomness across the whole grid.
    graph_seed = task_seed(args.seed, "sweep-graph-stream")
    base_seed = task_seed(args.seed, "sweep-algorithm-stream")
    specs = grid(families, sizes, diameter=args.diameter, seed=graph_seed)
    try:
        fault = _fault_model_from_args(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    runner = BatchRunner(jobs=args.jobs)
    store = ExperimentStore(args.out) if args.out is not None else None
    try:
        with _schedule_backend(args.backend), _compute_tier(args.tier), \
                _fault_model(fault):
            records = run_sweep_grid(
                specs,
                algorithms,
                runner=runner,
                base_seed=base_seed,
                store=store,
                resume=args.resume,
            )
    except ExperimentStoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(sweep_table(records))
    if store is not None:
        print(f"\n{len(records)} record(s) persisted to {args.out}", file=sys.stderr)
    unconverged = [r for r in records if not r.success]
    if unconverged:
        print(
            f"\n{len(unconverged)} run(s) did not converge under the fault "
            "model (success=False)",
            file=sys.stderr,
        )
    failed = [r for r in records if r.correct is False]
    if failed:
        print(f"\n{len(failed)} correctness check(s) FAILED", file=sys.stderr)
        # Under an active fault model a wrong value is an expected,
        # *reported* outcome (success/correct land in the records), not a
        # bug in the algorithms -- only fault-free sweeps gate on it.
        if fault is None:
            return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        algorithms = resolve_algorithms(_parse_csv(args.algorithms))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return _run_grid_command(args, algorithms)


def _cmd_quantum(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            [name, info.theorem, info.guarantee, info.description]
            for name, info in sorted(QUANTUM_PROBLEMS.items())
        ]
        print(render_table(rows, header=["problem", "paper", "guarantee", "description"]))
        return 0
    problem_names = (
        list(quantum_problem_names())
        if args.problems == "all"
        else _parse_csv(args.problems)
    )
    try:
        algorithms = dict(
            sweep_algorithm_for_problem(problem) for problem in problem_names
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return _run_grid_command(args, algorithms)


def _cmd_export(args: argparse.Namespace) -> int:
    store = ExperimentStore(args.store)
    if not store.exists():
        print(f"store {args.store!r} does not exist", file=sys.stderr)
        return 2
    records = store.load_records()
    if not records:
        print(f"store {args.store!r} holds no records", file=sys.stderr)
        return 2
    if args.out is None:
        if args.format == "table":
            print(sweep_table(records))
        else:
            sys.stdout.write(render_records(records, args.format))
        return 0
    if args.format == "table":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(sweep_table(records) + "\n")
    else:
        export_records(records, args.out, args.format)
    print(
        f"{len(records)} record(s) exported to {args.out} ({args.format})",
        file=sys.stderr,
    )
    return 0


#: The benchmark harnesses ``repro bench`` runs, in order:
#: ``(name, harness file, baseline key)``.  Every harness exposes
#: ``run_benchmark(smoke=...) -> dict`` with a ``headline_speedup`` entry.
BENCH_HARNESSES = (
    ("engine", "bench_engine_overhead.py"),
    ("faults", "bench_faults.py"),
    ("graphcore", "bench_graphcore.py"),
    ("quantum", "bench_quantum.py"),
    ("runner", "bench_runner_scaling.py"),
    ("vector", "bench_vector.py"),
)

#: A harness has regressed when its headline speedup drops more than this
#: fraction below the committed baseline.
BENCH_REGRESSION_TOLERANCE = 0.25


def _load_harness(path: str):
    """Import a benchmark harness from its file path.

    ``benchmarks/`` is intentionally not a package (the harnesses run
    standalone and under pytest), so the modules are loaded by location.
    """
    name = "repro_bench_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load benchmark harness {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_bench(args: argparse.Namespace) -> int:
    bench_dir = args.dir
    if not os.path.isdir(bench_dir):
        print(
            f"benchmark directory {bench_dir!r} not found "
            "(run from the repository root or pass --dir)",
            file=sys.stderr,
        )
        return 2
    mode = "smoke" if args.smoke else "full"
    baselines = {}
    if os.path.exists(args.baselines):
        with open(args.baselines, "r", encoding="utf-8") as handle:
            baselines = json.load(handle)
    known = baselines.get(mode, {})

    rows = []
    measured = {}
    regressions = []
    for name, filename in BENCH_HARNESSES:
        path = os.path.join(bench_dir, filename)
        if not os.path.exists(path):
            print(f"skipping {name}: {path} not found", file=sys.stderr)
            continue
        harness = _load_harness(path)
        report = harness.run_benchmark(smoke=args.smoke)
        speedup = report["headline_speedup"]
        measured[name] = speedup
        baseline = known.get(name)
        if baseline is None:
            status = "no baseline"
        else:
            floor = baseline * (1.0 - BENCH_REGRESSION_TOLERANCE)
            if speedup < floor:
                status = f"REGRESSED (floor {floor:.2f}x)"
                regressions.append(name)
            else:
                status = "ok"
        rows.append(
            [
                name,
                f"{speedup}x",
                f"{baseline}x" if baseline is not None else "-",
                status,
            ]
        )

    print(render_table(rows, header=["harness", "headline", "baseline", "status"]))
    if args.update:
        baselines[mode] = measured
        with open(args.baselines, "w", encoding="utf-8") as handle:
            json.dump(baselines, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baselines ({mode}) written to {args.baselines}", file=sys.stderr)
        return 0
    if regressions:
        print(
            f"{len(regressions)} harness(es) regressed more than "
            f"{int(BENCH_REGRESSION_TOLERANCE * 100)}%: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    diameter = args.diameter if args.diameter is not None else max(1, args.nodes // 100)
    print(render_table1(n=args.nodes, diameter=diameter, memory_qubits=args.memory))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Sublinear-Time Quantum Computation of the "
            "Diameter in CONGEST Networks' (Le Gall & Magniez, PODC 2018)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--family",
            default="clique_chain",
            choices=sorted(set(generators.SWEEP_FAMILIES) | {"controlled"}),
            help="graph family to generate (default: clique_chain)",
        )
        sub.add_argument("--nodes", type=int, default=24, help="number of nodes")
        sub.add_argument(
            "--diameter", type=int, default=None,
            help="target diameter (only for --family controlled)",
        )
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument(
            "--oracle-mode", default="reference", choices=("reference", "congest"),
            help="how quantum branch values are evaluated (default: reference)",
        )
        sub.add_argument(
            "--engine", default=None, choices=ENGINE_NAMES,
            help=(
                "execution engine for the CONGEST simulator: 'dense' runs "
                "every node every round, 'sparse' skips idle nodes "
                "(default: the process default, dense)"
            ),
        )
        sub.add_argument(
            "--backend", default=None, choices=BACKEND_NAMES,
            help=(
                "quantum schedule backend: 'sampling' re-derives the "
                "Grover statistics every round, 'batched' precomputes "
                "them; results are identical for a fixed seed "
                "(default: the process default, sampling)"
            ),
        )
        sub.add_argument(
            "--tier", default=None, choices=TIER_NAMES,
            help=(
                "compute tier for the graph oracles: 'stdlib' (reference) "
                "or 'numpy' (vectorized bitset kernels; byte-identical "
                "results, default: the process default, stdlib)"
            ),
        )

    def add_fault_options(sub: argparse.ArgumentParser) -> None:
        """Deterministic fault-injection flags (see :mod:`repro.faults`).

        All probabilities default to 0; with every flag at its default
        the null model applies and execution is byte-identical to a
        fault-free run.
        """
        sub.add_argument(
            "--loss", type=float, default=0.0, metavar="P",
            help="per-message loss probability (default: 0)",
        )
        sub.add_argument(
            "--delay", type=float, default=0.0, metavar="P",
            help="per-message extra-latency probability (default: 0)",
        )
        sub.add_argument(
            "--max-delay", type=int, default=1, metavar="R",
            help="max extra rounds a delayed message waits (default: 1)",
        )
        sub.add_argument(
            "--crash", type=float, default=0.0, metavar="P",
            help="per-node crash probability (fail-pause; default: 0)",
        )
        sub.add_argument(
            "--crash-window", type=int, default=32, metavar="R",
            help="crashes happen within the first R rounds (default: 32)",
        )
        sub.add_argument(
            "--down-rounds", type=int, default=0, metavar="R",
            help=(
                "rounds a crashed node stays down before restarting "
                "with its state intact (0 = never restarts; default: 0)"
            ),
        )
        sub.add_argument(
            "--churn", type=float, default=0.0, metavar="P",
            help="per-edge per-round outage probability (default: 0)",
        )
        sub.add_argument(
            "--fault-timeout", type=int, default=None, metavar="ROUNDS",
            help=(
                "abort any single run after this many rounds (recorded "
                "as a failed cell instead of hanging until the generic "
                "round cap)"
            ),
        )
        sub.add_argument(
            "--fault-seed", type=int, default=0,
            help=(
                "seed of the fault randomness stream, independent of the "
                "graph and algorithm seeds (default: 0)"
            ),
        )

    diameter_parser = subparsers.add_parser(
        "diameter", help="exact diameter: classical baseline vs Theorem 1"
    )
    add_graph_options(diameter_parser)
    diameter_parser.set_defaults(handler=_cmd_diameter)

    approx_parser = subparsers.add_parser(
        "approx", help="diameter approximations (2-approx, 3/2-approx, Theorem 4)"
    )
    add_graph_options(approx_parser)
    approx_parser.add_argument(
        "--quantum", action="store_true", help="also run the quantum 3/2-approximation"
    )
    approx_parser.set_defaults(handler=_cmd_approx)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="batch-run algorithms over a (family x size) grid, "
        "optionally over a process pool (--jobs)",
    )
    sweep_parser.add_argument(
        "--families", default="clique_chain",
        help="comma-separated graph families (default: clique_chain)",
    )
    sweep_parser.add_argument(
        "--sizes", default="24,48",
        help="comma-separated node counts (default: 24,48)",
    )
    sweep_parser.add_argument(
        "--algorithms", default="classical_exact,two_approx",
        help=(
            "comma-separated algorithm names; available: "
            + ", ".join(sorted(SWEEP_ALGORITHMS))
        ),
    )
    sweep_parser.add_argument(
        "--diameter", type=int, default=None,
        help="target diameter (only for --families controlled)",
    )
    sweep_parser.add_argument("--seed", type=int, default=0, help="base random seed")
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help=(
            "worker processes for the batch runner (1 = serial, 0 = one "
            "per CPU); parallel output is byte-identical to serial"
        ),
    )
    sweep_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "persist records (plus run provenance) to this append-only "
            "JSONL experiment store; records are flushed as they complete"
        ),
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help=(
            "continue an interrupted sweep: cells already present in the "
            "--out store are loaded instead of recomputed (the merged "
            "record set is identical to an uninterrupted run)"
        ),
    )
    sweep_parser.add_argument(
        "--backend", default=None, choices=BACKEND_NAMES,
        help=(
            "quantum schedule backend for quantum algorithms in the grid "
            "(results are backend-independent; default: sampling)"
        ),
    )
    sweep_parser.add_argument(
        "--tier", default=None, choices=TIER_NAMES,
        help=(
            "compute tier for the correctness-gate oracles (results are "
            "tier-independent; default: stdlib)"
        ),
    )
    add_fault_options(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    quantum_parser = subparsers.add_parser(
        "quantum",
        help="run registered Theorem-7 quantum problems over a "
        "(family x size) grid with full sweep/store semantics",
        description=(
            "Run registered distributed quantum optimization problems "
            "(see --list) over a graph grid.  Records, provenance, "
            "checkpoint/resume and export behave exactly like 'sweep' -- "
            "the two commands share task keys and seed streams, so their "
            "stores are interoperable."
        ),
    )
    quantum_parser.add_argument(
        "--problems", default="all",
        help=(
            "comma-separated problem names, or 'all'; available: "
            + ", ".join(sorted(QUANTUM_PROBLEMS))
        ),
    )
    quantum_parser.add_argument(
        "--families", default="clique_chain",
        help="comma-separated graph families (default: clique_chain)",
    )
    quantum_parser.add_argument(
        "--sizes", default="24",
        help="comma-separated node counts (default: 24)",
    )
    quantum_parser.add_argument(
        "--diameter", type=int, default=None,
        help="target diameter (only for --families controlled)",
    )
    quantum_parser.add_argument("--seed", type=int, default=0, help="base random seed")
    quantum_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial, 0 = one per CPU)",
    )
    quantum_parser.add_argument(
        "--backend", default=None, choices=BACKEND_NAMES,
        help=(
            "quantum schedule backend; results are byte-identical across "
            "backends, only wall-clock changes (default: sampling)"
        ),
    )
    quantum_parser.add_argument(
        "--tier", default=None, choices=TIER_NAMES,
        help=(
            "compute tier for the correctness-gate oracles (results are "
            "tier-independent; default: stdlib)"
        ),
    )
    quantum_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="persist records (plus run provenance) to this JSONL store",
    )
    quantum_parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted run from the --out store",
    )
    quantum_parser.add_argument(
        "--list", action="store_true",
        help="list the registered quantum problems and exit",
    )
    add_fault_options(quantum_parser)
    quantum_parser.set_defaults(handler=_cmd_quantum)

    export_parser = subparsers.add_parser(
        "export",
        help="export a persisted experiment store (see sweep --out) "
        "to csv/json/jsonl or an aligned table",
    )
    export_parser.add_argument(
        "--store", required=True, metavar="PATH",
        help="the JSONL experiment store written by sweep --out",
    )
    export_parser.add_argument(
        "--format", default="table", choices=("table",) + EXPORT_FORMATS,
        help="output format (default: table)",
    )
    export_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="destination file (default: stdout)",
    )
    export_parser.set_defaults(handler=_cmd_export)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the benchmark harnesses and diff their headline "
        "speedups against committed baselines",
        description=(
            "Run every benchmark harness (see benchmarks/) and compare "
            "each headline speedup against the committed baselines file.  "
            "A harness that drops more than 25%% below its baseline fails "
            "the command (exit 1).  Use --update after an intentional "
            "perf change to rewrite the baselines."
        ),
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="small workload sizes (the CI configuration)",
    )
    bench_parser.add_argument(
        "--dir", default="benchmarks", metavar="PATH",
        help="directory holding the harness files (default: benchmarks)",
    )
    bench_parser.add_argument(
        "--baselines", default="BENCH_baselines.json", metavar="PATH",
        help="baseline speedups file (default: BENCH_baselines.json)",
    )
    bench_parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baselines from this run instead of comparing",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    table_parser = subparsers.add_parser(
        "table1", help="print Table 1 evaluated at a given (n, D)"
    )
    table_parser.add_argument("--nodes", type=int, required=True)
    table_parser.add_argument("--diameter", type=int, default=None)
    table_parser.add_argument(
        "--memory", type=int, default=None,
        help="per-node memory (qubits) for the Theorem-3 row",
    )
    table_parser.set_defaults(handler=_cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
